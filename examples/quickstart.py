#!/usr/bin/env python
"""Quickstart: the RDMA "device" abstraction on a simulated cluster.

Reproduces the paper's Table 1 interface end to end:

1. create a simulated two-server cluster;
2. create an RDMA device on each server (CreateRdmaDevice);
3. allocate RDMA-accessible memory regions (AllocateMemRegion);
4. distribute the receiver's address through the vanilla RPC;
5. copy a tensor with a one-sided write (RdmaChannel::Memcpy) and
   detect completion with the tail flag byte — zero copies anywhere.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Direction, RdmaDevice, attach_address_book
from repro.simnet import Cluster, Endpoint


def main() -> None:
    cluster = Cluster(2)
    sender_host, receiver_host = cluster.hosts
    print(f"cluster: {[h.name for h in cluster.hosts]}")

    # -- Table 1: CreateRdmaDevice ------------------------------------------------
    sender = RdmaDevice.create(sender_host, num_cqs=4, num_qps_per_peer=4,
                               local_endpoint=Endpoint(sender_host.name, 7000))
    receiver = RdmaDevice.create(receiver_host, num_cqs=4, num_qps_per_peer=4,
                                 local_endpoint=Endpoint(receiver_host.name, 7000))

    # -- Table 1: AllocateMemRegion -----------------------------------------------
    tensor = np.arange(1024, dtype=np.float32)
    nbytes = tensor.nbytes
    src = sender.allocate_mem_region(nbytes, dense=True)
    dst = receiver.allocate_mem_region(nbytes + 1, dense=True)  # +flag byte
    src.write(tensor.tobytes())
    print(f"allocated {nbytes} B on each side "
          f"(rkeys {src.rkey}/{dst.rkey})")

    # -- §3.1: distribute the remote address via the vanilla RPC -------------------
    attach_address_book(receiver).publish("weights/W0", dst)
    book = attach_address_book(sender)
    fetch = cluster.sim.spawn(book.lookup(receiver.endpoint, "weights/W0"))
    remote = cluster.sim.run_until_complete(fetch, limit=1.0)
    print(f"address book: weights/W0 -> addr={remote.addr:#x} "
          f"rkey={remote.rkey} (took {cluster.sim.now * 1e6:.1f} us simulated)")

    # -- Table 1: GetChannel + Memcpy (one-sided write + flag byte) ----------------
    channel = sender.get_channel(receiver.endpoint, qp_idx=1)

    def transfer():
        start = cluster.sim.now
        # Payload write, then the 1-byte flag: ascending-address commit
        # plus per-QP FIFO ordering make the flag the last byte to land.
        channel.memcpy(local_addr=src.addr, local_region=src,
                       remote_addr=remote.addr, remote_region=remote,
                       size=nbytes, direction=Direction.LOCAL_TO_REMOTE)
        done = channel.memcpy_event(
            local_addr=0, local_region=None,
            remote_addr=remote.addr + nbytes, remote_region=remote,
            size=1, direction=Direction.LOCAL_TO_REMOTE,
            inline_data=b"\x01")
        yield done
        return cluster.sim.now - start

    def poll_flag():
        polls = 0
        while dst.read_byte(nbytes) != 1:
            polls += 1
            yield cluster.sim.timeout(1e-6)
        return polls

    send_proc = cluster.sim.spawn(transfer())
    poll_proc = cluster.sim.spawn(poll_flag())
    elapsed = cluster.sim.run_until_complete(send_proc, limit=1.0)
    polls = cluster.sim.run_until_complete(poll_proc, limit=1.0)

    received = np.frombuffer(dst.read(0, nbytes), dtype=np.float32)
    assert np.array_equal(received, tensor)
    print(f"one-sided write of {nbytes} B took {elapsed * 1e6:.2f} us "
          f"simulated ({nbytes * 8 / elapsed / 1e9:.1f} Gbps)")
    print(f"receiver detected completion after {polls} flag polls")
    print("payload delivered byte-exactly into the preallocated tensor: OK")


if __name__ == "__main__":
    main()
