#!/usr/bin/env python
"""Distributed data-parallel training through the full stack.

Trains a real two-layer classifier with SGD, with the variables hosted
on a parameter-server partition and the compute on a worker partition
of a different simulated server — so every weight read and gradient
update crosses the (simulated) network through whichever transfer
mechanism you pick.  The learned model is identical across mechanisms
(the bytes are the bytes); what changes is simulated wall-clock time —
the paper's convergence argument (Figure 10) in miniature.

Run:  python examples/distributed_training.py
"""

import numpy as np

from repro.core import RdmaCommRuntime
from repro.distributed.rpc_comm import GrpcCommRuntime
from repro.graph import GraphBuilder, Session, minimize
from repro.simnet import Cluster
BATCH, FEATURES, CLASSES, HIDDEN = 64, 32, 4, 16
STEPS = 40

#: a fixed ground-truth projection makes the labels learnable
_TRUE_W = np.random.default_rng(42).normal(size=(FEATURES, CLASSES))


def learnable_batch(seed: int):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(size=(BATCH, FEATURES)).astype(np.float32)
    labels = (x @ _TRUE_W).argmax(axis=1)
    y = np.zeros((BATCH, CLASSES), dtype=np.float32)
    y[np.arange(BATCH), labels] = 1.0
    return x, y


def build_graph():
    """Sigmoid MLP; the backward pass comes from reverse-mode autodiff
    (repro.graph.minimize), so only the forward pass is written out."""
    rng = np.random.default_rng(0)
    b = GraphBuilder("mlp")
    w = "worker0"
    x = b.placeholder([BATCH, FEATURES], name="x", device=w)
    labels = b.placeholder([BATCH, CLASSES], name="labels", device=w)
    w1 = b.variable([FEATURES, HIDDEN], name="w1", device="ps0",
                    initializer=rng.normal(0, 0.3, (FEATURES, HIDDEN)))
    w2 = b.variable([HIDDEN, CLASSES], name="w2", device="ps0",
                    initializer=rng.normal(0, 0.3, (HIDDEN, CLASSES)))
    hidden = b.sigmoid(b.matmul(x, w1, device=w), name="hidden", device=w)
    logits = b.matmul(hidden, w2, name="logits", device=w)
    loss, _ = b.softmax_cross_entropy(logits, labels, name="loss", device=w)
    minimize(b, loss, lr=1.0)  # gradient graph + in-place PS updates
    return b.finalize()


def run(mechanism_name: str, comm):
    cluster = Cluster(2)
    session = Session(cluster, build_graph(),
                      {"ps0": cluster.hosts[0], "worker0": cluster.hosts[1]},
                      comm=comm)
    losses = []
    for step in range(STEPS):
        x_val, y_val = learnable_batch(seed=step)
        session.run(feeds={"x": x_val, "labels": y_val})
        losses.append(round(float(session.numpy("loss")), 6))
    simulated = cluster.sim.now
    print(f"{mechanism_name:>10}: loss {losses[0]:.3f} -> {losses[-1]:.3f} "
          f"in {simulated * 1e3:8.2f} ms simulated")
    return losses, simulated


def main() -> None:
    print(f"training a {FEATURES}->{HIDDEN}->{CLASSES} classifier, "
          f"{STEPS} steps; variables on ps0, compute on worker0\n")
    results = {}
    for name, comm in [("gRPC.TCP", GrpcCommRuntime(transport="tcp")),
                       ("gRPC.RDMA", GrpcCommRuntime(transport="rdma")),
                       ("RDMA.cp", RdmaCommRuntime(zero_copy=False)),
                       ("RDMA", RdmaCommRuntime())]:
        results[name] = run(name, comm)
    # Same learning curve, different wall-clock.
    assert results["RDMA"][0] == results["gRPC.TCP"][0], \
        "mechanisms must not change the math"
    speedup = results["gRPC.TCP"][1] / results["RDMA"][1]
    print(f"\nidentical learning curves across mechanisms; RDMA finished "
          f"{speedup:.2f}x faster than gRPC.TCP")


if __name__ == "__main__":
    main()
