#!/usr/bin/env python
"""Regenerate a compact Figure 8: the two-server micro-benchmark.

Sweeps tensor sizes over the four mechanisms of §5.1 and prints the
transfer-throughput table, including the gRPC.RDMA crash at 1 GB.

Run:  python examples/microbench_figure8.py
"""

from repro.workloads import sweep_microbench

KB, MB, GB = 1024, 1024 ** 2, 1024 ** 3
SIZES = (64 * KB, 1 * MB, 16 * MB, 256 * MB, 1 * GB)


def label(size: int) -> str:
    if size >= GB:
        return f"{size // GB}GB"
    if size >= MB:
        return f"{size // MB}MB"
    return f"{size // KB}KB"


def main() -> None:
    print("Figure 8 micro-benchmark: transfer throughput (Gbps), "
          "2 servers, reduce_max consumer\n")
    sweep = sweep_microbench(SIZES, iterations=3)
    mechanisms = list(sweep)
    header = f"{'size':>8}" + "".join(f"{m:>12}" for m in mechanisms)
    print(header)
    print("-" * len(header))
    for index, size in enumerate(SIZES):
        cells = []
        for mechanism in mechanisms:
            point = sweep[mechanism][index]
            if point.throughput_gbps is None:
                cells.append(f"{'CRASH':>12}")
            else:
                cells.append(f"{point.throughput_gbps:>12.2f}")
        print(f"{label(size):>8}" + "".join(cells))
    crash = sweep["gRPC.RDMA"][-1]
    print(f"\ngRPC.RDMA @ 1GB: {crash.crash_reason[:100]}")
    print("(TensorFlow's gRPC.RDMA crashed above 1 GB — paper §5.1)")


if __name__ == "__main__":
    main()
