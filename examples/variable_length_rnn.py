#!/usr/bin/env python
"""Variable-shape tensors: the dynamic-allocation transfer path (§3.3).

RNN workloads (and wide-and-deep recommenders) produce tensors whose
leading dimension changes every mini-batch, so receiver tensors cannot
be preallocated.  The paper's protocol preallocates only the
*fixed-size metadata slot* (the tensor's rank never changes), writes
dims + source address + flag, and lets the receiver allocate and pull
the payload with a one-sided READ.

This example pushes batches of different lengths across two servers
and shows (a) byte-exact delivery for every shape, (b) the measured
overhead versus a statically shaped edge.

Run:  python examples/variable_length_rnn.py
"""

import numpy as np

from repro.core import RdmaCommRuntime
from repro.graph import GraphBuilder, Session
from repro.simnet import Cluster
from repro.workloads import variable_length_batches


FEATURES = 64


def build(static_batch=None):
    b = GraphBuilder("rnn-ish")
    shape = [static_batch, FEATURES]
    x = b.placeholder(shape, name="x", device="worker0")
    steps = b.tanh(x, name="encode", device="worker0")
    b.identity(steps, name="sink", device="ps0")  # crosses servers
    return b.finalize()


def main() -> None:
    cluster = Cluster(2)
    comm = RdmaCommRuntime()
    session = Session(cluster, build(static_batch=None),
                      {"ps0": cluster.hosts[0],
                       "worker0": cluster.hosts[1]}, comm=comm)
    (edge,) = session.partitioned.transfers
    print(f"transfer edge {edge.key!r}: static_shape={edge.static_shape} "
          "-> dynamic-allocation protocol\n")

    batches = variable_length_batches(max_length=48, feature_dim=FEATURES,
                                      count=6, seed=9)
    for batch in batches:
        session.run(feeds={"x": batch})
        got = session.numpy("sink")
        expected = np.tanh(batch)
        assert got.shape == batch.shape
        np.testing.assert_allclose(got, expected, rtol=1e-5)
        print(f"  batch {batch.shape}: delivered byte-exactly "
              f"({batch.nbytes} B pulled via one-sided READ)")

    dynamic_time = cluster.sim.now
    # Compare with a statically shaped run of the same total volume.
    cluster2 = Cluster(2)
    session2 = Session(cluster2, build(static_batch=24),
                       {"ps0": cluster2.hosts[0],
                        "worker0": cluster2.hosts[1]},
                       comm=RdmaCommRuntime())
    for seed in range(len(batches)):
        rng = np.random.default_rng(seed)
        session2.run(feeds={"x": rng.standard_normal(
            (24, FEATURES)).astype(np.float32)})
    static_time = cluster2.sim.now
    print(f"\n6 dynamic transfers: {dynamic_time * 1e3:.3f} ms simulated; "
          f"6 static transfers of similar volume: {static_time * 1e3:.3f} ms")
    print("dynamic pays metadata exchange + allocation + READ round trip "
          "(paper §3.3)")


if __name__ == "__main__":
    main()
