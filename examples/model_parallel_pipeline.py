#!/usr/bin/env python
"""Model parallelism: pipeline a large model's layers across servers.

§2.1 of the paper motivates model parallelism for models too large for
one device; the same partitioning + transfer machinery handles it —
only what crosses the network changes (activations instead of
parameters).  This example splits VGGNet-16 into pipeline stages,
trains steps under gRPC.TCP and RDMA, and reports the per-boundary
traffic using the metrics collector.

Run:  python examples/model_parallel_pipeline.py
"""

from repro.core import RdmaCommRuntime
from repro.distributed import build_model_parallel_graph, split_stages
from repro.distributed.rpc_comm import GrpcCommRuntime
from repro.graph import Session
from repro.models import get_model
from repro.simnet import Cluster


STAGES = 4
BATCH = 64


def main() -> None:
    spec = get_model("VGGNet-16")
    stages = split_stages(spec, STAGES)
    print(f"{spec.name} ({spec.model_mb:.0f} MB) split into {STAGES} "
          "pipeline stages:")
    for index, layers in enumerate(stages):
        nbytes = sum(spec.variables[i].nbytes for i in layers)
        names = [spec.variables[i].name for i in layers[:2]]
        print(f"  stage{index}: {len(layers)} layers, "
              f"{nbytes / 2**20:6.1f} MB  (starts at {names[0]})")

    # VGG's fc-layer activations are 25088 floats per sample.
    job = build_model_parallel_graph(spec, num_stages=STAGES,
                                     batch_size=BATCH,
                                     activation_elements_per_sample=25088)
    print(f"\nactivations per boundary: {job.activation_bytes / 2**20:.1f} "
          f"MB; cross-stage bytes/step: "
          f"{job.cross_stage_bytes_per_step / 2**20:.1f} MB "
          f"(the 512 MB of weights never move)\n")

    for label, comm in (("gRPC.TCP", GrpcCommRuntime(transport="tcp")),
                        ("RDMA", RdmaCommRuntime())):
        fresh = build_model_parallel_graph(spec, num_stages=STAGES,
                                           batch_size=BATCH,
                                           activation_elements_per_sample=25088)
        cluster = Cluster(STAGES)
        hosts = {f"stage{i}": cluster.hosts[i] for i in range(STAGES)}
        session = Session(cluster, fresh.graph, hosts, comm=comm)
        metrics = cluster.enable_metrics()
        stats = session.run(iterations=4)
        print(f"{label:>9}: {stats.steady_state_time * 1e3:7.2f} ms/step   "
              f"wire traffic: {metrics.total_bytes() / 2**20:.1f} MB "
              f"over {metrics.count()} transfers")


if __name__ == "__main__":
    main()
