#!/usr/bin/env python
"""Pipeline parallelism: microbatched schedules over RDMA stage links.

§2.1 of the paper motivates model parallelism for models too large for
one device; the same partitioning + transfer machinery handles it —
only what crosses the network changes (activations instead of
parameters).  This example splits the 1.4 GB GPT-350M transformer into
pipeline stages, cuts the mini-batch into microbatches, and runs both
supported schedules end to end:

* **GPipe** — all forwards, then all backwards; activations are
  discarded between the phases and rematerialized (recomputed) at the
  start of each backward microbatch;
* **1F1B**  — each stage warms up, then alternates one-forward/
  one-backward, bounding live activations without recompute.

Each run is traced, and the bubble report decomposes the measured step
into useful compute vs pipeline bubble per stage — the decomposition
sums back to the step time exactly.

Run:  python examples/model_parallel_pipeline.py
"""

from repro.distributed import split_stages
from repro.distributed.model_parallel import pipeline_bubble_report
from repro.distributed.runner import run_training_benchmark
from repro.models import get_model


STAGES = 4
BATCH = 8
MICROBATCHES = 4


def main() -> None:
    spec = get_model("GPT-350M")
    stages = split_stages(spec, STAGES)
    print(f"{spec.name} ({spec.model_mb:.0f} MB) split into {STAGES} "
          "pipeline stages:")
    for index, layers in enumerate(stages):
        nbytes = sum(spec.variables[i].nbytes for i in layers)
        first = spec.variables[layers[0]].name
        print(f"  stage{index}: {len(layers)} tensors, "
              f"{nbytes / 2**20:6.1f} MB  (starts at {first})")
    print()

    for schedule in ("gpipe", "1f1b"):
        bench = run_training_benchmark(
            spec, "RDMA", num_servers=STAGES, batch_size=BATCH,
            iterations=3, strategy="llm", microbatches=MICROBATCHES,
            schedule=schedule, collect_trace=True)
        report = pipeline_bubble_report(bench.pipeline,
                                        bench.stall_report())
        wire_mb = bench.pipeline.cross_stage_bytes_per_step / 2**20
        print(f"{schedule:>5}: {bench.step_time * 1e3:8.2f} ms/step   "
              f"bubble {report['bubble_fraction'] * 100:5.1f}%   "
              f"useful {report['useful_fraction'] * 100:5.1f}%   "
              f"activations on the wire: {wire_mb:.1f} MB/step   "
              f"(residual {report['accounting_residual_s']:+.1e} s)")
    print(f"\nthe {spec.model_mb:.0f} MB of weights never move; 1F1B wins "
          "by skipping GPipe's rematerialized forward passes")


if __name__ == "__main__":
    main()
