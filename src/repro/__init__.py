"""repro: reproduction of "Fast Distributed Deep Learning over RDMA".

EuroSys '19, Xue, Miao, Chen, Wu, Zhang, Zhou (Microsoft Research).

The package implements the paper's RDMA "device" communication
abstraction, zero-copy tensor transfer, and RDMA-aware dataflow-graph
analysis (``repro.core``) on top of a from-scratch simulated cluster
substrate (``repro.simnet``), together with the gRPC-style baselines
the paper compares against (``repro.rpc``), a TensorFlow-like dataflow
runtime (``repro.graph``), a parameter-server training architecture
(``repro.distributed``), the paper's benchmark model zoo
(``repro.models``), and a harness regenerating every table and figure
of the evaluation (``repro.harness``).
"""

__version__ = "1.0.0"
