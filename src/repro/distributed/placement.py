"""Variable placement: round-robin across parameter-server shards.

"The variable tensors are shared across workers and are placed in
parameter servers in a round-robin fashion" (§5.2).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..models.spec import ModelSpec, VariableSpec


def round_robin_placement(spec: ModelSpec,
                          num_ps: int) -> Dict[str, List[VariableSpec]]:
    """Assign each variable to a PS shard: variable i -> ps (i mod n)."""
    if num_ps < 1:
        raise ValueError("need at least one parameter server")
    shards: Dict[str, List[VariableSpec]] = {
        f"ps{i}": [] for i in range(num_ps)}
    for index, variable in enumerate(spec.variables):
        shards[f"ps{index % num_ps}"].append(variable)
    return shards


def greedy_placement(spec: ModelSpec,
                     num_ps: int) -> Dict[str, List[VariableSpec]]:
    """Byte-balanced placement: each variable goes to the lightest shard.

    An *extension beyond the paper*: TensorFlow later shipped this as
    ``GreedyLoadBalancingStrategy``.  It removes the hot-shard
    bottleneck round-robin creates for models with one huge tensor
    (VGG's fc weights) — see ``benchmarks/test_extension_placement.py``
    for the measured effect.
    """
    if num_ps < 1:
        raise ValueError("need at least one parameter server")
    shards: Dict[str, List[VariableSpec]] = {
        f"ps{i}": [] for i in range(num_ps)}
    loads = {name: 0 for name in shards}
    # Big tensors first, each onto the currently lightest shard.
    for variable in sorted(spec.variables, key=lambda v: -v.nbytes):
        target = min(loads, key=lambda name: (loads[name], name))
        shards[target].append(variable)
        loads[target] += variable.nbytes
    return shards


def placement_balance(shards: Dict[str, List[VariableSpec]]) -> float:
    """Max/mean byte ratio across shards (1.0 = perfectly balanced)."""
    sizes = [sum(v.nbytes for v in vs) for vs in shards.values()]
    mean = sum(sizes) / len(sizes)
    return max(sizes) / mean if mean else 1.0
