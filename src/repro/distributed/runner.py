"""End-to-end distributed training benchmark runner.

One call = one cell of the paper's evaluation matrix: (model,
mechanism, number of servers, mini-batch size) -> steady-state
mini-batch time and throughput.  The deployment follows §5.2: every
server runs one worker process and one parameter-server process, and
the paper's "Local" baseline runs compute and variables on a single
server with no communication.  ``strategy`` swaps the communication
architecture: ``"ps"`` is the paper's parameter-server graph, while
``"ring"``, ``"halving-doubling"`` and ``"hierarchical"`` replace the
PS shards with worker-to-worker collectives
(:mod:`repro.distributed.allreduce`).  ``topology="fat-tree"`` swaps
the flat full-bisection network for the multi-rack leaf/spine fabric
of :mod:`repro.simnet.fabric`, whose oversubscribed uplinks are what
the hierarchical collective is shaped around.  ``"innetwork"`` moves
the reduction arithmetic *into* those switches (the aggregation plane
of the fabric module): it requires the fat-tree topology and degrades
cleanly to the hierarchical host collective everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..core.device import QP_MODES
from ..core.rdma_comm import RdmaCommRuntime
from ..core.recovery import RetryPolicy
from ..graph.session import RunStats, Session
from ..simnet.faults import FaultInjector
from ..observability.anomaly import Incident, detect_run_anomalies
from ..observability.capture import capture_enabled, capture_run
from ..observability.registry import Histogram
from ..observability.stall import StallReport, build_stall_report
from ..observability.timeseries import Telemetry
from ..observability.tracer import TraceBudget, Tracer
from ..graph.transfer_api import CommRuntime, NullComm
from ..models.spec import ModelSpec
from ..simnet.costmodel import (DEFAULT_COST_MODEL,
                                DEFAULT_WIRE_QUANTUM_BYTES, CostModel)
from ..simnet.fabric import Fabric, build_fat_tree
from ..simnet.metrics import MetricsCollector
from ..simnet.topology import Cluster
from .allreduce import (ALLREDUCE_ALGORITHMS, AllreduceTrainingJob,
                        build_allreduce_training_graph)
from .model_parallel import (SCHEDULES, PipelineJob,
                             build_model_parallel_graph)
from .replication import TrainingJob, build_training_graph
from .rpc_comm import GrpcCommRuntime


MECHANISMS = ("gRPC.TCP", "gRPC.RDMA", "RDMA", "RDMA.cp", "RDMA.gpu",
              "RDMA+GDR", "Local")

STRATEGIES = ("ps", "ring", "halving-doubling", "hierarchical",
              "innetwork", "llm")

TOPOLOGIES = ("flat", "fat-tree")

#: pipeline-schedule fallbacks when neither the call site nor the comm
#: config pins them (``strategy="llm"``)
DEFAULT_MICROBATCHES = 4
DEFAULT_SCHEDULE = "1f1b"


def resolve_trace_hosts(spec: str, num_servers: int,
                        name_prefix: str = "server") -> frozenset:
    """Expand a ``--trace-hosts`` spec into a host-name set.

    Two forms: an integer ``N`` keeps the first N hosts
    (``server0..serverN-1``), and a comma-separated list keeps exactly
    the named hosts.  Raises ``ValueError`` for an empty spec or a
    prefix count outside [1, num_servers].
    """
    spec = spec.strip()
    if not spec:
        raise ValueError("trace_hosts cannot be empty")
    try:
        count = int(spec)
    except ValueError:
        names = [name.strip() for name in spec.split(",")]
        if any(not name for name in names):
            raise ValueError(f"malformed trace_hosts list {spec!r}")
        return frozenset(names)
    if count < 1:
        raise ValueError("trace_hosts prefix count must be positive")
    if count > num_servers:
        raise ValueError(f"trace_hosts prefix count {count} exceeds "
                         f"{num_servers} servers")
    return frozenset(f"{name_prefix}{i}" for i in range(count))


@dataclass(frozen=True)
class CommConfig:
    """Harness-level communication-runtime knobs.

    Historically ``RdmaCommRuntime``'s constructor defaults were the
    only way to pick the completion-queue and queue-pair layout; the
    harness CLI now writes this config (``--num-cqs``,
    ``--qps-per-peer``, ``--backend``) so sweeps can vary them without
    code edits.  ``backend`` names the mechanism used wherever an
    experiment asks for the configured default (``"auto"``).
    """

    num_cqs: int = 4
    num_qps_per_peer: int = 4
    #: queue-pair layout (``--qp-mode``): ``"rc"`` keeps the paper's
    #: per-peer reliable-connected pairs (bit-identical timing);
    #: ``"shared"`` multiplexes every peer over O(1) DCT-style shared
    #: endpoints per NIC
    qp_mode: str = "rc"
    backend: str = "RDMA"
    #: fusion-bucket capacity for collective strategies (``--fusion-mb``);
    #: None keeps ``DEFAULT_FUSION_BYTES``
    fusion_bytes: Optional[int] = None
    #: run the priority wire scheduler + priority-aware ready queues
    priority_sched: bool = False
    #: flush each fusion bucket's allreduce as soon as its last gradient
    #: is produced; False holds every reduction behind a backward barrier
    eager_flush: bool = True
    #: fault-injection schedule (``--fault-spec`` syntax, see
    #: :func:`repro.simnet.faults.parse_fault_spec`); None disables the
    #: fault plane entirely and keeps runs bit-identical to the default
    fault_spec: Optional[str] = None
    #: RNG seed for probabilistic fault rules (``--fault-seed``)
    fault_seed: int = 0
    #: lossy-fabric drop probability per transfer attempt (``--loss``):
    #: merges a ``loss:p=<rate>`` clause into the effective fault spec,
    #: so runs see ECN-style probabilistic drops without writing a full
    #: ``--fault-spec``; None/0 keeps the fabric lossless
    loss_rate: Optional[float] = None
    #: recovery-layer overrides; None keeps ``RetryPolicy`` defaults
    retry_limit: Optional[int] = None
    retry_timeout: Optional[float] = None
    retry_backoff: Optional[float] = None
    tcp_fallback: Optional[bool] = None
    #: cluster fabric shape: ``"flat"`` is the historical full-bisection
    #: model (bit-identical timing), ``"fat-tree"`` builds the two-tier
    #: leaf/spine fabric of :func:`repro.simnet.fabric.build_fat_tree`
    topology: str = "flat"
    #: rack count for fat-tree runs; None derives it from hosts_per_rack
    racks: Optional[int] = None
    #: hosts per rack for fat-tree/hierarchical runs; None derives it
    #: from racks (at least one of the two is needed for either)
    hosts_per_rack: Optional[int] = None
    #: rack uplink oversubscription ratio (4.0 = the classic 4:1)
    oversubscription: float = 1.0
    #: collective algorithm used where an experiment asks for the
    #: configured default (``--collective``)
    collective: str = "hierarchical"
    #: span-retention sampling rate for traced runs (``--trace-sample``);
    #: None keeps every span (the historical unbudgeted tracer)
    trace_sample: Optional[float] = None
    #: host subset whose spans are retained (``--trace-hosts``): either
    #: a comma-separated name list or an integer prefix count; None
    #: keeps every host
    trace_hosts: Optional[str] = None
    #: pipeline-parallel (``llm`` strategy) shape (``--pipeline-stages``):
    #: None lets each caller pick (llmtrain sweeps 2/4/8)
    pipeline_stages: Optional[int] = None
    #: microbatches per mini-batch for the pipeline schedules
    #: (``--microbatches``); None = :data:`DEFAULT_MICROBATCHES`
    microbatches: Optional[int] = None
    #: pipeline schedule (``--schedule``): ``"gpipe"`` or ``"1f1b"``;
    #: None = :data:`DEFAULT_SCHEDULE` (and llmtrain runs both)
    schedule: Optional[str] = None

    def trace_budget(self, num_servers: int,
                     name_prefix: str = "server") -> Optional[TraceBudget]:
        """The retention budget implied by the trace knobs (None = keep all).

        Breakdown accounting is never budgeted — the sum-to-step-time
        invariant holds on every host — so these knobs only thin the
        span list behind trace export.  The ``iteration`` category is
        exempt from sampling: it is one span per step and anchors the
        timeline.
        """
        if self.trace_sample is None and self.trace_hosts is None:
            return None
        hosts = None
        if self.trace_hosts is not None:
            hosts = resolve_trace_hosts(self.trace_hosts, num_servers,
                                        name_prefix=name_prefix)
        return TraceBudget(default_rate=(self.trace_sample
                                         if self.trace_sample is not None
                                         else 1.0),
                           sample_rates={"iteration": 1.0},
                           hosts=hosts)

    def rack_width(self, num_servers: int) -> Optional[int]:
        """Resolve the rack width for ``num_servers`` workers.

        ``hosts_per_rack`` wins when set; otherwise ``racks`` splits the
        servers into that many equal racks (rounding up).  None when
        neither knob is set.
        """
        if self.hosts_per_rack is not None:
            return self.hosts_per_rack
        if self.racks is not None:
            return (num_servers + self.racks - 1) // self.racks
        return None

    def retry_policy(self) -> Optional[RetryPolicy]:
        """The configured recovery policy (None = library defaults)."""
        if (self.retry_limit is None and self.retry_timeout is None
                and self.retry_backoff is None and self.tcp_fallback is None):
            return None
        default = RetryPolicy()
        return RetryPolicy(
            max_retries=(self.retry_limit if self.retry_limit is not None
                         else default.max_retries),
            timeout_base=(self.retry_timeout if self.retry_timeout is not None
                          else default.timeout_base),
            backoff_base=(self.retry_backoff if self.retry_backoff is not None
                          else default.backoff_base),
            tcp_fallback=(self.tcp_fallback if self.tcp_fallback is not None
                          else default.tcp_fallback))


_COMM_CONFIG = CommConfig()


def comm_config() -> CommConfig:
    """The currently configured communication-runtime knobs."""
    return _COMM_CONFIG


def configure_comm(num_cqs: Optional[int] = None,
                   num_qps_per_peer: Optional[int] = None,
                   qp_mode: Optional[str] = None,
                   backend: Optional[str] = None,
                   fusion_bytes: Optional[int] = None,
                   priority_sched: Optional[bool] = None,
                   eager_flush: Optional[bool] = None,
                   fault_spec: Optional[str] = None,
                   fault_seed: Optional[int] = None,
                   loss_rate: Optional[float] = None,
                   retry_limit: Optional[int] = None,
                   retry_timeout: Optional[float] = None,
                   retry_backoff: Optional[float] = None,
                   tcp_fallback: Optional[bool] = None,
                   topology: Optional[str] = None,
                   racks: Optional[int] = None,
                   hosts_per_rack: Optional[int] = None,
                   oversubscription: Optional[float] = None,
                   collective: Optional[str] = None,
                   trace_sample: Optional[float] = None,
                   trace_hosts: Optional[str] = None,
                   pipeline_stages: Optional[int] = None,
                   microbatches: Optional[int] = None,
                   schedule: Optional[str] = None) -> CommConfig:
    """Override selected comm-runtime knobs; returns the new config."""
    global _COMM_CONFIG
    changes = {}
    if num_cqs is not None:
        if num_cqs < 1:
            raise ValueError("num_cqs must be at least 1")
        changes["num_cqs"] = num_cqs
    if num_qps_per_peer is not None:
        if num_qps_per_peer < 1:
            raise ValueError("num_qps_per_peer must be at least 1")
        changes["num_qps_per_peer"] = num_qps_per_peer
    if qp_mode is not None:
        if qp_mode not in QP_MODES:
            raise ValueError(f"unknown qp_mode {qp_mode!r}; have {QP_MODES}")
        changes["qp_mode"] = qp_mode
    if backend is not None:
        if backend == "auto" or backend not in MECHANISMS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"have {MECHANISMS}")
        changes["backend"] = backend
    if fusion_bytes is not None:
        if fusion_bytes < 1:
            raise ValueError("fusion_bytes must be positive")
        changes["fusion_bytes"] = fusion_bytes
    if priority_sched is not None:
        changes["priority_sched"] = priority_sched
    if eager_flush is not None:
        changes["eager_flush"] = eager_flush
    if fault_spec is not None:
        # Validate eagerly so a bad --fault-spec fails at configure time.
        from ..simnet.faults import parse_fault_spec
        parse_fault_spec(fault_spec)
        changes["fault_spec"] = fault_spec or None
    if fault_seed is not None:
        changes["fault_seed"] = fault_seed
    if loss_rate is not None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        changes["loss_rate"] = loss_rate or None
    if retry_limit is not None:
        if retry_limit < 0:
            raise ValueError("retry_limit must be non-negative")
        changes["retry_limit"] = retry_limit
    if retry_timeout is not None:
        if retry_timeout <= 0:
            raise ValueError("retry_timeout must be positive")
        changes["retry_timeout"] = retry_timeout
    if retry_backoff is not None:
        if retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")
        changes["retry_backoff"] = retry_backoff
    if tcp_fallback is not None:
        changes["tcp_fallback"] = tcp_fallback
    if topology is not None:
        if topology not in TOPOLOGIES:
            raise ValueError(f"unknown topology {topology!r}; "
                             f"have {TOPOLOGIES}")
        changes["topology"] = topology
    if racks is not None:
        if racks < 1:
            raise ValueError("racks must be at least 1")
        changes["racks"] = racks
    if hosts_per_rack is not None:
        if hosts_per_rack < 1:
            raise ValueError("hosts_per_rack must be at least 1")
        changes["hosts_per_rack"] = hosts_per_rack
    if oversubscription is not None:
        if oversubscription < 1.0:
            raise ValueError("oversubscription must be at least 1.0 "
                             "(1.0 = full bisection)")
        changes["oversubscription"] = oversubscription
    if collective is not None:
        if collective not in ALLREDUCE_ALGORITHMS:
            raise ValueError(f"unknown collective {collective!r}; "
                             f"have {ALLREDUCE_ALGORITHMS}")
        changes["collective"] = collective
    if trace_sample is not None:
        if not 0.0 < trace_sample <= 1.0:
            raise ValueError(f"trace_sample must be in (0, 1], "
                             f"got {trace_sample}")
        changes["trace_sample"] = trace_sample
    if trace_hosts is not None:
        # Validate the spec's shape eagerly (prefix-count bounds are
        # checked against num_servers at run time).
        resolve_trace_hosts(trace_hosts, num_servers=1 << 30)
        changes["trace_hosts"] = trace_hosts
    if pipeline_stages is not None:
        if pipeline_stages < 1:
            raise ValueError("pipeline_stages must be at least 1")
        changes["pipeline_stages"] = pipeline_stages
    if microbatches is not None:
        if microbatches < 1:
            raise ValueError("microbatches must be at least 1")
        changes["microbatches"] = microbatches
    if schedule is not None:
        if schedule not in SCHEDULES:
            raise ValueError(f"unknown schedule {schedule!r}; "
                             f"have {SCHEDULES}")
        changes["schedule"] = schedule
    _COMM_CONFIG = replace(_COMM_CONFIG, **changes)
    return _COMM_CONFIG


def reset_comm_config() -> None:
    """Restore the built-in comm-runtime defaults."""
    global _COMM_CONFIG
    _COMM_CONFIG = CommConfig()


def swap_comm_config(config: CommConfig) -> CommConfig:
    """Install a full config, returning the previous one.

    For experiments/tests that need a scoped override-and-restore —
    ``configure_comm`` can only merge non-None changes, so it cannot
    return a field to its unset state.
    """
    global _COMM_CONFIG
    previous = _COMM_CONFIG
    _COMM_CONFIG = config
    return previous


def make_mechanism(name: str) -> CommRuntime:
    """Instantiate a transfer mechanism by its evaluation label.

    ``"auto"`` resolves to the configured default backend (see
    :func:`configure_comm`); RDMA mechanisms pick up the configured
    CQ/QP layout.
    """
    if name == "auto":
        name = _COMM_CONFIG.backend
    cqs = _COMM_CONFIG.num_cqs
    qps = _COMM_CONFIG.num_qps_per_peer
    mode = _COMM_CONFIG.qp_mode
    retry = _COMM_CONFIG.retry_policy()
    if name == "gRPC.TCP":
        return GrpcCommRuntime(transport="tcp")
    if name == "gRPC.RDMA":
        return GrpcCommRuntime(transport="rdma")
    if name == "RDMA":
        return RdmaCommRuntime(zero_copy=True, num_cqs=cqs,
                               num_qps_per_peer=qps, retry_policy=retry,
                               qp_mode=mode)
    if name == "RDMA.cp":
        return RdmaCommRuntime(zero_copy=False, num_cqs=cqs,
                               num_qps_per_peer=qps, retry_policy=retry,
                               qp_mode=mode)
    if name == "RDMA.gpu":
        # Tensors in GPU memory without GPUDirect: PCIe staging on
        # both ends of every transfer (the Table 3 "RDMA" column).
        return RdmaCommRuntime(zero_copy=True, gpu_tensors=True,
                               num_cqs=cqs, num_qps_per_peer=qps,
                               retry_policy=retry, qp_mode=mode)
    if name == "RDMA+GDR":
        return RdmaCommRuntime(zero_copy=True, gpu_tensors=True,
                               gpudirect=True, num_cqs=cqs,
                               num_qps_per_peer=qps, retry_policy=retry,
                               qp_mode=mode)
    if name == "Local":
        return NullComm()
    raise ValueError(f"unknown mechanism {name!r}; have {MECHANISMS}")


@dataclass
class BenchmarkResult:
    """Outcome of one benchmark configuration."""

    model: str
    mechanism: str
    num_servers: int
    batch_size: int
    stats: RunStats
    crashed: bool = False
    crash_reason: str = ""
    strategy: str = "ps"
    #: predicted mean wire payload per worker per step (collectives)
    predicted_wire_bytes: Optional[float] = None
    #: wire-transfer records, populated when ``collect_metrics=True``
    metrics: Optional[MetricsCollector] = None
    #: span tracer, populated when the run was traced
    tracer: Optional[Tracer] = None
    #: simulated hosts carrying workers (for per-worker accounting)
    worker_hosts: Tuple[str, ...] = field(default_factory=tuple)
    #: the fabric graph the run used (fat-tree runs only)
    fabric: Optional[Fabric] = None
    #: simulated clock at the end of the run (utilization horizon)
    sim_horizon: float = 0.0
    #: simulator events processed by the run (engine-load figure)
    sim_events: int = 0
    #: anomaly-detector output for the run (traced runs only)
    incidents: List[Incident] = field(default_factory=list)
    #: in-network aggregation counters (per-group rounds/chunks plus the
    #: plane's per-switch occupancy/spill stats); None unless the run
    #: actually built switch-aggregated collectives
    innetwork: Optional[Dict[str, object]] = None
    #: the built pipeline job (``llm`` strategy only): stage layout,
    #: per-stage compute model, schedule — what
    #: :func:`repro.distributed.model_parallel.pipeline_bubble_report`
    #: consumes together with :meth:`stall_report`
    pipeline: Optional[PipelineJob] = None

    def link_stats(self) -> Dict[str, Dict]:
        """Per-trunk-link bytes/queueing/utilization (empty when flat)."""
        if self.fabric is None:
            return {}
        return self.fabric.link_stats(self.sim_horizon or None)

    @property
    def step_time(self) -> float:
        """Steady-state seconds per mini-batch (excludes iteration 0)."""
        return self.stats.steady_state_time

    @property
    def throughput(self) -> float:
        """Mini-batches per second (per worker, steady state)."""
        return self.stats.throughput

    @property
    def samples_per_second(self) -> float:
        """Aggregate samples/s across all workers."""
        return self.throughput * self.batch_size * self.num_servers

    def step_time_percentiles(self,
                              percentiles: Optional[Tuple[float, ...]] = None
                              ) -> Dict[str, float]:
        """Per-iteration step-time distribution (p50/p90/p99/p99.9).

        Excludes iteration 0 (warm-up staging and tracing), matching
        :attr:`step_time`'s steady-state convention.  Returns an empty
        dict for crashed or zero-iteration runs.
        """
        steady = self.stats.iteration_times[1:] or self.stats.iteration_times
        if not steady:
            return {}
        histogram = Histogram("step_time_s", percentiles=percentiles)
        for value in steady:
            histogram.observe(value)
        return histogram.to_dict()

    @property
    def step_time_p50(self) -> float:
        return self.step_time_percentiles().get("p50", 0.0)

    @property
    def step_time_p99(self) -> float:
        return self.step_time_percentiles().get("p99", 0.0)

    def wire_bytes_per_worker(self) -> Optional[float]:
        """Measured mean egress bytes per worker per steady-state step.

        Counts transfers starting after iteration 0 finished (warm-up
        staging, tracing, and address distribution excluded) across the
        worker hosts, averaged over hosts and steady iterations.
        Requires the run to have been made with ``collect_metrics``.
        """
        if (self.metrics is None or self.crashed or not self.worker_hosts
                or len(self.stats.iteration_end_times) < 2):
            return None
        steady_start = self.stats.iteration_end_times[0]
        steady_iterations = len(self.stats.iteration_end_times) - 1
        total = sum(
            self.metrics.bytes_in_window(lo=steady_start, host=host,
                                         direction="egress")
            for host in self.worker_hosts)
        return total / (len(self.worker_hosts) * steady_iterations)

    def stall_report(self) -> Optional[StallReport]:
        """Per-iteration stall attribution; None unless the run was traced."""
        if self.tracer is None:
            return None
        return build_stall_report(self.tracer)


def run_training_benchmark(spec: ModelSpec, mechanism: str,
                           num_servers: int, batch_size: int,
                           iterations: int = 4,
                           cost: Optional[CostModel] = None,
                           comm: Optional[CommRuntime] = None,
                           placement: str = "round_robin",
                           strategy: str = "ps",
                           fusion_bytes: Optional[int] = None,
                           priority_sched: Optional[bool] = None,
                           eager_flush: Optional[bool] = None,
                           collect_metrics: bool = False,
                           collect_trace: bool = False,
                           fault_spec: Optional[str] = None,
                           fault_seed: Optional[int] = None,
                           loss_rate: Optional[float] = None,
                           microbatches: Optional[int] = None,
                           schedule: Optional[str] = None,
                           topology: Optional[str] = None,
                           racks: Optional[int] = None,
                           hosts_per_rack: Optional[int] = None,
                           oversubscription: Optional[float] = None,
                           time_limit: float = 36000.0) -> BenchmarkResult:
    """Run one (model, mechanism, scale, batch) configuration.

    ``comm`` overrides the mechanism object (for ablations); the
    ``mechanism`` string is still used for labeling.  gRPC.RDMA crashes
    (oversized messages, §5.1/§5.2) are captured as a crashed result
    rather than raising, mirroring how the paper reports them.

    ``priority_sched``/``eager_flush``/``fusion_bytes`` default to the
    configured comm knobs (see :func:`configure_comm`).  Enabling
    ``priority_sched`` turns on the NIC's priority quantum scheduler
    (unless ``cost`` already sets ``wire_quantum_bytes``) and the
    executors' priority-aware ready queues; ``eager_flush=False``
    builds the post-barrier collective baseline.

    ``collect_trace`` enables the observability layer for this run;
    tracing also turns on automatically while a harness capture sink is
    configured (``--trace-out``/``--metrics-json``), and traced runs
    register themselves with that sink.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; have {STRATEGIES}")
    if fusion_bytes is None:
        fusion_bytes = _COMM_CONFIG.fusion_bytes
    if priority_sched is None:
        priority_sched = _COMM_CONFIG.priority_sched
    if eager_flush is None:
        eager_flush = _COMM_CONFIG.eager_flush
    if fault_spec is None:
        fault_spec = _COMM_CONFIG.fault_spec
    if fault_seed is None:
        fault_seed = _COMM_CONFIG.fault_seed
    if loss_rate is None:
        loss_rate = _COMM_CONFIG.loss_rate
    if loss_rate:
        clause = f"loss:p={loss_rate}"
        fault_spec = f"{fault_spec};{clause}" if fault_spec else clause
    if topology is None:
        topology = _COMM_CONFIG.topology
    if topology not in TOPOLOGIES:
        raise ValueError(f"unknown topology {topology!r}; have {TOPOLOGIES}")
    if oversubscription is None:
        oversubscription = _COMM_CONFIG.oversubscription
    if racks is None:
        racks = _COMM_CONFIG.racks
    if hosts_per_rack is None:
        hosts_per_rack = _COMM_CONFIG.hosts_per_rack
    if hosts_per_rack is not None:
        rack_width: Optional[int] = hosts_per_rack
    elif racks is not None:
        rack_width = (num_servers + racks - 1) // racks
    else:
        rack_width = None
    if priority_sched:
        base_cost = cost if cost is not None else DEFAULT_COST_MODEL
        if base_cost.wire_quantum_bytes <= 0:
            cost = replace(base_cost,
                           wire_quantum_bytes=DEFAULT_WIRE_QUANTUM_BYTES)
    local = mechanism == "Local"
    predicted: Optional[float] = None
    if strategy == "llm":
        # Pipeline-parallel training: one stage per server, the
        # mini-batch cut into microbatches, boundary activations as
        # static RDMA writes.  The stage count is the server count.
        if local:
            raise ValueError("the llm strategy pipelines across servers; "
                             "it has no Local mode")
        if microbatches is None:
            microbatches = (_COMM_CONFIG.microbatches
                            if _COMM_CONFIG.microbatches is not None
                            else DEFAULT_MICROBATCHES)
        if schedule is None:
            schedule = (_COMM_CONFIG.schedule
                        if _COMM_CONFIG.schedule is not None
                        else DEFAULT_SCHEDULE)
        # Transformers ship real sequence activations (seq_len x
        # hidden per sample); other specs keep the generic width.
        elements = 4096
        seq_len = getattr(spec, "seq_len", None)
        hidden = getattr(spec, "hidden", None)
        if seq_len and hidden:
            elements = seq_len * hidden
        job = build_model_parallel_graph(
            spec, num_stages=num_servers, batch_size=batch_size,
            activation_elements_per_sample=elements,
            microbatches=microbatches, schedule=schedule)
        predicted = job.cross_stage_bytes_per_step / max(num_servers, 1)
    elif strategy == "ps" or local:
        job = build_training_graph(spec,
                                   num_workers=1 if local else num_servers,
                                   batch_size=batch_size, local=local,
                                   placement=placement)
    else:
        kwargs = {}
        if fusion_bytes is not None:
            kwargs["fusion_bytes"] = fusion_bytes
        algorithm = strategy
        if strategy == "innetwork" and topology != "fat-tree":
            # There is no switch to aggregate in on a flat fabric:
            # degrade cleanly to the hierarchical host collective (same
            # rack shape, bit-identical to asking for it directly).
            # ``job.algorithm`` records what actually ran; the result's
            # ``strategy`` keeps what was requested.
            algorithm = "hierarchical"
        if algorithm in ("hierarchical", "innetwork"):
            if rack_width is None:
                raise ValueError(
                    f"the {strategy} strategy needs a rack shape; set "
                    "racks= or hosts_per_rack= (or --racks/--hosts-per-rack)")
            kwargs["hosts_per_rack"] = rack_width
        job = build_allreduce_training_graph(
            spec, num_workers=num_servers, batch_size=batch_size,
            algorithm=algorithm, eager_flush=eager_flush, **kwargs)
        predicted = job.bytes_per_worker_per_step
    fabric: Optional[Fabric] = None
    if topology == "fat-tree" and not local:
        if rack_width is None:
            raise ValueError(
                "the fat-tree topology needs a rack shape; set racks= or "
                "hosts_per_rack= (or --racks/--hosts-per-rack)")
        fabric = build_fat_tree(num_servers, rack_width,
                                oversubscription=oversubscription,
                                cost=cost)
    cluster = Cluster(1 if local else num_servers, cost=cost, fabric=fabric)
    if fault_spec:
        cluster.install_faults(
            FaultInjector.from_spec(fault_spec, seed=fault_seed))
    tracing = collect_trace or capture_enabled()
    collector = (cluster.enable_metrics()
                 if collect_metrics or tracing else None)
    tracer = None
    if tracing:
        # The telemetry digest sees every span before any sampling, so
        # anomaly detection is independent of the retention budget.
        tracer = cluster.enable_tracing(
            budget=(None if local
                    else _COMM_CONFIG.trace_budget(num_servers)),
            telemetry=Telemetry(
                hosts_per_rack=rack_width or max(num_servers, 1)))
    device_hosts = {}
    for device in job.devices:
        if device == "local0":
            device_hosts[device] = cluster.hosts[0]
        elif device.startswith("stage"):
            # Pipeline stages: stripping the worker/ps letter set would
            # eat the "s"/"e" of "stage", so peel the prefix exactly.
            device_hosts[device] = cluster.hosts[int(device[len("stage"):])]
        else:
            index = int(device.lstrip("workerps"))
            device_hosts[device] = cluster.hosts[index]
    worker_hosts = tuple(sorted({host.name
                                 for host in device_hosts.values()}))
    comm = comm or make_mechanism(mechanism)
    try:
        session = Session(cluster, job.graph, device_hosts, comm=comm,
                          priority_sched=priority_sched)
        stats = session.run(iterations=iterations, time_limit=time_limit)
    except Exception as exc:  # noqa: BLE001 - crash capture is the point
        return BenchmarkResult(model=spec.name, mechanism=mechanism,
                               num_servers=num_servers,
                               batch_size=batch_size,
                               stats=RunStats(iterations=0),
                               crashed=True, crash_reason=str(exc),
                               strategy=strategy,
                               predicted_wire_bytes=predicted,
                               metrics=collector, tracer=tracer,
                               worker_hosts=worker_hosts, fabric=fabric,
                               sim_horizon=cluster.sim.now,
                               sim_events=cluster.sim.event_count)
    link_utilization: Dict[str, float] = {}
    if tracer is not None and fabric is not None:
        # Per-trunk-link gauges: steady utilization + queueing seconds.
        horizon = cluster.sim.now
        for link_name, stats_ in fabric.link_stats(horizon).items():
            link_utilization[link_name] = stats_["utilization"]
            tracer.metrics.gauge(
                f"link_utilization:{link_name}").set(stats_["utilization"])
            tracer.metrics.gauge(
                f"link_queue_seconds:{link_name}").set(
                    stats_["queue_seconds"])
    incidents: List[Incident] = []
    if tracer is not None:
        incidents = detect_run_anomalies(tracer,
                                         link_utilization=link_utilization,
                                         now=cluster.sim.now)
        capture_run(
            label=(f"{spec.name}/{mechanism}/{strategy}/"
                   f"n{num_servers}/b{batch_size}"),
            tracer=tracer,
            meta={"model": spec.name, "mechanism": mechanism,
                  "strategy": strategy, "num_servers": num_servers,
                  "batch_size": batch_size, "iterations": iterations,
                  "step_time": stats.steady_state_time},
            incidents=[incident.to_dict() for incident in incidents])
    innetwork_snapshot = None
    runtime = getattr(session.comm, "innetwork", None)
    if runtime is not None:
        innetwork_snapshot = runtime.snapshot()
    return BenchmarkResult(model=spec.name, mechanism=mechanism,
                           num_servers=num_servers, batch_size=batch_size,
                           stats=stats, strategy=strategy,
                           predicted_wire_bytes=predicted,
                           metrics=collector, tracer=tracer,
                           worker_hosts=worker_hosts, fabric=fabric,
                           sim_horizon=cluster.sim.now,
                           sim_events=cluster.sim.event_count,
                           incidents=incidents,
                           innetwork=innetwork_snapshot,
                           pipeline=(job if isinstance(job, PipelineJob)
                                     else None))
