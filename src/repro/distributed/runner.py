"""End-to-end distributed training benchmark runner.

One call = one cell of the paper's evaluation matrix: (model,
mechanism, number of servers, mini-batch size) -> steady-state
mini-batch time and throughput.  The deployment follows §5.2: every
server runs one worker process and one parameter-server process, and
the paper's "Local" baseline runs compute and variables on a single
server with no communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.rdma_comm import RdmaCommRuntime
from ..graph.session import RunStats, Session
from ..graph.transfer_api import CommRuntime, NullComm
from ..models.spec import ModelSpec
from ..simnet.costmodel import CostModel
from ..simnet.topology import Cluster
from .replication import TrainingJob, build_training_graph
from .rpc_comm import GrpcCommRuntime


MECHANISMS = ("gRPC.TCP", "gRPC.RDMA", "RDMA", "RDMA.cp", "RDMA.gpu",
              "RDMA+GDR", "Local")


def make_mechanism(name: str) -> CommRuntime:
    """Instantiate a transfer mechanism by its evaluation label."""
    if name == "gRPC.TCP":
        return GrpcCommRuntime(transport="tcp")
    if name == "gRPC.RDMA":
        return GrpcCommRuntime(transport="rdma")
    if name == "RDMA":
        return RdmaCommRuntime(zero_copy=True)
    if name == "RDMA.cp":
        return RdmaCommRuntime(zero_copy=False)
    if name == "RDMA.gpu":
        # Tensors in GPU memory without GPUDirect: PCIe staging on
        # both ends of every transfer (the Table 3 "RDMA" column).
        return RdmaCommRuntime(zero_copy=True, gpu_tensors=True)
    if name == "RDMA+GDR":
        return RdmaCommRuntime(zero_copy=True, gpu_tensors=True,
                               gpudirect=True)
    if name == "Local":
        return NullComm()
    raise ValueError(f"unknown mechanism {name!r}; have {MECHANISMS}")


@dataclass
class BenchmarkResult:
    """Outcome of one benchmark configuration."""

    model: str
    mechanism: str
    num_servers: int
    batch_size: int
    stats: RunStats
    crashed: bool = False
    crash_reason: str = ""

    @property
    def step_time(self) -> float:
        """Steady-state seconds per mini-batch (excludes iteration 0)."""
        return self.stats.steady_state_time

    @property
    def throughput(self) -> float:
        """Mini-batches per second (per worker, steady state)."""
        return self.stats.throughput

    @property
    def samples_per_second(self) -> float:
        """Aggregate samples/s across all workers."""
        return self.throughput * self.batch_size * self.num_servers


def run_training_benchmark(spec: ModelSpec, mechanism: str,
                           num_servers: int, batch_size: int,
                           iterations: int = 4,
                           cost: Optional[CostModel] = None,
                           comm: Optional[CommRuntime] = None,
                           placement: str = "round_robin",
                           time_limit: float = 36000.0) -> BenchmarkResult:
    """Run one (model, mechanism, scale, batch) configuration.

    ``comm`` overrides the mechanism object (for ablations); the
    ``mechanism`` string is still used for labeling.  gRPC.RDMA crashes
    (oversized messages, §5.1/§5.2) are captured as a crashed result
    rather than raising, mirroring how the paper reports them.
    """
    local = mechanism == "Local"
    job = build_training_graph(spec, num_workers=1 if local else num_servers,
                               batch_size=batch_size, local=local,
                               placement=placement)
    cluster = Cluster(1 if local else num_servers, cost=cost)
    device_hosts = {}
    for device in job.devices:
        if device == "local0":
            device_hosts[device] = cluster.hosts[0]
        else:
            index = int(device.lstrip("workerps"))
            device_hosts[device] = cluster.hosts[index]
    comm = comm or make_mechanism(mechanism)
    try:
        session = Session(cluster, job.graph, device_hosts, comm=comm)
        stats = session.run(iterations=iterations, time_limit=time_limit)
    except Exception as exc:  # noqa: BLE001 - crash capture is the point
        return BenchmarkResult(model=spec.name, mechanism=mechanism,
                               num_servers=num_servers,
                               batch_size=batch_size,
                               stats=RunStats(iterations=0),
                               crashed=True, crash_reason=str(exc))
    return BenchmarkResult(model=spec.name, mechanism=mechanism,
                           num_servers=num_servers, batch_size=batch_size,
                           stats=stats)
