"""Data-parallel graph replication over a parameter-server cluster.

Builds the distributed training step of Figure 3: each worker holds a
replica whose *GenGrad* sub-graph (synthetic compute charged with the
benchmark's measured per-batch time) consumes the current weights and
produces one gradient tensor per variable; the gradients flow to the
variables' parameter-server shards, where *ApplyGrad* updates the
shared weights in place; the updated weights flow back to every worker
for the next mini-batch.  Each mini-batch therefore moves
2 x model_size bytes per worker across the network — the paper's
communication-volume characterization (§5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..graph.builder import GraphBuilder
from ..graph.dtypes import DType
from ..graph.node import Graph
from ..graph.shapes import Shape
from ..models.spec import ModelSpec
from .placement import greedy_placement, round_robin_placement


#: simulated time for a PS shard to apply one gradient (per byte cost
#: is charged by the ApplyGradient op itself)
_LR = 0.01


@dataclass
class TrainingJob:
    """A built distributed training graph plus its device layout."""

    graph: Graph
    spec: ModelSpec
    num_workers: int
    num_ps: int
    batch_size: int
    devices: List[str]

    @property
    def bytes_per_worker_per_step(self) -> int:
        return 2 * self.spec.model_bytes


def build_training_graph(spec: ModelSpec, num_workers: int,
                         batch_size: int,
                         num_ps: Optional[int] = None,
                         local: bool = False,
                         placement: str = "round_robin") -> TrainingJob:
    """Construct the replicated data-parallel training graph.

    ``local=True`` builds the paper's "Local" baseline: a single
    device holding both the variables and the compute, so no
    cross-server transfer happens at all (Figure 11's Local line).
    ``placement`` selects the variable-sharding strategy:
    ``"round_robin"`` (the paper's §5.2 default) or ``"greedy"``
    (byte-balanced; an extension).
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    num_ps = num_workers if num_ps is None else num_ps
    builder = GraphBuilder(f"{spec.name}-train")
    if placement == "round_robin":
        shards = round_robin_placement(spec, num_ps)
    elif placement == "greedy":
        shards = greedy_placement(spec, num_ps)
    else:
        raise ValueError(f"unknown placement strategy {placement!r}")

    # Shared variables on their PS shards (or the single local device).
    variable_outputs = {}
    variable_device = {}
    for shard, variables in shards.items():
        device = "local0" if local else shard
        for var in variables:
            out = builder.variable(Shape(var.shape), DType.float32,
                                   name=var.name, device=device)
            variable_outputs[var.name] = out
            variable_device[var.name] = device

    # Per-layer compute-time split: each variable's share of the
    # forward (and backward) pass is proportional to its size, so big
    # layers take longer — and transfers overlap compute exactly as in
    # a real dataflow execution (layer k+1's weights stream in while
    # layer k computes; early gradients ship while later layers are
    # still in backward).
    total_bytes = max(spec.model_bytes, 1)
    step_compute = spec.compute_time(batch_size)
    half = step_compute / 2.0
    weights = [v.nbytes / total_bytes for v in spec.variables]

    for worker_index in range(num_workers):
        worker = "local0" if local else f"worker{worker_index}"
        # Workers read the current weights (PS -> worker transfers).
        reads = [builder.identity(variable_outputs[v.name],
                                  name=f"w{worker_index}/read/{v.name}",
                                  device=worker)
                 for v in spec.variables]
        # Forward chain: layer i needs its weights and layer i-1.
        previous = None
        forward_stages = []
        for i, var in enumerate(spec.variables):
            inputs = [reads[i]]
            if previous is not None:
                inputs.append(previous)
            stage = builder.synthetic_compute(
                half * weights[i], inputs=inputs,
                name=f"w{worker_index}/fwd/{var.name}", device=worker)
            forward_stages.append(stage)
            previous = stage
        # Backward chain (reverse order), each stage emitting its
        # layer's gradient, which ships to the PS immediately.
        for i in reversed(range(len(spec.variables))):
            var = spec.variables[i]
            stage = builder.synthetic_compute(
                half * weights[i],
                outputs=[(DType.float32, Shape(var.shape))],
                inputs=[previous],
                name=f"w{worker_index}/bwd/{var.name}", device=worker)
            previous = stage
            builder.apply_gradient(
                variable_outputs[var.name], stage, lr=_LR,
                name=f"w{worker_index}/apply/{var.name}",
                device=variable_device[var.name])

    graph = builder.finalize()
    devices = sorted({node.device for node in graph})
    return TrainingJob(graph=graph, spec=spec, num_workers=num_workers,
                       num_ps=num_ps, batch_size=batch_size, devices=devices)
