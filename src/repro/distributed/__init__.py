"""Parameter-server data-parallel training (Figure 3's architecture)."""

from .model_parallel import (ModelParallelJob, build_model_parallel_graph,
                             split_stages)
from .placement import (greedy_placement, placement_balance,
                        round_robin_placement)
from .replication import TrainingJob, build_training_graph
from .rpc_comm import GrpcCommRuntime
from .runner import (MECHANISMS, BenchmarkResult, make_mechanism,
                     run_training_benchmark)

__all__ = [
    "BenchmarkResult", "GrpcCommRuntime", "MECHANISMS", "TrainingJob",
    "ModelParallelJob", "build_model_parallel_graph", "build_training_graph",
    "greedy_placement", "make_mechanism", "split_stages",
    "placement_balance", "round_robin_placement", "run_training_benchmark",
]
