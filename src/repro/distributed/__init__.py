"""Parameter-server data-parallel training (Figure 3's architecture)."""

from .allreduce import (ALLREDUCE_ALGORITHMS, AllreduceTrainingJob,
                        build_allreduce_training_graph)
from .model_parallel import (ModelParallelJob, build_model_parallel_graph,
                             split_stages)
from .placement import (greedy_placement, placement_balance,
                        round_robin_placement)
from .replication import TrainingJob, build_training_graph
from .rpc_comm import GrpcCommRuntime
from .runner import (MECHANISMS, STRATEGIES, BenchmarkResult, CommConfig,
                     comm_config, configure_comm, make_mechanism,
                     reset_comm_config, run_training_benchmark,
                     swap_comm_config)

__all__ = [
    "ALLREDUCE_ALGORITHMS", "AllreduceTrainingJob", "BenchmarkResult",
    "CommConfig", "GrpcCommRuntime", "MECHANISMS", "STRATEGIES",
    "TrainingJob", "ModelParallelJob", "build_allreduce_training_graph",
    "build_model_parallel_graph", "build_training_graph", "comm_config",
    "configure_comm", "greedy_placement", "make_mechanism",
    "reset_comm_config", "split_stages", "placement_balance",
    "round_robin_placement", "run_training_benchmark", "swap_comm_config",
]
