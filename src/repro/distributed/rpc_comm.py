"""The gRPC baselines as CommRuntimes (TensorFlow's rendezvous).

TensorFlow transfers tensors between partitions through a rendezvous:
the *receiver* issues a ``RecvTensor`` RPC to the producer's server,
which replies with the serialized tensor once the local Send op has
produced it.  Both baselines share this logic and differ only in the
RPC transport underneath:

* ``GrpcCommRuntime(transport="tcp")``  — the stock gRPC.TCP;
* ``GrpcCommRuntime(transport="rdma")`` — gRPC over RDMA verbs with
  private message buffers (TensorFlow r1.0+'s verbs integration).

Every transfer pays the full RPC toll the paper identifies: request
leg, serialization, transport copies, deserialization, and a final
copy into a freshly allocated destination tensor.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from ..graph.executor import Executor
from ..graph.node import Node
from ..graph.shapes import Shape
from ..graph.tensor import Tensor
from ..graph.transfer_api import CommRuntime, Outcome
from ..rpc.core import RpcEndpoint, RpcError
from ..rpc.serialization import Message, Payload
from ..rpc.transport_rdma import GrpcRdmaServer, connect_grpc_rdma
from ..rpc.transport_tcp import GrpcTcpServer, connect_grpc_tcp
from ..simnet.simulator import Store
from ..simnet.topology import Endpoint


_PORT_BASE = 6200


class _Rendezvous:
    """Per-device table: produced tensors waiting for remote pickup."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self._slots: Dict[Tuple[str, int], Store] = {}

    def _slot(self, key: str, iteration: int) -> Store:
        return self._slots.setdefault((key, iteration), Store(self.sim))

    def produce(self, key: str, iteration: int, tensor: Tensor) -> None:
        self._slot(key, iteration).put(tensor)

    def consume(self, key: str, iteration: int):
        """Event yielding the tensor (waits for the producer)."""
        return self._slot(key, iteration).get()

    def gc(self, before_iteration: int) -> None:
        stale = [k for k in self._slots if k[1] < before_iteration]
        for k in stale:
            del self._slots[k]


class GrpcCommRuntime(CommRuntime):
    """Tensor transfer over the RPC substrate (the baselines)."""

    def __init__(self, transport: str = "tcp",
                 gpu_tensors: bool = False) -> None:
        if transport not in ("tcp", "rdma"):
            raise ValueError(f"unknown transport {transport!r}")
        self.transport = transport
        self.gpu_tensors = gpu_tensors
        self.name = "gRPC.TCP" if transport == "tcp" else "gRPC.RDMA"
        self.servers: Dict[str, object] = {}
        self.rendezvous: Dict[str, _Rendezvous] = {}
        self.channels: Dict[Tuple[str, str], RpcEndpoint] = {}
        self.endpoints: Dict[str, Endpoint] = {}
        self.bytes_sent = 0

    # -- setup -----------------------------------------------------------------------

    def prepare(self, session) -> None:
        for index, device_name in enumerate(sorted(session.executors)):
            executor = session.executors[device_name]
            endpoint = Endpoint(executor.host.name, _PORT_BASE + index)
            self.endpoints[device_name] = endpoint
            rendezvous = _Rendezvous(session.sim)
            self.rendezvous[device_name] = rendezvous
            if self.transport == "tcp":
                server = GrpcTcpServer(executor.host, endpoint.port,
                                       name=f"tf-{device_name}")
            else:
                server = GrpcRdmaServer(executor.host, endpoint.port,
                                        name=f"tf-{device_name}")
            server.register("recv_tensor",
                            self._make_recv_tensor_handler(rendezvous))
            self.servers[device_name] = server

        # Dial every (consumer -> producer) pair that has transfers.
        pairs = {(t.dst_device, t.src_device)
                 for t in session.partitioned.transfers}
        for dst_device, src_device in sorted(pairs):
            executor = session.executors[dst_device]
            endpoint = self.endpoints[src_device]
            if self.transport == "tcp":
                channel = connect_grpc_tcp(executor.host, endpoint)
            else:
                channel = connect_grpc_rdma(executor.host, endpoint)
            self.channels[(dst_device, src_device)] = channel

    def _make_recv_tensor_handler(self, rendezvous: _Rendezvous):
        def handler(request: Message) -> Generator:
            key = request["key"]
            iteration = request["iteration"]
            tensor: Tensor = yield rendezvous.consume(key, iteration)
            if tensor.is_dense:
                payload = Payload(data=tensor.array.tobytes())
            else:
                payload = Payload(size=tensor.nbytes)
            dims = [int(d) for d in tensor.shape.dims]
            return Message(data=payload, dims=dims,
                           dtype=tensor.dtype.code)
        return handler

    def on_iteration_start(self, session, iteration: int) -> None:
        for rendezvous in self.rendezvous.values():
            rendezvous.gc(iteration - 1)

    # -- executor interface -------------------------------------------------------------

    def execute_send(self, executor: Executor, node: Node, tensor: Tensor):
        """Send is a local rendezvous deposit (TF semantics): cheap."""
        if self.gpu_tensors:
            # Without GPUDirect the tensor must be staged to host memory
            # before the RPC layer can serialize it.
            def deposit() -> Generator:
                yield (
                    executor.cost.pcie_copy_time(tensor.nbytes))
                self.rendezvous[executor.device].produce(
                    node.attrs["key"], executor.iteration, tensor)
                return Outcome.done([])
            return deposit()
        self.rendezvous[executor.device].produce(
            node.attrs["key"], executor.iteration, tensor)
        self.bytes_sent += tensor.nbytes
        return Outcome.done([])

    def execute_recv(self, executor: Executor, node: Node):
        key = node.attrs["key"]
        src_device = node.attrs["src_device"]
        channel = self.channels.get((executor.device, src_device))
        if channel is None:
            raise RpcError(f"no channel {executor.device}->{src_device}")

        def fetch() -> Generator:
            reply = yield channel.call(
                "recv_tensor", Message(key=key, iteration=executor.iteration))
            error = reply.get("_error")
            if error:
                raise RpcError(error)
            payload: Payload = reply["data"]
            dims = reply["dims"]
            from ..graph.dtypes import DType
            dtype = DType.from_code(reply["dtype"])
            shape = Shape(dims)
            tensor = executor.allocate_output(node, 0, dtype, shape)
            # The RPC path cannot deliver into the consumer's buffer:
            # one more copy from the deserialized message into the
            # freshly allocated tensor.
            yield from executor.host.cpu.run(
                executor.cost.memcpy_time(payload.size))
            if tensor.is_dense and payload.data is not None:
                import numpy as np
                tensor.copy_from(
                    np.frombuffer(payload.data, dtype=dtype.np).reshape(
                        shape.as_tuple()))
            if self.gpu_tensors:
                yield (
                    executor.cost.pcie_copy_time(payload.size))
            return [tensor]
        return Outcome.wait(executor.sim.spawn(fetch(), name=f"recv-{key}"))
