"""Model-parallel training: pipeline the layers across servers.

The paper's distributed dataflow model "offers convenience and
flexibility to allow not only data-parallelism, but also
model-parallelism, which is critical when the deep learning model size
is large" (§2.1, Figure 2).  This module builds exactly that: the
model's layers are split into contiguous *stages*, each stage's
variables live on their own server, and what crosses the network is
the **activations** (forward) and **activation gradients** (backward)
between adjacent stages — all through the same Send/Recv machinery,
so every transfer mechanism (gRPC or the paper's RDMA protocols)
applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..graph.builder import GraphBuilder
from ..graph.dtypes import DType
from ..graph.node import Graph
from ..graph.shapes import Shape
from ..models.spec import ModelSpec


_LR = 0.01


@dataclass
class ModelParallelJob:
    """A built pipeline-parallel training graph."""

    graph: Graph
    spec: ModelSpec
    num_stages: int
    batch_size: int
    devices: List[str]
    activation_bytes: int

    @property
    def cross_stage_bytes_per_step(self) -> int:
        """Activations forward + gradients backward per boundary."""
        return 2 * self.activation_bytes * (self.num_stages - 1)


def split_stages(spec: ModelSpec, num_stages: int) -> List[List[int]]:
    """Split layer indices into contiguous, byte-balanced stages."""
    if num_stages < 1:
        raise ValueError("need at least one stage")
    if num_stages > spec.num_variables:
        raise ValueError(f"{num_stages} stages but only "
                         f"{spec.num_variables} layers")
    target = spec.model_bytes / num_stages
    stages: List[List[int]] = []
    current: List[int] = []
    accumulated = 0
    for index, variable in enumerate(spec.variables):
        current.append(index)
        accumulated += variable.nbytes
        remaining_layers = spec.num_variables - index - 1
        stages_still_needed = num_stages - len(stages) - 1
        must_split = remaining_layers == stages_still_needed
        if len(stages) < num_stages - 1 and (accumulated >= target
                                             or must_split):
            stages.append(current)
            current, accumulated = [], 0
    stages.append(current)
    return stages


def build_model_parallel_graph(
        spec: ModelSpec, num_stages: int, batch_size: int,
        activation_elements_per_sample: int = 4096) -> ModelParallelJob:
    """Build the pipeline: stage i computes its layers, ships the
    activation tensor to stage i+1; the backward pass returns."""
    stages = split_stages(spec, num_stages)
    builder = GraphBuilder(f"{spec.name}-model-parallel")
    half = spec.compute_time(batch_size) / 2.0
    total_bytes = max(spec.model_bytes, 1)
    activation_shape = Shape([batch_size, activation_elements_per_sample])
    activation_bytes = batch_size * activation_elements_per_sample * 4

    # Stage-local variables.
    variable_outputs = {}
    for stage_index, layer_indices in enumerate(stages):
        device = f"stage{stage_index}"
        for layer in layer_indices:
            var = spec.variables[layer]
            variable_outputs[layer] = builder.variable(
                Shape(var.shape), DType.float32, name=var.name,
                device=device)

    # Forward pipeline.
    previous = None
    stage_tail = {}
    for stage_index, layer_indices in enumerate(stages):
        device = f"stage{stage_index}"
        for layer in layer_indices:
            var = spec.variables[layer]
            inputs = [variable_outputs[layer]]
            if previous is not None:
                inputs.append(previous)
            share = half * var.nbytes / total_bytes
            previous = builder.synthetic_compute(
                share, inputs=inputs,
                outputs=[(DType.float32, activation_shape)],
                name=f"fwd/{var.name}", device=device)
        stage_tail[stage_index] = previous

    # Backward pipeline (reverse stage order); each layer's stage
    # applies its own gradient locally — no parameter server.
    for stage_index in reversed(range(len(stages))):
        device = f"stage{stage_index}"
        for layer in reversed(stages[stage_index]):
            var = spec.variables[layer]
            share = half * var.nbytes / total_bytes
            grad_stage = builder.synthetic_compute(
                share, inputs=[previous],
                outputs=[(DType.float32, activation_shape),
                         (DType.float32, Shape(var.shape))],
                name=f"bwd/{var.name}", device=device)
            previous = grad_stage
            builder.apply_gradient(
                variable_outputs[layer], grad_stage.node.output(1),
                lr=_LR, name=f"apply/{var.name}", device=device)

    graph = builder.finalize()
    return ModelParallelJob(
        graph=graph, spec=spec, num_stages=num_stages,
        batch_size=batch_size,
        devices=sorted({n.device for n in graph}),
        activation_bytes=activation_bytes)
