"""Model-parallel training: pipeline the layers across servers.

The paper's distributed dataflow model "offers convenience and
flexibility to allow not only data-parallelism, but also
model-parallelism, which is critical when the deep learning model size
is large" (§2.1, Figure 2).  This module builds exactly that: the
model's layers are split into contiguous *stages*, each stage's
variables live on their own server, and what crosses the network is
the **activations** (forward) and **activation gradients** (backward)
between adjacent stages — all through the same Send/Recv machinery,
so every transfer mechanism (gRPC or the paper's RDMA protocols)
applies unchanged.

Two build modes:

* **layer-sequential** (``microbatches=None``): the original one-
  minibatch pipeline — one forward/backward node per layer, a single
  activation in flight.  Kept byte-for-byte so existing golden runs
  stay bit-identical.
* **microbatched schedules** (``microbatches >= 1``): the mini-batch
  is cut into microbatches and every stage executes an explicit
  per-stage order — GPipe (all forwards, then all backwards, with
  activation rematerialization paying an extra forward inside each
  backward) or 1F1B (warmup forwards, steady-state one-forward-one-
  backward, drain), the schedule Megatron/PipeDream-Flush run.  The
  order is pinned into the dataflow graph itself via chain edges, so
  the unmodified executor reproduces it and the stall report's per-
  stage ``op`` accounting measures exactly the useful compute —
  everything else in the iteration window is pipeline bubble (see
  :func:`pipeline_bubble_report`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graph.builder import GraphBuilder
from ..graph.dtypes import DType
from ..graph.node import Graph
from ..graph.shapes import Shape
from ..models.spec import ModelSpec


_LR = 0.01

#: microbatched pipeline schedules (the CLI's ``--schedule``)
SCHEDULES = ("gpipe", "1f1b")

#: forward share of one microbatch's compute; backward is the rest
#: (the textbook 1:2 forward:backward FLOP ratio)
_FORWARD_SHARE = 1.0 / 3.0


@dataclass
class ModelParallelJob:
    """A built pipeline-parallel training graph."""

    graph: Graph
    spec: ModelSpec
    num_stages: int
    batch_size: int
    devices: List[str]
    activation_bytes: int

    @property
    def cross_stage_bytes_per_step(self) -> int:
        """Activations forward + gradients backward per boundary."""
        return 2 * self.activation_bytes * (self.num_stages - 1)


@dataclass
class PipelineJob(ModelParallelJob):
    """A microbatched pipeline graph plus its analytic cost model.

    ``activation_bytes`` is the size of one *microbatch* boundary
    transfer; per-stage forward/backward times are recorded so the
    bubble report can separate useful compute from schedule bubble
    without re-deriving the synthetic cost model.
    """

    microbatches: int = 1
    schedule: str = "1f1b"
    rematerialize: bool = False
    stage_layers: List[List[int]] = None  # type: ignore[assignment]
    #: per-stage forward / backward compute for ONE microbatch (s);
    #: backward excludes the rematerialization surcharge
    stage_forward_s: List[float] = None   # type: ignore[assignment]
    stage_backward_s: List[float] = None  # type: ignore[assignment]

    @property
    def microbatch_size(self) -> int:
        return self.batch_size // self.microbatches

    @property
    def cross_stage_bytes_per_step(self) -> int:
        return (2 * self.activation_bytes * (self.num_stages - 1)
                * self.microbatches)

    def remat_seconds(self, stage: int) -> float:
        """Rematerialization time stage ``stage`` pays per step."""
        if not self.rematerialize:
            return 0.0
        return self.microbatches * self.stage_forward_s[stage]

    @property
    def useful_seconds(self) -> float:
        """Per-step compute that advances training, summed over stages."""
        return self.microbatches * (sum(self.stage_forward_s)
                                    + sum(self.stage_backward_s))

    @property
    def ideal_step_seconds(self) -> float:
        """The (M + S - 1) lower bound with the slowest stage pacing."""
        per_mb = [f + b + (f if self.rematerialize else 0.0)
                  for f, b in zip(self.stage_forward_s,
                                  self.stage_backward_s)]
        return (self.microbatches + self.num_stages - 1) * max(per_mb)


def split_stages(spec: ModelSpec, num_stages: int) -> List[List[int]]:
    """Split layer indices into contiguous, byte-balanced stages.

    Asking for more stages than the model has layers clamps to one
    layer per stage (with a warning) rather than failing — deep
    pipelines degrade gracefully on small models.
    """
    if num_stages < 1:
        raise ValueError("need at least one stage")
    if num_stages > spec.num_variables:
        warnings.warn(
            f"{num_stages} stages but {spec.name} has only "
            f"{spec.num_variables} layers; clamping to "
            f"{spec.num_variables} stages", stacklevel=2)
        num_stages = spec.num_variables
    target = spec.model_bytes / num_stages
    stages: List[List[int]] = []
    current: List[int] = []
    accumulated = 0
    for index, variable in enumerate(spec.variables):
        current.append(index)
        accumulated += variable.nbytes
        remaining_layers = spec.num_variables - index - 1
        stages_still_needed = num_stages - len(stages) - 1
        must_split = remaining_layers == stages_still_needed
        if len(stages) < num_stages - 1 and (accumulated >= target
                                             or must_split):
            stages.append(current)
            current, accumulated = [], 0
    stages.append(current)
    return stages


def schedule_order(schedule: str, num_stages: int, stage: int,
                   microbatches: int) -> List[Tuple[str, int]]:
    """The exact per-stage execution order: ("F"|"B", microbatch).

    * ``gpipe``: all forwards, then all backwards (a per-stage flush).
    * ``1f1b``: ``min(S - 1 - stage, M)`` warmup forwards, then
      alternate forward/backward, then drain the remaining backwards.

    Both orders respect the cross-stage dataflow (forward m needs the
    upstream activation m; backward m needs the downstream gradient m),
    so pinning them with chain edges can never deadlock the executor.
    """
    if schedule not in SCHEDULES:
        raise ValueError(f"unknown schedule {schedule!r}; have {SCHEDULES}")
    if schedule == "gpipe":
        return ([("F", m) for m in range(microbatches)]
                + [("B", m) for m in range(microbatches)])
    warmup = min(num_stages - 1 - stage, microbatches)
    order = [("F", m) for m in range(warmup)]
    forward, backward = warmup, 0
    while forward < microbatches:
        order.append(("F", forward))
        order.append(("B", backward))
        forward += 1
        backward += 1
    while backward < microbatches:
        order.append(("B", backward))
        backward += 1
    return order


def build_model_parallel_graph(
        spec: ModelSpec, num_stages: int, batch_size: int,
        activation_elements_per_sample: int = 4096,
        microbatches: Optional[int] = None,
        schedule: str = "1f1b",
        rematerialize: Optional[bool] = None) -> ModelParallelJob:
    """Build the pipeline: stage i computes its layers, ships the
    activation tensor to stage i+1; the backward pass returns.

    With ``microbatches`` set, the graph becomes a microbatched
    schedule (see module docstring) and the result is a
    :class:`PipelineJob`.  ``rematerialize`` defaults to True for
    GPipe (which stores only boundary activations and recomputes the
    rest, per the GPipe paper) and False for 1F1B (which bounds live
    activations at the stage depth instead).
    """
    if microbatches is not None:
        return _build_scheduled_pipeline(
            spec, num_stages, batch_size, activation_elements_per_sample,
            microbatches, schedule, rematerialize)
    stages = split_stages(spec, num_stages)
    num_stages = len(stages)
    builder = GraphBuilder(f"{spec.name}-model-parallel")
    half = spec.compute_time(batch_size) / 2.0
    total_bytes = max(spec.model_bytes, 1)
    activation_shape = Shape([batch_size, activation_elements_per_sample])
    activation_bytes = batch_size * activation_elements_per_sample * 4

    # Stage-local variables.
    variable_outputs = {}
    for stage_index, layer_indices in enumerate(stages):
        device = f"stage{stage_index}"
        for layer in layer_indices:
            var = spec.variables[layer]
            variable_outputs[layer] = builder.variable(
                Shape(var.shape), DType.float32, name=var.name,
                device=device)

    # Forward pipeline.
    previous = None
    stage_tail = {}
    for stage_index, layer_indices in enumerate(stages):
        device = f"stage{stage_index}"
        for layer in layer_indices:
            var = spec.variables[layer]
            inputs = [variable_outputs[layer]]
            if previous is not None:
                inputs.append(previous)
            share = half * var.nbytes / total_bytes
            previous = builder.synthetic_compute(
                share, inputs=inputs,
                outputs=[(DType.float32, activation_shape)],
                name=f"fwd/{var.name}", device=device)
        stage_tail[stage_index] = previous

    # Backward pipeline (reverse stage order); each layer's stage
    # applies its own gradient locally — no parameter server.
    for stage_index in reversed(range(len(stages))):
        device = f"stage{stage_index}"
        for layer in reversed(stages[stage_index]):
            var = spec.variables[layer]
            share = half * var.nbytes / total_bytes
            grad_stage = builder.synthetic_compute(
                share, inputs=[previous],
                outputs=[(DType.float32, activation_shape),
                         (DType.float32, Shape(var.shape))],
                name=f"bwd/{var.name}", device=device)
            previous = grad_stage
            builder.apply_gradient(
                variable_outputs[layer], grad_stage.node.output(1),
                lr=_LR, name=f"apply/{var.name}", device=device)

    graph = builder.finalize()
    return ModelParallelJob(
        graph=graph, spec=spec, num_stages=num_stages,
        batch_size=batch_size,
        devices=sorted({n.device for n in graph}),
        activation_bytes=activation_bytes)


def _build_scheduled_pipeline(
        spec: ModelSpec, num_stages: int, batch_size: int,
        activation_elements_per_sample: int, microbatches: int,
        schedule: str, rematerialize: Optional[bool]) -> PipelineJob:
    if schedule not in SCHEDULES:
        raise ValueError(f"unknown schedule {schedule!r}; have {SCHEDULES}")
    if microbatches < 1:
        raise ValueError("need at least one microbatch")
    if batch_size % microbatches:
        raise ValueError(f"batch size {batch_size} not divisible by "
                         f"{microbatches} microbatches")
    if rematerialize is None:
        rematerialize = schedule == "gpipe"
    stages = split_stages(spec, num_stages)
    num_stages = len(stages)
    mb_size = batch_size // microbatches
    builder = GraphBuilder(
        f"{spec.name}-pipeline-{schedule}-m{microbatches}")
    total_bytes = max(spec.model_bytes, 1)
    # One microbatch's full fwd+bwd compute, split across stages by
    # parameter bytes (the same proportionality the sequential path
    # uses), then 1:2 between forward and backward.
    mb_compute = spec.sample_time * max(
        1.0, (batch_size / microbatches) / spec.batch_saturation)
    stage_share = [sum(spec.variables[i].nbytes for i in layer_indices)
                   / total_bytes for layer_indices in stages]
    stage_forward = [mb_compute * share * _FORWARD_SHARE
                     for share in stage_share]
    stage_backward = [mb_compute * share * (1.0 - _FORWARD_SHARE)
                      for share in stage_share]
    activation_shape = Shape([mb_size, activation_elements_per_sample])
    activation_bytes = mb_size * activation_elements_per_sample * 4

    # Stage-local variables.
    variable_outputs: Dict[int, object] = {}
    for stage_index, layer_indices in enumerate(stages):
        device = f"stage{stage_index}"
        for layer in layer_indices:
            var = spec.variables[layer]
            variable_outputs[layer] = builder.variable(
                Shape(var.shape), DType.float32, name=var.name,
                device=device)

    # Schedule every (stage, microbatch) cell in the exact per-stage
    # order.  A chain edge (previous cell's first output) pins the
    # order inside each stage; cross-stage activation edges become the
    # static RDMA transfers.  Backward cells before the last also emit
    # only the activation gradient — gradients accumulate in place and
    # the final backward materializes the per-variable gradients.
    forward_nodes: Dict[Tuple[int, int], object] = {}
    backward_nodes: Dict[Tuple[int, int], object] = {}
    orders = {s: schedule_order(schedule, num_stages, s, microbatches)
              for s in range(num_stages)}
    # Topological emission: walk cells stage-by-stage in schedule
    # order, deferring any cell whose cross-stage input isn't built
    # yet.  The schedules are causally valid, so this always drains.
    cursors = {s: 0 for s in range(num_stages)}
    remaining = sum(len(order) for order in orders.values())
    while remaining:
        progressed = False
        for stage_index in range(num_stages):
            order = orders[stage_index]
            while cursors[stage_index] < len(order):
                kind, mb = order[cursors[stage_index]]
                if kind == "F" and stage_index > 0 \
                        and (stage_index - 1, mb) not in forward_nodes:
                    break
                if kind == "B" and stage_index < num_stages - 1 \
                        and (stage_index + 1, mb) not in backward_nodes:
                    break
                _emit_cell(builder, spec, stages, stage_index, kind, mb,
                           orders, forward_nodes, backward_nodes,
                           variable_outputs, stage_forward, stage_backward,
                           activation_shape, rematerialize, microbatches)
                cursors[stage_index] += 1
                remaining -= 1
                progressed = True
        if not progressed:  # pragma: no cover - schedules are valid
            raise RuntimeError(f"schedule {schedule!r} deadlocked")

    # Weight update: the last backward of each stage carries the
    # accumulated per-variable gradients.
    for stage_index, layer_indices in enumerate(stages):
        device = f"stage{stage_index}"
        last_backward = backward_nodes[(stage_index, microbatches - 1)]
        for slot, layer in enumerate(layer_indices, start=1):
            var = spec.variables[layer]
            builder.apply_gradient(
                variable_outputs[layer],
                last_backward.node.output(slot),
                lr=_LR, name=f"apply/{var.name}", device=device)

    graph = builder.finalize()
    return PipelineJob(
        graph=graph, spec=spec, num_stages=num_stages,
        batch_size=batch_size,
        devices=sorted({n.device for n in graph}),
        activation_bytes=activation_bytes,
        microbatches=microbatches, schedule=schedule,
        rematerialize=rematerialize,
        stage_layers=[list(layer_indices) for layer_indices in stages],
        stage_forward_s=stage_forward, stage_backward_s=stage_backward)


def _emit_cell(builder, spec, stages, stage_index, kind, mb, orders,
               forward_nodes, backward_nodes, variable_outputs,
               stage_forward, stage_backward, activation_shape,
               rematerialize, microbatches) -> None:
    device = f"stage{stage_index}"
    order = orders[stage_index]
    position = order.index((kind, mb))
    inputs = []
    if position == 0:
        # Anchor the stage's first cell on its variables so nothing
        # runs before initialization.
        inputs += [variable_outputs[layer] for layer in stages[stage_index]]
    else:
        prev_kind, prev_mb = order[position - 1]
        prev = (forward_nodes if prev_kind == "F"
                else backward_nodes)[(stage_index, prev_mb)]
        inputs.append(prev)
    if kind == "F":
        if stage_index > 0:
            inputs.append(forward_nodes[(stage_index - 1, mb)])
        forward_nodes[(stage_index, mb)] = builder.synthetic_compute(
            stage_forward[stage_index], inputs=inputs,
            outputs=[(DType.float32, activation_shape)],
            name=f"fwd/s{stage_index}/m{mb}", device=device)
        return
    if stage_index < len(stages) - 1:
        inputs.append(backward_nodes[(stage_index + 1, mb)])
    else:
        inputs.append(forward_nodes[(stage_index, mb)])
    cost = stage_backward[stage_index]
    if rematerialize:
        # GPipe recomputes the stage forward before differentiating.
        cost += stage_forward[stage_index]
    outputs = [(DType.float32, activation_shape)]
    if mb == microbatches - 1:
        outputs += [(DType.float32, Shape(spec.variables[layer].shape))
                    for layer in stages[stage_index]]
    backward_nodes[(stage_index, mb)] = builder.synthetic_compute(
        cost, inputs=inputs, outputs=outputs,
        name=f"bwd/s{stage_index}/m{mb}", device=device)


def pipeline_bubble_report(job: PipelineJob, report,
                           skip_warmup: bool = True) -> Dict[str, object]:
    """Bubble-time accounting on top of the stall report.

    For every stage executor the stall report already partitions the
    iteration window into ``op`` (busy computing) and the stall
    categories (sched/poll/poll_wait/wire_wait), with the remainder of
    the window being post-finish idle (the stage is done, the session
    barrier isn't).  Everything that is not *useful* compute is
    pipeline bubble:

        bubble(stage) = window - op(stage) + remat(stage)

    where ``remat`` re-classifies GPipe's recomputation surcharge
    (measured inside ``op``) as bubble — it burns cycles without
    advancing training.  By construction ``op + bubble - remat``
    equals the measured iteration time exactly, so the figures sum
    into the stall report rather than floating beside it.
    """
    from ..observability.tracer import executor_track

    iterations = report.iterations
    if skip_warmup and len(iterations) > 1:
        iterations = iterations[1:]
    if not iterations:
        raise ValueError("stall report has no iterations; "
                         "run with collect_trace=True")
    tracks = {executor_track(f"stage{s}"): s
              for s in range(job.num_stages)}
    per_stage = [{"stage": s, "op_s": 0.0, "stall_s": 0.0,
                  "idle_s": 0.0, "remat_s": 0.0, "bubble_s": 0.0}
                 for s in range(job.num_stages)]
    total_duration = 0.0
    for it in iterations:
        total_duration += it.duration
        for executor in it.executors:
            stage = tracks.get(executor.track)
            if stage is None:
                continue
            op = executor.components.get("op", 0.0)
            stalls = sum(v for k, v in executor.components.items()
                         if k != "op")
            remat = job.remat_seconds(stage)
            row = per_stage[stage]
            row["op_s"] += op
            row["stall_s"] += stalls
            row["idle_s"] += max(it.duration - executor.total, 0.0)
            row["remat_s"] += remat
            row["bubble_s"] += it.duration - op + remat
    for row in per_stage:
        row["bubble_fraction"] = (row["bubble_s"] / total_duration
                                  if total_duration else 0.0)
        row["useful_fraction"] = ((row["op_s"] - row["remat_s"])
                                  / total_duration
                                  if total_duration else 0.0)
    slots = job.num_stages * total_duration
    bubble = sum(row["bubble_s"] for row in per_stage)
    useful = sum(row["op_s"] - row["remat_s"] for row in per_stage)
    return {
        "schedule": job.schedule,
        "stages": job.num_stages,
        "microbatches": job.microbatches,
        "rematerialize": job.rematerialize,
        "iterations": len(iterations),
        "step_s": total_duration / len(iterations),
        "ideal_step_s": job.ideal_step_seconds,
        "per_stage": per_stage,
        "bubble_fraction": bubble / slots if slots else 0.0,
        "useful_fraction": useful / slots if slots else 0.0,
        # op + bubble - remat == stages * duration, by construction;
        # report the residual so drift is visible.
        "accounting_residual_s": (sum(row["op_s"] + row["bubble_s"]
                                      - row["remat_s"]
                                      for row in per_stage) - slots),
    }
