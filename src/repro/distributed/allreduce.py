"""Data-parallel training over worker-to-worker collectives.

The paper's evaluation (§5, Figure 11) trains through a
parameter-server graph: every mini-batch moves ``2 × model_bytes`` per
worker (gradients up, weights down) and concentrates the aggregate
load on the PS shards.  This module builds the alternative that modern
stacks (NCCL/Horovod-style) use: every worker holds a **replica** of
the variables, gradients are bucketized into fusion buffers
(:mod:`repro.collectives.bucketing`) and reduced directly between
workers with a bandwidth-optimal collective, and each worker applies
the reduced gradient to its local replica.  Per step a worker then
puts only ``≈ 2 × model_bytes × (N-1)/N`` on the wire, there are no
PS processes at all, and every chunk transfer is a statically-placed
one-sided RDMA write.

``build_allreduce_training_graph`` mirrors
:func:`repro.distributed.replication.build_training_graph` — same
forward/backward synthetic-compute split, same learning-rate constant —
so PS-vs-collective comparisons differ only in the communication
pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..collectives.bucketing import (DEFAULT_FUSION_BYTES, GradientBucket,
                                     plan_buckets)
from ..collectives.fragments import (halving_doubling_allreduce,
                                     halving_doubling_wire_bytes,
                                     ring_allreduce,
                                     ring_allreduce_wire_bytes,
                                     tag_fragment_priority)
from ..collectives.hierarchical import (hierarchical_allreduce,
                                        hierarchical_wire_bytes)
from ..collectives.innetwork import (innetwork_allreduce,
                                     innetwork_wire_bytes)
from ..graph.builder import GraphBuilder
from ..graph.dtypes import DType
from ..graph.node import Graph, NodeOutput
from ..graph.shapes import Shape
from ..models.spec import ModelSpec
from .replication import _LR


#: collective algorithms selectable from the harness
ALLREDUCE_ALGORITHMS = ("ring", "halving-doubling", "hierarchical",
                        "innetwork")


@dataclass
class AllreduceTrainingJob:
    """A built allreduce training graph plus its layout and policy."""

    graph: Graph
    spec: ModelSpec
    num_workers: int
    batch_size: int
    devices: List[str]
    algorithm: str
    fusion_bytes: int
    buckets: List[GradientBucket]
    #: False = post-barrier baseline: every bucket's reduction is held
    #: back (by control edges) until the whole backward pass finishes
    eager_flush: bool = True
    #: rack width for the hierarchical algorithm (None for flat ones)
    hosts_per_rack: Optional[int] = None

    @property
    def bytes_per_worker_per_step(self) -> float:
        """Predicted mean wire payload per worker per mini-batch."""
        if self.algorithm == "hierarchical":
            return sum(hierarchical_wire_bytes(bucket.nbytes,
                                               self.num_workers,
                                               self.hosts_per_rack or 1)
                       for bucket in self.buckets)
        if self.algorithm == "innetwork":
            return sum(innetwork_wire_bytes(bucket.nbytes, self.num_workers)
                       for bucket in self.buckets)
        predict = (ring_allreduce_wire_bytes if self.algorithm == "ring"
                   else halving_doubling_wire_bytes)
        return sum(predict(bucket.nbytes, self.num_workers)
                   for bucket in self.buckets)


def build_allreduce_training_graph(
        spec: ModelSpec, num_workers: int, batch_size: int,
        algorithm: str = "ring",
        fusion_bytes: int = DEFAULT_FUSION_BYTES,
        lr: Optional[float] = None,
        eager_flush: bool = True,
        hosts_per_rack: Optional[int] = None) -> AllreduceTrainingJob:
    """Construct the replicated, collective-reduced training graph.

    Every worker owns a full variable replica; the backward pass emits
    per-variable gradients in reverse layer order, which are packed
    into fusion buckets (so a bucket's allreduce starts as soon as its
    last gradient materializes and overlaps the rest of backward),
    reduced across workers with the selected collective, unpacked, and
    applied locally.

    ``eager_flush=False`` builds the post-barrier baseline instead:
    control edges hold every bucket's pack back until the worker's
    whole backward pass has finished, so no reduction overlaps backward
    compute.  Each bucket's fragment is also stamped with the bucket's
    scheduling priority (later buckets carry earlier layers' gradients,
    needed first by the next forward pass) for the priority wire
    scheduler to honour.
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    if algorithm not in ALLREDUCE_ALGORITHMS:
        raise ValueError(f"unknown allreduce algorithm {algorithm!r}; "
                         f"have {ALLREDUCE_ALGORITHMS}")
    if algorithm in ("hierarchical", "innetwork"):
        if hosts_per_rack is None or hosts_per_rack < 1:
            raise ValueError(f"{algorithm} allreduce needs hosts_per_rack "
                             f">= 1, got {hosts_per_rack!r}")
        rack_collective = (hierarchical_allreduce
                           if algorithm == "hierarchical"
                           else innetwork_allreduce)

        def collective(builder, packed, workers, name):
            return rack_collective(builder, packed, workers,
                                   hosts_per_rack=hosts_per_rack,
                                   name=name)
    else:
        collective = (ring_allreduce if algorithm == "ring"
                      else halving_doubling_allreduce)
        hosts_per_rack = None
    lr = _LR if lr is None else lr
    builder = GraphBuilder(f"{spec.name}-allreduce-{algorithm}")
    workers = [f"worker{i}" for i in range(num_workers)]

    # Replicated variables: every worker holds every tensor locally.
    variable_outputs = [
        {var.name: builder.variable(Shape(var.shape), DType.float32,
                                    name=f"w{i}/{var.name}", device=worker)
         for var in spec.variables}
        for i, worker in enumerate(workers)]

    # The same proportional compute split as the PS graph (replication
    # module): layer k's share of forward/backward time follows its
    # size, so transfers overlap compute identically in both graphs.
    total_bytes = max(spec.model_bytes, 1)
    step_compute = spec.compute_time(batch_size)
    half = step_compute / 2.0
    weights = [v.nbytes / total_bytes for v in spec.variables]

    # grads[i][var.name]: worker i's local gradient for the variable.
    grads: List[dict] = [{} for _ in range(num_workers)]
    #: worker i's final backward stage — the barrier for eager_flush=False
    last_bwd: List[NodeOutput] = []
    for i, worker in enumerate(workers):
        reads = [builder.identity(variable_outputs[i][v.name],
                                  name=f"w{i}/read/{v.name}", device=worker)
                 for v in spec.variables]
        previous = None
        for k, var in enumerate(spec.variables):
            inputs = [reads[k]]
            if previous is not None:
                inputs.append(previous)
            previous = builder.synthetic_compute(
                half * weights[k], inputs=inputs,
                name=f"w{i}/fwd/{var.name}", device=worker)
        for k in reversed(range(len(spec.variables))):
            var = spec.variables[k]
            stage = builder.synthetic_compute(
                half * weights[k],
                outputs=[(DType.float32, Shape(var.shape))],
                inputs=[previous],
                name=f"w{i}/bwd/{var.name}", device=worker)
            previous = stage
            grads[i][var.name] = stage
        last_bwd.append(previous)

    # Bucketize in gradient-ready (reverse layer) order and reduce.
    ready_order = list(reversed(spec.variables))
    buckets = plan_buckets(ready_order, fusion_bytes=fusion_bytes)
    for bucket in buckets:
        fragment_start = len(builder.graph)
        packed: List[NodeOutput] = [
            builder.add_op(
                "FusionPack",
                [grads[i][var.name] for var in bucket.variables],
                name=f"w{i}/pack{bucket.index}", device=workers[i])
            for i in range(num_workers)]
        if not eager_flush:
            # Post-barrier baseline: the pack (and with it the whole
            # reduction) may not start before backward has finished.
            for i in range(num_workers):
                packed[i].node.add_control_input(last_bwd[i].node)
        reduced = collective(builder, packed, workers,
                             name=f"bucket{bucket.index}")
        layout = [(var.name, Shape(var.shape), DType.float32)
                  for var in bucket.variables]
        for i, worker in enumerate(workers):
            unpacked = builder.add_op(
                "FusionUnpack", [reduced[i]], attrs={"layout": layout},
                name=f"w{i}/unpack{bucket.index}", device=worker)
            for j, var in enumerate(bucket.variables):
                # The reduced gradient is the sum over workers, and the
                # PS graph applies each worker's gradient at ``lr``, so
                # applying the sum once at ``lr`` matches its update.
                builder.apply_gradient(
                    variable_outputs[i][var.name],
                    unpacked.node.output(j), lr=lr,
                    name=f"w{i}/apply/{var.name}", device=worker)
        tag_fragment_priority(builder, fragment_start, bucket.priority)

    graph = builder.finalize()
    devices = sorted({node.device for node in graph})
    return AllreduceTrainingJob(
        graph=graph, spec=spec, num_workers=num_workers,
        batch_size=batch_size, devices=devices, algorithm=algorithm,
        fusion_bytes=fusion_bytes, buckets=buckets,
        eager_flush=eager_flush, hosts_per_rack=hosts_per_rack)
