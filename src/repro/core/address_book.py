"""Remote-address distribution: the vanilla RPC of §3.1.

To use the one-sided memory-copy interface, a sender must know the
address (and rkey) of the remote region it targets.  The device
library therefore ships "a simple vanilla RPC mechanism implemented
using the RDMA send/recv verbs for this auxiliary purpose"; it runs
off the critical path (addresses are distributed before computation).

Each device owns an :class:`AddressBook`.  Local regions are
``publish``-ed under string keys; a remote peer ``lookup``-s them with
a real request/reply over messaging verbs on a dedicated QP.  Because
RC SEND/RECV has no tag matching, each side runs a demultiplexer on
the shared address QP: every message carries a type byte, requests are
answered in place, replies are routed to the waiting lookup.
"""

from __future__ import annotations

import struct
from typing import Dict, Generator, Optional

from ..simnet.simulator import Store
from ..simnet.topology import Endpoint
from ..simnet.verbs import Completion
from .device import DeviceError, MemRegion, RdmaChannel, RdmaDevice, RemoteMemRegion


_MSG_REQUEST = 1
_MSG_REPLY = 2
_REPLY = struct.Struct("<BBQIQ")   # type, found, addr, rkey, size
_RECV_SLOT = 512

#: dedicated QP index for address traffic, by convention QP 0
ADDRESS_QP = 0


class AddressBook:
    """Per-device registry of published regions, remotely queryable."""

    def __init__(self, device: RdmaDevice) -> None:
        self.device = device
        self.sim = device.sim
        self._published: Dict[str, RemoteMemRegion] = {}
        #: peers whose address channel demux is running
        self._demux_running: Dict[Endpoint, bool] = {}
        #: replies awaiting their lookup, FIFO per peer
        self._replies: Dict[Endpoint, Store] = {}

    # -- publishing -------------------------------------------------------------------

    def publish(self, key: str, region_or_descriptor) -> None:
        """Expose a region's address under ``key``."""
        if isinstance(region_or_descriptor, MemRegion):
            descriptor = region_or_descriptor.descriptor()
        elif isinstance(region_or_descriptor, RemoteMemRegion):
            descriptor = region_or_descriptor
        else:
            raise DeviceError(f"cannot publish {type(region_or_descriptor)}")
        self._published[key] = descriptor

    def publish_raw(self, key: str, addr: int, rkey: int, size: int) -> None:
        self._published[key] = RemoteMemRegion(addr=addr, rkey=rkey, size=size)

    def local_lookup(self, key: str) -> Optional[RemoteMemRegion]:
        return self._published.get(key)

    # -- the shared-QP demultiplexer ----------------------------------------------------

    def _ensure_demux(self, peer: Endpoint) -> RdmaChannel:
        """Start this side's receive loop on the address QP to ``peer``."""
        channel = self.device.get_channel(peer, ADDRESS_QP)
        if self._demux_running.get(peer):
            return channel
        self._demux_running[peer] = True
        self._replies.setdefault(peer, Store(self.sim))
        slot = self.device.allocate_mem_region(
            _RECV_SLOT, label=f"addrbook-rx:{peer}", dense=True)

        def on_message(completion: Completion) -> None:
            raw = slot.read(0, completion.byte_len)
            self.device.post_recv(channel, slot, on_message)
            if not raw:
                return
            if raw[0] == _MSG_REQUEST:
                key = raw[1:].decode("utf-8", errors="replace")
                found = self._published.get(key)
                if found is None:
                    reply = _REPLY.pack(_MSG_REPLY, 0, 0, 0, 0)
                else:
                    reply = _REPLY.pack(_MSG_REPLY, 1, found.addr,
                                        found.rkey, found.size)
                self.device.post_send_message(channel, reply)
            elif raw[0] == _MSG_REPLY:
                self._replies[peer].put(raw)
            # Unknown types are dropped (forward compatibility).

        self.device.post_recv(channel, slot, on_message)
        return channel

    # -- remote lookup --------------------------------------------------------------------

    def lookup(self, peer: Endpoint, key: str,
               retry_interval: float = 50e-6,
               max_retries: int = 200) -> Generator:
        """Process: fetch a remote region descriptor from ``peer``.

        Retries while the peer has not published the key yet (setup
        races are expected: both sides prepare concurrently).
        Usage: ``descriptor = yield from book.lookup(peer, key)``.

        Lookups toward one peer must be issued sequentially from the
        same device (replies are matched FIFO, as on a real RC QP);
        the analyzer's address-distribution phase complies.
        """
        remote_device = RdmaDevice.lookup(self.device.host, peer)
        # Both ends must be demultiplexing before traffic flows.
        attach_address_book(remote_device)._ensure_demux(self.device.endpoint)
        channel = self._ensure_demux(peer)
        replies = self._replies[peer]

        for _attempt in range(max_retries):
            request = bytes([_MSG_REQUEST]) + key.encode("utf-8")
            self.device.post_send_message(channel, request)
            raw = yield replies.get()
            _type, found, addr, rkey, size = _REPLY.unpack(raw[:_REPLY.size])
            if found:
                return RemoteMemRegion(addr=addr, rkey=rkey, size=size)
            yield (retry_interval)
        raise DeviceError(
            f"address lookup for {key!r} on {peer} never succeeded")


def attach_address_book(device: RdmaDevice) -> AddressBook:
    """Create (or return) the device's address book."""
    book = getattr(device, "address_book", None)
    if book is None:
        book = AddressBook(device)
        device.address_book = book  # type: ignore[attr-defined]
    return book
