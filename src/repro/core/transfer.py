"""Zero-copy tensor transfer protocols (paper §3.2 and §3.3).

**Static placement** (:class:`StaticSender`/:class:`StaticReceiver`):
the receiver-side tensor is preallocated in an RDMA region and its
address distributed ahead of time.  The sender writes the payload with
one-sided WRITEs and finally sets a one-byte flag at the *tail* of the
receive region; because RDMA writes commit in ascending address order
(and verbs on one QP execute FIFO), a set flag proves the payload is
complete.  The receiver polls the flag (polling-async execution mode),
clears it for reuse, and hands the tensor — already in place — to its
consumers.  No copies anywhere.

**Dynamic allocation** (:class:`DynamicSender`/:class:`DynamicReceiver`):
when shapes vary between mini-batches, only the fixed-size metadata
slot (rank never changes, §3.3) is preallocated.  The sender writes
``TensorMeta`` (dims, dtype, its own tensor's address/rkey) plus the
flag; the receiver polls the flag, allocates a right-sized tensor, and
*pulls* the payload with a one-sided READ.

Both senders support a **staged** path (used when the tensor is not in
RDMA-registered memory, and always used in ``RDMA.cp`` mode): allocate
a staging block from the arena, pay a real memcpy, transfer from
staging.  The zero-copy path requires the tensor's buffer to be the
registered arena — exactly what the analyzer and the dynamic tracer
arrange.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from ..observability.tracer import protocol_track
from ..graph.allocator import ArenaAllocator
from ..graph.dtypes import DType
from ..graph.executor import Executor
from ..graph.shapes import Shape
from ..graph.tensor import META_FLAG_SIZE, Tensor, TensorMeta
from ..graph.transfer_api import Outcome
from ..simnet.simulator import Event
from .device import (DeviceError, Direction, MemRegion, RdmaChannel,
                     RemoteMemRegion)
from .recovery import RecoveryManager


FLAG_SET = b"\x01"
FLAG_CLEAR = b"\x00"


def _next_epoch(epoch: int) -> int:
    """Advance a flag epoch, cycling 1..255 (0 is always "empty").

    In recovery mode the flag byte carries an epoch rather than a bare
    1: a retried attempt re-writes the *same* epoch, so a stale
    duplicate that lands after the receiver consumed it (and after the
    sender moved on) can never be mistaken for the next transfer.
    """
    return epoch % 255 + 1


class TransferState:
    """Counters shared by all protocol objects of one mechanism."""

    def __init__(self) -> None:
        self.zero_copy_sends = 0
        self.staged_sends = 0
        self.bytes_sent = 0


def _in_region(tensor: Tensor, region: Optional[MemRegion]) -> bool:
    """Whether the tensor's storage lies inside the registered region."""
    return region is not None and tensor.buffer is region.buffer


def _account_serialization(executor: Executor, start: float,
                           name: str) -> None:
    """Attribute CPU-side copy/pack time on the device's protocol track.

    Staging copies and metadata packing run in sender processes that
    overlap the executor's own timeline, so they are accounted on the
    *protocol* track — the stall report shows them as overlapped work
    rather than adding them to the executor's exact time budget.
    """
    tracer = executor.host.cluster.tracer
    if tracer is not None:
        tracer.account(executor.host.name, protocol_track(executor.device),
                       executor.iteration, "serialization", start,
                       executor.sim.now, name=name)


class StaticSender:
    """Sender half of the static-placement protocol for one edge."""

    def __init__(self, channel: RdmaChannel, remote: RemoteMemRegion,
                 nbytes: int, arena: ArenaAllocator, arena_region: MemRegion,
                 state: TransferState,
                 staging_delay: Callable[[int], float] = None,
                 role: str = "static-write", key: str = "",
                 priority: int = 0,
                 recovery: Optional[RecoveryManager] = None) -> None:
        self.channel = channel
        self.remote = remote
        self.nbytes = nbytes
        self.arena = arena
        self.arena_region = arena_region
        self.state = state
        self.role = role
        self.key = key
        self.priority = priority
        self.recovery = recovery
        self._epoch = 0
        if remote.size < nbytes + 1:
            raise DeviceError(
                f"remote region of {remote.size} bytes cannot hold "
                f"{nbytes} payload bytes plus the flag")

    def send(self, executor: Executor, tensor: Tensor,
             force_copy: bool = False,
             extra_delay: float = 0.0) -> Generator:
        """Process: transfer; returns Outcome waiting on the flag write."""
        if tensor.nbytes != self.nbytes:
            raise DeviceError(
                f"static transfer expected {self.nbytes} bytes, "
                f"got {tensor.nbytes} (shape changed on a static edge?)")
        if extra_delay > 0:
            yield (extra_delay)
        zero_copy = _in_region(tensor, self.arena_region) and not force_copy
        staging_offset: Optional[int] = None
        if zero_copy:
            local_addr = tensor.addr
            self.state.zero_copy_sends += 1
        else:
            # RDMA.cp path: extra allocation + copy into registered memory.
            staging_offset = self.arena.allocate_block(self.nbytes)
            local_addr = self.arena_region.addr + staging_offset
            staging_start = executor.sim.now
            yield (
                executor.cost.malloc_time(self.nbytes))
            # The staging copy is CPU work contending with every other
            # concurrent copy on this host (the cost the analyzer's
            # zero-copy placement removes).
            yield from executor.host.cpu.run(
                executor.cost.memcpy_time(self.nbytes))
            _account_serialization(executor, staging_start, "staging-copy")
            if tensor.is_dense:
                self.arena_region.buffer.backing.write(
                    staging_offset, tensor.array.tobytes())
            self.state.staged_sends += 1
        self.state.bytes_sent += self.nbytes
        # Payload write (unsignaled) then the tail flag (signaled): QP
        # FIFO order plus ascending-address commit give the paper's
        # "flag is the last byte delivered" guarantee.
        wr_local_region = _RegionRef(self.arena_region, local_addr)
        proto_start = executor.sim.now
        if self.recovery is not None:
            return Outcome.wait(executor.sim.spawn(
                self._send_reliable(executor, wr_local_region, local_addr,
                                    staging_offset, proto_start),
                name=f"reliable-send-{self.key or self.role}"))
        self.channel.memcpy(
            local_addr=local_addr, local_region=wr_local_region,
            remote_addr=self.remote.addr, remote_region=self.remote,
            size=self.nbytes, direction=Direction.LOCAL_TO_REMOTE,
            role=self.role, priority=self.priority)
        flag_event = self.channel.memcpy_event(
            local_addr=0, local_region=None,
            remote_addr=self.remote.addr + self.nbytes,
            remote_region=self.remote,
            size=1, direction=Direction.LOCAL_TO_REMOTE,
            inline_data=FLAG_SET, role=self.role, priority=self.priority)
        done = executor.sim.event()
        tracer = executor.host.cluster.tracer
        hostname = executor.host.name
        track = protocol_track(executor.device)

        def on_flag(event: Event) -> None:
            if staging_offset is not None:
                self.arena.free_block(staging_offset)
            if tracer is not None:
                category = ("collective" if self.role == "collective-chunk"
                            else "protocol")
                tracer.record(
                    category, self.key or f"static {self.nbytes}B",
                    hostname, track, proto_start, executor.sim.now,
                    args={"nbytes": self.nbytes, "role": self.role,
                          "phase": "write+flag"})
            if event._exception is not None:
                done.fail(event._exception)
            else:
                done.succeed([])
        flag_event.add_callback(on_flag)
        return Outcome.wait(done)

    def _send_reliable(self, executor: Executor, wr_local_region,
                       local_addr: int, staging_offset: Optional[int],
                       proto_start: float) -> Generator:
        """Recovery-mode tail of :meth:`send` (fault plane armed).

        The payload is confirmed (its own CQE, retried as needed)
        *before* the flag is posted, so a lost payload can never be
        hidden behind a flag that landed; the flag then carries this
        edge's next epoch.
        """
        yield from self.recovery.reliable_memcpy(
            self.channel, local_addr=local_addr,
            local_region=wr_local_region, remote_addr=self.remote.addr,
            remote_region=self.remote, size=self.nbytes,
            direction=Direction.LOCAL_TO_REMOTE, role=self.role,
            priority=self.priority)
        self._epoch = _next_epoch(self._epoch)
        yield from self.recovery.reliable_memcpy(
            self.channel, remote_addr=self.remote.addr + self.nbytes,
            remote_region=self.remote, size=1,
            direction=Direction.LOCAL_TO_REMOTE,
            inline_data=bytes([self._epoch]), role=self.role,
            priority=self.priority)
        if staging_offset is not None:
            self.arena.free_block(staging_offset)
        tracer = executor.host.cluster.tracer
        if tracer is not None:
            category = ("collective" if self.role == "collective-chunk"
                        else "protocol")
            tracer.record(
                category, self.key or f"static {self.nbytes}B",
                executor.host.name, protocol_track(executor.device),
                proto_start, executor.sim.now,
                args={"nbytes": self.nbytes, "role": self.role,
                      "phase": "write+flag", "epoch": self._epoch})
        return []


class _RegionRef:
    """Adapter giving a MemRegion-compatible lkey for arena interiors."""

    def __init__(self, region: MemRegion, addr: int) -> None:
        self.lkey = region.lkey
        self.addr = addr


class StaticReceiver:
    """Receiver half: preallocated tensor + tail flag, polled.

    With ``epochs`` (recovery mode) the flag byte must equal the next
    expected epoch, not merely be non-zero: a stale duplicate flag from
    a retried attempt carries an already-consumed epoch and is ignored.
    """

    def __init__(self, tensor: Tensor, flag_offset_in_buffer: int,
                 epochs: bool = False) -> None:
        self.tensor = tensor
        self.flag_offset = flag_offset_in_buffer
        self.epochs = epochs
        self._expect = 1
        self.receives = 0

    def poll(self) -> bool:
        byte = self.tensor.buffer.backing.read_byte(self.flag_offset)
        if self.epochs:
            return byte == self._expect
        return byte == 1

    def make_outcome(self, executor: Executor,
                     extra_delay: float = 0.0) -> Outcome:
        def complete() -> Outcome:
            # Clear the flag for the next iteration's transfer.
            self.tensor.buffer.backing.write(self.flag_offset, FLAG_CLEAR)
            if self.epochs:
                self._expect = _next_epoch(self._expect)
            self.receives += 1
            if extra_delay <= 0:
                return Outcome.done([self.tensor])

            def stage() -> Generator:
                yield (extra_delay)
                return [self.tensor]
            return Outcome.wait(executor.sim.spawn(stage()))
        return Outcome.polling(poll=self.poll, complete=complete)


class DynamicSender:
    """Sender half of the dynamic-allocation protocol for one edge."""

    def __init__(self, channel: RdmaChannel, meta_slot: RemoteMemRegion,
                 ndims: int, arena: ArenaAllocator, arena_region: MemRegion,
                 state: TransferState, key: str = "",
                 priority: int = 0,
                 recovery: Optional[RecoveryManager] = None) -> None:
        self.channel = channel
        self.meta_slot = meta_slot
        self.ndims = ndims
        self.arena = arena
        self.arena_region = arena_region
        self.state = state
        self.key = key
        self.priority = priority
        self.recovery = recovery
        self._epoch = 0
        expected = TensorMeta.slot_size(ndims)
        if meta_slot.size < expected:
            raise DeviceError(
                f"meta slot of {meta_slot.size} bytes too small for rank "
                f"{ndims} (need {expected})")

    def send(self, executor: Executor, tensor: Tensor,
             force_copy: bool = False, extra_delay: float = 0.0) -> Generator:
        if tensor.shape.rank != self.ndims:
            raise DeviceError(
                f"dynamic transfer rank changed: {tensor.shape.rank} != "
                f"{self.ndims} (the paper's protocol fixes the rank)")
        if extra_delay > 0:
            yield (extra_delay)
        zero_copy = _in_region(tensor, self.arena_region) and not force_copy
        source_addr = tensor.addr
        if not zero_copy:
            staging_offset = self.arena.allocate_block(max(tensor.nbytes, 1))
            source_addr = self.arena_region.addr + staging_offset
            staging_start = executor.sim.now
            yield (
                executor.cost.malloc_time(tensor.nbytes))
            yield from executor.host.cpu.run(
                executor.cost.memcpy_time(tensor.nbytes))
            _account_serialization(executor, staging_start, "staging-copy")
            if tensor.is_dense:
                self.arena_region.buffer.backing.write(
                    staging_offset, tensor.array.tobytes())
            self.state.staged_sends += 1
            # Note: the staging block stays live until the receiver's
            # READ completes; the iteration barrier bounds its lifetime,
            # so it is freed at the next send from this edge.
            self._pending_staging = getattr(self, "_pending_staging", [])
            self._release_staging()
            self._pending_staging.append(staging_offset)
        else:
            self.state.zero_copy_sends += 1
            self._release_staging()
        self.state.bytes_sent += tensor.nbytes
        meta = TensorMeta(dtype=tensor.dtype,
                          dims=tensor.shape.as_tuple(),
                          remote_addr=source_addr,
                          remote_rkey=self.arena_region.rkey)
        # Pack the (small, fixed-size) metadata — §3.3 counts this as
        # the protocol's extra overhead versus static placement.  It is
        # a fixed struct, not a general serializer: near-memcpy cost.
        if self.recovery is not None:
            self._epoch = _next_epoch(self._epoch)
            flag = bytes([self._epoch])
        else:
            flag = FLAG_SET
        encoded = meta.encode() + flag
        pack_start = executor.sim.now
        yield (
            executor.cost.memcpy_time(len(encoded)))
        _account_serialization(executor, pack_start, "meta-pack")
        proto_start = executor.sim.now
        if self.recovery is not None:
            return Outcome.wait(executor.sim.spawn(
                self._send_reliable(executor, encoded, proto_start),
                name=f"reliable-meta-{self.key or 'dynamic'}"))
        event = self.channel.memcpy_event(
            local_addr=0, local_region=None,
            remote_addr=self.meta_slot.addr, remote_region=self.meta_slot,
            size=len(encoded), direction=Direction.LOCAL_TO_REMOTE,
            inline_data=encoded, role="dynamic-metadata",
            priority=self.priority)
        done = executor.sim.event()
        tracer = executor.host.cluster.tracer
        hostname = executor.host.name
        track = protocol_track(executor.device)

        def on_meta(e: Event) -> None:
            if tracer is not None:
                tracer.record(
                    "protocol", self.key or "dynamic-meta", hostname, track,
                    proto_start, executor.sim.now,
                    args={"nbytes": len(encoded),
                          "role": "dynamic-metadata",
                          "phase": "metadata-write"})
            if e._exception is not None:
                done.fail(e._exception)
            else:
                done.succeed([])
        event.add_callback(on_meta)
        return Outcome.wait(done)

    def _send_reliable(self, executor: Executor, encoded: bytes,
                       proto_start: float) -> Generator:
        """Recovery-mode metadata write (single inline meta+flag write).

        The flag trails the metadata in one write, so a torn write
        never exposes a flag without its metadata; a retry re-sends the
        identical bytes (same epoch), which is idempotent.
        """
        yield from self.recovery.reliable_memcpy(
            self.channel, remote_addr=self.meta_slot.addr,
            remote_region=self.meta_slot, size=len(encoded),
            direction=Direction.LOCAL_TO_REMOTE, inline_data=encoded,
            role="dynamic-metadata", priority=self.priority)
        tracer = executor.host.cluster.tracer
        if tracer is not None:
            tracer.record(
                "protocol", self.key or "dynamic-meta", executor.host.name,
                protocol_track(executor.device), proto_start,
                executor.sim.now,
                args={"nbytes": len(encoded), "role": "dynamic-metadata",
                      "phase": "metadata-write", "epoch": self._epoch})
        return []

    def _release_staging(self) -> None:
        for offset in getattr(self, "_pending_staging", []):
            self.arena.free_block(offset)
        self._pending_staging = []


class DynamicReceiver:
    """Receiver half: poll the meta slot, allocate, one-sided READ."""

    def __init__(self, meta_region: MemRegion, ndims: int,
                 channel: RdmaChannel, arena: ArenaAllocator,
                 arena_region: MemRegion, dtype: DType,
                 priority: int = 0, epochs: bool = False,
                 recovery: Optional[RecoveryManager] = None) -> None:
        self.meta_region = meta_region
        self.ndims = ndims
        self.channel = channel
        self.arena = arena
        self.arena_region = arena_region
        self.dtype = dtype
        self.priority = priority
        self.epochs = epochs
        self.recovery = recovery
        self._expect = 1
        self.flag_offset = TensorMeta.encoded_size(ndims)
        self.receives = 0
        self._last_tensor: Optional[Tensor] = None

    def poll(self) -> bool:
        byte = self.meta_region.buffer.backing.read_byte(self.flag_offset)
        if self.epochs:
            return byte == self._expect
        return byte == 1

    def make_outcome(self, executor: Executor, node_name: str,
                     extra_delay: float = 0.0) -> Outcome:
        def complete() -> Outcome:
            self.meta_region.buffer.backing.write(self.flag_offset, FLAG_CLEAR)
            if self.epochs:
                self._expect = _next_epoch(self._expect)
            raw = self.meta_region.read(0, self.flag_offset)
            meta = TensorMeta.decode(raw)
            self.receives += 1

            def fetch() -> Generator:
                # Unpack metadata (fixed struct), allocate, pull payload.
                unpack_start = executor.sim.now
                yield (
                    executor.cost.memcpy_time(len(raw))
                    + executor.cost.malloc_time(meta.data_nbytes))
                _account_serialization(executor, unpack_start, "meta-unpack")
                # The previous mini-batch's dynamically allocated tensor
                # is dead by now (iteration barrier) — reclaim it so the
                # arena footprint stays bounded (§3.2's "reduced memory
                # footprint" motivation for dynamic allocation).
                if self._last_tensor is not None:
                    self.arena.free_tensor(self._last_tensor)
                tensor = self.arena.allocate_tensor(
                    meta.dtype, meta.shape, node_name=node_name)
                self._last_tensor = tensor
                remote = RemoteMemRegion(addr=meta.remote_addr,
                                         rkey=meta.remote_rkey,
                                         size=meta.data_nbytes)
                read_start = executor.sim.now
                if self.recovery is not None:
                    yield from self.recovery.reliable_memcpy(
                        self.channel, local_addr=tensor.addr,
                        local_region=_RegionRef(self.arena_region,
                                                tensor.addr),
                        remote_addr=meta.remote_addr, remote_region=remote,
                        size=meta.data_nbytes,
                        direction=Direction.REMOTE_TO_LOCAL,
                        role="dynamic-payload-read", priority=self.priority)
                else:
                    read_done = self.channel.memcpy_event(
                        local_addr=tensor.addr,
                        local_region=_RegionRef(self.arena_region,
                                                tensor.addr),
                        remote_addr=meta.remote_addr, remote_region=remote,
                        size=meta.data_nbytes,
                        direction=Direction.REMOTE_TO_LOCAL,
                        role="dynamic-payload-read", priority=self.priority)
                    yield read_done
                tracer = executor.host.cluster.tracer
                if tracer is not None:
                    tracer.record(
                        "protocol", f"payload-read {meta.data_nbytes}B",
                        executor.host.name, protocol_track(executor.device),
                        read_start, executor.sim.now,
                        args={"nbytes": meta.data_nbytes,
                              "role": "dynamic-payload-read",
                              "phase": "payload-read"})
                if extra_delay > 0:
                    yield (extra_delay)
                return [tensor]
            return Outcome.wait(executor.sim.spawn(fetch()))
        return Outcome.polling(poll=self.poll, complete=complete)
