"""Versioned weight publication into double-buffered replica arenas.

The serving plane's trainer-to-replica path: the trainer pushes each
new parameter snapshot into one of two preallocated RDMA arenas on
every replica with one-sided writes (static placement, §3.2) and
commits the version with the epoch-flag protocol from the recovery
layer — replicas swap arenas on the flag, so a forward pass always
reads a complete snapshot and **never a torn one**:

* each arena holds every variable's payload followed by a 4-byte
  *version stamp*, and a trailer carrying the arena version plus the
  flag byte.  The flag is written last (its own inline verb; in
  recovery mode only after every payload/stamp completion is
  confirmed), so an armed flag implies the whole snapshot landed;
* version ``v`` goes to arena ``v % 2``; the publisher never starts
  writing an arena until the replica has *acknowledged* swapping onto
  the other one (a small one-sided "weight-ack" write back), so the
  arena a replica serves from is never under modification;
* a replica can therefore assert, at serve time, that every stamp in
  its active arena equals the active version — the torn-read check the
  chaos sweep exercises.

Distribution follows a :mod:`repro.collectives.broadcast` schedule:
``direct`` (trainer writes every replica) or ``chain`` (replica ``r``
store-and-forwards the snapshot to ``r + 1``, keeping the root's
egress at one model per publish regardless of replica count).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Sequence, Tuple

from ..collectives.broadcast import broadcast_hops
from ..models.spec import ModelSpec
from ..simnet.simulator import Simulator
from ..simnet.topology import Host
from ..simnet.verbs import (PUBLICATION_PRIORITY, ROLE_WEIGHT_ACK,
                            ROLE_WEIGHT_PUBLISH, ROLE_WEIGHT_STAMP)
from .device import Direction, MemRegion, RdmaChannel, RemoteMemRegion
from .recovery import RecoveryManager
from .transfer import FLAG_CLEAR, _next_epoch


STAMP_BYTES = 4
_VERSION_STRUCT = struct.Struct("<I")


def pack_version(version: int) -> bytes:
    return _VERSION_STRUCT.pack(version & 0xFFFFFFFF)


def read_version(data: bytes) -> int:
    return _VERSION_STRUCT.unpack(data)[0]


def park_until(sim: Simulator, host: Host, predicate: Callable[[], bool],
               backoff_base: float = 2e-6,
               backoff_max: float = 50e-6) -> Generator:
    """Process: poll ``predicate``, parking on the host's commit wakeups.

    The flag-byte poller idiom of §3.2 outside the executor: check,
    then sleep until either remote data commits into this host's
    memory or an exponential-backoff timer fires (the timer only
    bounds simulator events; a real spinning poller would see the flag
    within its poll interval).  Returns once ``predicate()`` is true.
    """
    backoff = backoff_base
    while not predicate():
        wake = sim.event()

        def _notify(event=wake) -> None:
            if not event.triggered:
                event.succeed()

        host.wake_listeners.append(_notify)
        try:
            yield sim.any_of([wake, sim.timeout(backoff)])
        finally:
            host.wake_listeners.remove(_notify)
        backoff = min(backoff * 2, backoff_max)


@dataclass(frozen=True)
class VariableSlot:
    """One variable's placement inside a publication arena."""

    name: str
    offset: int          # payload start (arena-relative)
    nbytes: int
    stamp_offset: int    # 4-byte version stamp, directly after payload


class PublicationLayout:
    """Static arena layout for one model: payload+stamp slots, trailer.

    Computed once from the :class:`~repro.models.spec.ModelSpec` and
    shared by publisher and subscribers — both sides address the same
    offsets, which is what makes the writes one-sided.
    """

    def __init__(self, spec: ModelSpec) -> None:
        self.spec = spec
        self.slots: List[VariableSlot] = []
        offset = 0
        for var in spec.variables:
            self.slots.append(VariableSlot(
                name=var.name, offset=offset, nbytes=var.nbytes,
                stamp_offset=offset + var.nbytes))
            offset += var.nbytes + STAMP_BYTES
        self.version_offset = offset
        self.flag_offset = offset + STAMP_BYTES
        self.size = self.flag_offset + 1

    @property
    def payload_bytes(self) -> int:
        return sum(slot.nbytes for slot in self.slots)


class SnapshotWriter:
    """Writes versioned snapshots into one peer's arena pair.

    Shared by the trainer-side publisher and by chain-forwarding
    subscribers.  ``source_region``/``source_offsets`` say where the
    payload bytes live locally; ``relay_stamps`` distinguishes the
    trainer (synthesizes each stamp from the version being published)
    from a forwarder (relays the stamp bytes already in its own arena,
    so a corrupted hop stays detectable at the end of the chain).
    """

    def __init__(self, channel: RdmaChannel, layout: PublicationLayout,
                 arenas: Tuple[RemoteMemRegion, RemoteMemRegion],
                 ack_region: MemRegion,
                 recovery: Optional[RecoveryManager] = None,
                 relay_stamps: bool = False,
                 priority: int = PUBLICATION_PRIORITY) -> None:
        self.channel = channel
        self.layout = layout
        self.arenas = arenas
        self.ack_region = ack_region
        self.recovery = recovery
        self.relay_stamps = relay_stamps
        self.priority = priority
        self.source_region: Optional[MemRegion] = None
        self.source_offsets: Sequence[int] = ()
        self._epochs = [0, 0]  # per-arena flag epoch lane

    def set_source(self, region: MemRegion, offsets: Sequence[int]) -> None:
        self.source_region = region
        self.source_offsets = list(offsets)

    def acked_version(self) -> int:
        """Last version the target acknowledged swapping onto."""
        return read_version(self.ack_region.read(0, STAMP_BYTES))

    def _transfer(self, *, remote_addr: int, remote_region: RemoteMemRegion,
                  size: int, local_addr: int = 0,
                  local_region: Optional[MemRegion] = None,
                  inline_data: Optional[bytes] = None, role: str,
                  awaited: bool = True) -> Generator:
        if self.recovery is not None:
            # Recovery mode confirms every completion before the next
            # verb goes out, which is what keeps "flag last" true even
            # through retries and QP re-establishment.
            yield from self.recovery.reliable_memcpy(
                self.channel, local_addr=local_addr,
                local_region=local_region, remote_addr=remote_addr,
                remote_region=remote_region, size=size,
                direction=Direction.LOCAL_TO_REMOTE,
                inline_data=inline_data, role=role, priority=self.priority)
        elif awaited:
            yield self.channel.memcpy_event(
                local_addr, local_region, remote_addr, remote_region, size,
                Direction.LOCAL_TO_REMOTE, inline_data=inline_data,
                role=role, priority=self.priority)
        else:
            # Fault-free fabric: per-QP FIFO commits in post order, so
            # intermediate verbs need no completion wait of their own.
            self.channel.memcpy(
                local_addr, local_region, remote_addr, remote_region, size,
                Direction.LOCAL_TO_REMOTE, inline_data=inline_data,
                role=role, priority=self.priority)

    def write_snapshot(self, version: int) -> Generator:
        """Process: land snapshot ``version``, then arm the arena flag."""
        assert self.source_region is not None, "set_source before writing"
        arena_idx = version % 2
        arena = self.arenas[arena_idx]
        for slot, src_off in zip(self.layout.slots, self.source_offsets):
            yield from self._transfer(
                remote_addr=arena.addr + slot.offset, remote_region=arena,
                size=slot.nbytes,
                local_addr=self.source_region.addr + src_off,
                local_region=self.source_region,
                role=ROLE_WEIGHT_PUBLISH, awaited=False)
            if self.relay_stamps:
                stamp = self.source_region.read(slot.stamp_offset,
                                                STAMP_BYTES)
            else:
                stamp = pack_version(version)
            yield from self._transfer(
                remote_addr=arena.addr + slot.stamp_offset,
                remote_region=arena, size=STAMP_BYTES, inline_data=stamp,
                role=ROLE_WEIGHT_STAMP, awaited=False)
        self._epochs[arena_idx] = _next_epoch(self._epochs[arena_idx])
        trailer = pack_version(version) + bytes([self._epochs[arena_idx]])
        # Version + flag travel in one small inline verb with the flag
        # byte last: partial commits land ascending prefixes, so a torn
        # trailer can never show an armed flag over a stale version.
        yield from self._transfer(
            remote_addr=arena.addr + self.layout.version_offset,
            remote_region=arena, size=len(trailer), inline_data=trailer,
            role=ROLE_WEIGHT_PUBLISH, awaited=True)


class WeightSubscriber:
    """Replica-side arena pair: swap on flag, ack, forward, verify."""

    def __init__(self, rank: int, host: Host, layout: PublicationLayout,
                 arenas: Tuple[MemRegion, MemRegion],
                 ack_channel: RdmaChannel, ack_remote: RemoteMemRegion,
                 recovery: Optional[RecoveryManager] = None,
                 metrics=None,
                 latest_version: Optional[Callable[[], int]] = None) -> None:
        self.rank = rank
        self.host = host
        self.sim = host.sim
        self.layout = layout
        self.arenas = arenas
        self.ack_channel = ack_channel
        self.ack_remote = ack_remote
        self.recovery = recovery
        self.metrics = metrics
        self.latest_version = latest_version or (lambda: 0)
        #: the arena a forward pass reads from; None until first publish
        self.active: Optional[int] = None
        self.active_version = 0
        self.swaps = 0
        self._expect = [1, 1]
        self._stopped = False
        #: chain mode: downstream writer fed from this replica's arenas
        self.forward: Optional[SnapshotWriter] = None

    def link_downstream(self, writer: SnapshotWriter) -> None:
        """Chain broadcast: forward every activated snapshot downstream."""
        self.forward = writer

    # -- state -------------------------------------------------------------------

    @property
    def ready(self) -> bool:
        return self.active is not None

    def staleness(self) -> int:
        """Versions the active snapshot lags the trainer's latest."""
        return max(0, self.latest_version() - self.active_version)

    def stamps(self, arena_idx: Optional[int] = None) -> List[int]:
        """Per-variable version stamps of an arena (default: active)."""
        idx = self.active if arena_idx is None else arena_idx
        if idx is None:
            return []
        region = self.arenas[idx]
        return [read_version(region.read(slot.stamp_offset, STAMP_BYTES))
                for slot in self.layout.slots]

    def snapshot_consistent(self) -> bool:
        """Serve-time torn-read assertion: all stamps == active version.

        Vacuously true before the first publish — a replica with no
        snapshot serves nothing (the router gates on :attr:`ready`).
        """
        if self.active is None:
            return True
        return all(stamp == self.active_version for stamp in self.stamps())

    # -- the watcher process -----------------------------------------------------

    def stop(self) -> None:
        self._stopped = True
        self.host.notify_memory_commit()

    def _armed_arena(self) -> Optional[int]:
        for idx in (0, 1):
            flag = self.arenas[idx].read_byte(self.layout.flag_offset)
            if flag == self._expect[idx]:
                return idx
        return None

    def watch(self) -> Generator:
        """Process: swap the active arena whenever a publish commits."""
        while not self._stopped:
            yield from park_until(
                self.sim, self.host,
                lambda: self._stopped or self._armed_arena() is not None)
            if self._stopped:
                return
            idx = self._armed_arena()
            if idx is None:  # pragma: no cover - racing stop()
                continue
            arena = self.arenas[idx]
            arena.write(FLAG_CLEAR, self.layout.flag_offset)
            self._expect[idx] = _next_epoch(self._expect[idx])
            version = read_version(
                arena.read(self.layout.version_offset, STAMP_BYTES))
            # Zero-copy version swap: forward passes read the new arena
            # the moment the pointer flips; no weight copy, no lock.
            self.active = idx
            self.active_version = version
            self.swaps += 1
            if self.metrics is not None:
                self.metrics.counter("serving.weight_swaps").add(1)
                self.metrics.histogram("serving.staleness_versions").observe(
                    self.staleness())
            if self.forward is not None:
                yield from self._forward_downstream(version, idx)
            yield from self._ack(version)

    def _forward_downstream(self, version: int, arena_idx: int) -> Generator:
        # Chain hop: wait until downstream swapped off the target arena
        # (its ack >= version - 1), then relay this arena's snapshot.
        writer = self.forward
        writer.set_source(self.arenas[arena_idx],
                          [slot.offset for slot in self.layout.slots])
        yield from park_until(
            self.sim, self.host,
            lambda: self._stopped or writer.acked_version() >= version - 1)
        if self._stopped:
            return
        yield from writer.write_snapshot(version)

    def _ack(self, version: int) -> Generator:
        payload = pack_version(version)
        if self.recovery is not None:
            yield from self.recovery.reliable_memcpy(
                self.ack_channel, remote_addr=self.ack_remote.addr,
                remote_region=self.ack_remote, size=STAMP_BYTES,
                direction=Direction.LOCAL_TO_REMOTE, inline_data=payload,
                role=ROLE_WEIGHT_ACK, priority=PUBLICATION_PRIORITY)
        else:
            yield self.ack_channel.memcpy_event(
                0, None, self.ack_remote.addr, self.ack_remote, STAMP_BYTES,
                Direction.LOCAL_TO_REMOTE, inline_data=payload,
                role=ROLE_WEIGHT_ACK, priority=PUBLICATION_PRIORITY)


class WeightPublisher:
    """Trainer-side snapshot source driving a broadcast schedule."""

    def __init__(self, host: Host, layout: PublicationLayout,
                 source_region: MemRegion,
                 writers: Sequence[SnapshotWriter],
                 metrics=None) -> None:
        self.host = host
        self.sim = host.sim
        self.layout = layout
        self.source_region = source_region
        self.writers = list(writers)
        self.metrics = metrics
        #: latest snapshot version the trainer has produced
        self.version = 0
        self.publishes = 0
        self._stopped = False

    def stop(self) -> None:
        self._stopped = True
        self.host.notify_memory_commit()

    def publish(self) -> Generator:
        """Process: one publish round over every root-attached target."""
        self.version += 1
        version = self.version
        started = self.sim.now
        for writer in self.writers:
            # Double-buffer gate: never touch an arena the target may
            # still be serving (or forwarding) from.
            yield from park_until(
                self.sim, self.host,
                lambda w=writer: self._stopped
                or w.acked_version() >= version - 1)
            if self._stopped:
                return
            yield from writer.write_snapshot(version)
        self.publishes += 1
        if self.metrics is not None:
            self.metrics.counter("serving.weight_publishes").add(1)
            self.metrics.histogram("serving.publish_duration_s").observe(
                self.sim.now - started)

    def run(self, interval: float) -> Generator:
        """Process: publish at a fixed cadence until stopped."""
        while not self._stopped:
            yield from self.publish()
            if self._stopped:
                return
            yield (interval)


def build_publication(trainer_device, replica_devices, spec: ModelSpec,
                      mode: str = "direct",
                      recovery: Optional[RecoveryManager] = None,
                      metrics=None, qp_idx: int = 0
                      ) -> Tuple[WeightPublisher, List[WeightSubscriber]]:
    """Wire the publication plane over already-created RDMA devices.

    Allocates the trainer's snapshot source, each replica's arena pair
    and the per-link ack slots, then connects writers along the
    ``direct`` or ``chain`` broadcast schedule.  Descriptor exchange
    happens at build time (the vanilla-RPC setup path of §3.1), never
    on the serving critical path.
    """
    layout = PublicationLayout(spec)
    hops = broadcast_hops(len(replica_devices), mode)

    source = trainer_device.allocate_mem_region(
        max(layout.payload_bytes, 1), label="publish-src", dense=False)
    source_offsets: List[int] = []
    cursor = 0
    for slot in layout.slots:
        source_offsets.append(cursor)
        cursor += slot.nbytes

    arena_pairs: List[Tuple[MemRegion, MemRegion]] = [
        tuple(device.allocate_mem_region(layout.size,
                                         label=f"weights[{i}]", dense=False)
              for i in range(2))
        for device in replica_devices
    ]

    publisher_writers: List[SnapshotWriter] = []
    writer_for = {}   # dst rank -> (src rank, SnapshotWriter)
    for src_rank, dst_rank in hops:
        src_device = (trainer_device if src_rank == -1
                      else replica_devices[src_rank])
        dst_device = replica_devices[dst_rank]
        ack_region = src_device.allocate_mem_region(
            STAMP_BYTES, label=f"weight-ack[{dst_rank}]", dense=True)
        writer = SnapshotWriter(
            channel=src_device.get_channel(dst_device.endpoint, qp_idx),
            layout=layout,
            arenas=tuple(r.descriptor() for r in arena_pairs[dst_rank]),
            ack_region=ack_region, recovery=recovery,
            relay_stamps=src_rank >= 0)
        if src_rank == -1:
            writer.set_source(source, source_offsets)
            publisher_writers.append(writer)
        writer_for[dst_rank] = (src_rank, writer)

    publisher = WeightPublisher(trainer_device.host, layout, source,
                                publisher_writers, metrics=metrics)

    subscribers: List[WeightSubscriber] = []
    for rank, device in enumerate(replica_devices):
        src_rank, writer = writer_for[rank]
        upstream_device = (trainer_device if src_rank == -1
                           else replica_devices[src_rank])
        subscribers.append(WeightSubscriber(
            rank=rank, host=device.host, layout=layout,
            arenas=arena_pairs[rank],
            ack_channel=device.get_channel(upstream_device.endpoint, qp_idx),
            ack_remote=writer.ack_region.descriptor(), recovery=recovery,
            metrics=metrics, latest_version=lambda: publisher.version))

    # Chain mode: replica r owns the writer that feeds r + 1.
    for dst_rank, (src_rank, writer) in writer_for.items():
        if src_rank >= 0:
            subscribers[src_rank].link_downstream(writer)

    return publisher, subscribers
