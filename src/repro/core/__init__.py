"""The paper's primary contribution: the RDMA device library, the
zero-copy tensor transfer protocols, and the RDMA-aware graph analyzer
with dynamic allocation-site tracing.
"""

from .address_book import AddressBook, attach_address_book
from .analyzer import (DevicePlan, EdgePlan, RdmaGraphAnalyzer,
                       find_static_source)
from .device import (DeviceError, Direction, MemRegion, RdmaChannel,
                     RdmaDevice, RemoteMemRegion)
from .publication import (PublicationLayout, SnapshotWriter,
                          WeightPublisher, WeightSubscriber,
                          build_publication, park_until)
from .rdma_comm import RdmaCommRuntime
from .recovery import RecoveryManager, RecoveryStats, RetryPolicy
from .tracing import AllocationSiteTracer
from .transfer import (DynamicReceiver, DynamicSender, StaticReceiver,
                       StaticSender, TransferState)

__all__ = [
    "AddressBook", "AllocationSiteTracer", "DevicePlan", "DeviceError",
    "Direction", "DynamicReceiver", "DynamicSender", "EdgePlan", "MemRegion",
    "PublicationLayout", "RdmaChannel", "RdmaCommRuntime", "RdmaDevice",
    "RdmaGraphAnalyzer", "RecoveryManager", "RecoveryStats",
    "RemoteMemRegion", "RetryPolicy", "SnapshotWriter", "StaticReceiver",
    "StaticSender", "TransferState", "WeightPublisher", "WeightSubscriber",
    "attach_address_book", "build_publication", "find_static_source",
    "park_until",
]
