"""The paper's transfer mechanism as a pluggable CommRuntime.

``RdmaCommRuntime`` is what the evaluation calls **RDMA** (zero-copy,
fully analyzed); constructing it with ``zero_copy=False`` yields
**RDMA.cp** (graph analysis for sender-side placement turned off, so
every send stages through a registered buffer with a real memcpy —
the Figure 8/12 comparison).  ``gpu_tensors=True`` models tensors in
GPU memory: without ``gpudirect`` every transfer pays PCIe staging on
both ends; with it the NIC accesses GPU memory directly and tensor
transfer always uses the dynamic protocol so polling stays on the CPU
(§3.5, Table 3).
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional

from ..graph.allocator import ArenaAllocator
from ..graph.executor import Executor
from ..graph.node import Node
from ..graph.tensor import Tensor, TensorMeta
from ..graph.transfer_api import CommRuntime, Outcome
from ..simnet.topology import Endpoint
from .address_book import attach_address_book
from .analyzer import DevicePlan, RdmaGraphAnalyzer
from .device import DeviceError, MemRegion, RdmaDevice
from .innetwork import InNetworkRuntime
from .recovery import RecoveryManager, RetryPolicy
from .tracing import AllocationSiteTracer
from .transfer import (DynamicReceiver, DynamicSender, StaticReceiver,
                       StaticSender, TransferState)


_PORT_BASE = 7100


class RdmaCommRuntime(CommRuntime):
    """Tensor transfer over the RDMA device library (paper §3-§4)."""

    def __init__(self, zero_copy: bool = True, num_cqs: int = 4,
                 num_qps_per_peer: int = 4, gpu_tensors: bool = False,
                 gpudirect: bool = False, force_dynamic: bool = False,
                 dynamic_headroom: Optional[int] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 qp_mode: str = "rc") -> None:
        if gpudirect and not gpu_tensors:
            raise DeviceError("gpudirect requires gpu_tensors")
        self.zero_copy = zero_copy
        self.num_cqs = num_cqs
        self.num_qps_per_peer = num_qps_per_peer
        self.qp_mode = qp_mode
        self.gpu_tensors = gpu_tensors
        self.gpudirect = gpudirect
        # GPUDirect always transfers through the dynamic protocol (§3.5).
        self.force_dynamic = force_dynamic or gpudirect
        self.dynamic_headroom = dynamic_headroom
        self.name = "RDMA" if zero_copy else "RDMA.cp"
        if gpudirect:
            self.name += "+GDR"
        self.state = TransferState()
        self.devices: Dict[str, RdmaDevice] = {}
        self.endpoints: Dict[str, Endpoint] = {}
        self.arena_regions: Dict[str, MemRegion] = {}
        self.tracers: Dict[str, AllocationSiteTracer] = {}
        self.senders: Dict[str, object] = {}
        self.receivers: Dict[str, object] = {}
        self.registration_seconds = 0.0
        self.retry_policy = retry_policy
        #: built in :meth:`prepare` iff the cluster's fault plane is
        #: armed; None keeps every protocol on its legacy (bit-identical)
        #: code path
        self.recovery: Optional[RecoveryManager] = None
        #: built in :meth:`prepare` iff the graph contains
        #: ``InNetworkReduce`` nodes (switch-aggregated allreduce)
        self.innetwork: Optional[InNetworkRuntime] = None

    # -- setup -------------------------------------------------------------------------

    def prepare(self, session) -> None:
        partitioned = session.partitioned
        kwargs = {}
        if self.dynamic_headroom is not None:
            kwargs["dynamic_headroom"] = self.dynamic_headroom
        analyzer = RdmaGraphAnalyzer(partitioned,
                                     force_dynamic=self.force_dynamic,
                                     **kwargs)
        plans = analyzer.plan()

        plane = session.cluster.fault_plane
        if plane is not None and plane.armed:
            self.recovery = RecoveryManager(
                session.sim, session.cluster.cost,
                policy=self.retry_policy, tracer=session.cluster.tracer)
            # Lossy fabrics drop individual packets rather than whole
            # transfers: recover at chunk granularity (selective repeat)
            # instead of go-back-N.  Gated on the fault spec so classic
            # crash/partition chaos keeps its exact legacy accounting.
            self.recovery.selective_repeat = plane.has_loss

        for index, device_name in enumerate(sorted(session.executors)):
            executor = session.executors[device_name]
            endpoint = Endpoint(executor.host.name, _PORT_BASE + index)
            device = RdmaDevice.create(executor.host, self.num_cqs,
                                       self.num_qps_per_peer, endpoint,
                                       qp_mode=self.qp_mode)
            attach_address_book(device)
            self.devices[device_name] = device
            self.endpoints[device_name] = endpoint

        for device_name, executor in session.executors.items():
            self._prepare_device(session, executor, plans[device_name])

        # Switch-aggregated collectives: receive regions + the shared
        # aggregation plane, built only when the graph asks for them.
        runtime = InNetworkRuntime(self, session)
        if runtime.active:
            self.innetwork = runtime

    def _prepare_device(self, session, executor: Executor,
                        plan: DevicePlan) -> None:
        device = self.devices[plan.device]
        host = executor.host
        cost = host.cost

        arena_buffer = host.allocate(plan.arena_size,
                                     label=f"rdma-arena:{plan.device}")
        executor.arena = ArenaAllocator(arena_buffer,
                                        name=f"arena:{plan.device}")
        region = device.register_existing(arena_buffer)
        self.arena_regions[plan.device] = region
        # One registration for the whole arena; recorded so ablations
        # can compare against per-tensor registration.
        self.registration_seconds += cost.mr_register_time(plan.arena_size)
        span_tracer = host.cluster.tracer
        if span_tracer is not None:
            span_tracer.metrics.counter("arena_bytes_registered").add(
                plan.arena_size)

        if self.zero_copy:
            tracer = AllocationSiteTracer(executor)
            tracer.static_sites = set(plan.static_variable_sites)
            tracer.observe_arena(executor.arena)
            self.tracers[plan.device] = tracer

        book = device.address_book  # type: ignore[attr-defined]
        graph = session.partitioned.subgraphs[plan.device]
        for edge_plan in plan.edges_in:
            edge = edge_plan.edge
            recv_node = graph.node(edge.recv_node)
            if edge_plan.static:
                nbytes = edge.nbytes_static
                offset = executor.arena.allocate_block(nbytes + 1)
                tensor = Tensor(recv_node.attrs["dtype"],
                                recv_node.attrs["shape"],
                                arena_buffer, offset=offset)
                receiver = StaticReceiver(tensor,
                                          flag_offset_in_buffer=offset + nbytes,
                                          epochs=self.recovery is not None)
                book.publish_raw(edge.key, addr=tensor.addr,
                                 rkey=region.rkey, size=nbytes + 1)
                executor.preallocated_recv[edge.key] = tensor
            else:
                ndims = recv_node.attrs["shape"].rank
                slot = device.allocate_mem_region(
                    TensorMeta.slot_size(ndims),
                    label=f"meta:{edge.key}", dense=True)
                channel = device.get_channel(
                    self.endpoints[edge.src_device],
                    self._qp_for(edge.key))
                receiver = DynamicReceiver(
                    meta_region=slot, ndims=ndims, channel=channel,
                    arena=executor.arena, arena_region=region,
                    dtype=recv_node.attrs["dtype"],
                    priority=recv_node.attrs.get("priority", 0),
                    epochs=self.recovery is not None,
                    recovery=self.recovery)
                book.publish(f"{edge.key}#meta", slot)
            self.receivers[edge.key] = receiver

    def on_iteration_start(self, session, iteration: int) -> None:
        # Lazily bind senders the first time iterations begin (all
        # receivers across devices are published by then).
        if self.senders or not self.receivers:
            return
        self._bind_senders(session)

    def _bind_senders(self, session) -> None:
        collective_edges = getattr(session.partitioned.original,
                                   "collective_edges", frozenset())
        for edge in session.partitioned.transfers:
            executor = session.executors[edge.src_device]
            device = self.devices[edge.src_device]
            book = device.address_book  # type: ignore[attr-defined]
            dst_endpoint = self.endpoints[edge.dst_device]
            channel = device.get_channel(dst_endpoint, self._qp_for(edge.key))
            arena = executor.arena
            region = self.arena_regions[edge.src_device]
            static = edge.static_shape and not self.force_dynamic
            key = edge.key if static else f"{edge.key}#meta"
            fetch = session.sim.spawn(
                book.lookup(dst_endpoint, key),
                name=f"addr-lookup:{edge.key}")
            descriptor = session.sim.run_until_complete(fetch)
            graph = session.partitioned.subgraphs[edge.src_device]
            send_node = graph.node(edge.send_node)
            priority = send_node.attrs.get("priority", 0)
            if static:
                role = ("collective-chunk" if edge.key in collective_edges
                        else "static-write")
                self.senders[edge.key] = StaticSender(
                    channel=channel, remote=descriptor,
                    nbytes=edge.nbytes_static, arena=arena,
                    arena_region=region, state=self.state,
                    role=role, key=edge.key, priority=priority,
                    recovery=self.recovery)
            else:
                ndims = send_node.inputs[0].shape.rank
                self.senders[edge.key] = DynamicSender(
                    channel=channel, meta_slot=descriptor, ndims=ndims,
                    arena=arena, arena_region=region, state=self.state,
                    key=edge.key, priority=priority,
                    recovery=self.recovery)

    def recovery_snapshot(self) -> Optional[Dict[str, object]]:
        """Retry/fallback counters for ``RunStats.faults`` (or None)."""
        if self.recovery is None:
            return None
        return self.recovery.snapshot()

    def _qp_for(self, key: str) -> int:
        # crc32 rather than hash(): Python string hashing is salted
        # per process, which would stripe edges across QPs differently
        # from run to run and break cross-run determinism.
        return zlib.crc32(key.encode()) % self.num_qps_per_peer

    # -- staging delays (GPU) -------------------------------------------------------------

    def _gpu_delay(self, executor: Executor, nbytes: int) -> float:
        if not self.gpu_tensors or self.gpudirect:
            return 0.0
        return executor.cost.pcie_copy_time(nbytes)

    # -- the executor-facing interface -------------------------------------------------------

    def execute_send(self, executor: Executor, node: Node, tensor: Tensor):
        key = node.attrs["key"]
        sender = self.senders.get(key)
        if sender is None:
            raise DeviceError(f"no sender bound for edge {key!r}")
        tracer = self.tracers.get(executor.device)
        if tracer is not None:
            tracer.on_send(tensor)
        return sender.send(executor, tensor,
                           force_copy=not self.zero_copy,
                           extra_delay=self._gpu_delay(executor, tensor.nbytes))

    def execute_recv(self, executor: Executor, node: Node):
        key = node.attrs["key"]
        receiver = self.receivers.get(key)
        if receiver is None:
            raise DeviceError(f"no receiver bound for edge {key!r}")
        nbytes = 0
        if isinstance(receiver, StaticReceiver):
            nbytes = receiver.tensor.nbytes
            return receiver.make_outcome(
                executor, extra_delay=self._gpu_delay(executor, nbytes))
        return receiver.make_outcome(
            executor, node_name=node.name,
            extra_delay=self._gpu_delay(
                executor, node.attrs["shape"].num_elements()
                * node.attrs["dtype"].size
                if node.attrs["shape"].is_fully_defined else 0))

    def execute_innetwork(self, executor: Executor, node: Node,
                          tensor: Tensor) -> Outcome:
        if self.innetwork is None:
            raise DeviceError(f"{node.name}: no in-network runtime was "
                              f"prepared for this session")
        return self.innetwork.execute(self, executor, node, tensor)
