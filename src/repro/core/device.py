"""The RDMA "device" abstraction — the paper's Table 1 interface.

A remote machine is exposed as a *device* from a data-access point of
view: memory regions can be allocated on it and read/written directly
over an RDMA channel, much like a local GPU (§3.1).

* ``RdmaDevice.create(host, num_cqs, num_qps_per_peer, endpoint)``
* ``device.allocate_mem_region(size)``
* ``device.get_channel(remote_endpoint, qp_idx)``
* ``channel.memcpy(local_addr, local_region, remote_addr, remote_region,
  size, direction, callback)``

The device owns ``num_cqs`` completion queues, each drained by its own
poller (the thread pool of Figure 4); QPs created towards a peer are
associated with CQs round-robin, and the channel-acquiring interface
lets a multi-threaded workload pick its QP explicitly to spread load.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..simnet.costmodel import CostModel
from ..simnet.memory import Buffer, MemoryRegion
from ..simnet.nic import CompletionQueue, QueuePair, SharedQp
from ..simnet.simulator import Event, Simulator
from ..simnet.topology import Endpoint, Host
from ..simnet.verbs import Completion, Opcode, WcStatus, WorkRequest

#: queue-pair modes a device can run its data plane in: per-peer
#: reliable-connected QPs (the paper's baseline) or DCT-style shared
#: endpoints (O(1) QP state per NIC however many peers it talks to)
QP_MODES = ("rc", "shared")


class DeviceError(RuntimeError):
    """Misuse of the device library or failed verbs."""


class Direction(enum.Enum):
    """Transfer direction for :meth:`RdmaChannel.memcpy`."""

    LOCAL_TO_REMOTE = "write"   # one-sided RDMA WRITE
    REMOTE_TO_LOCAL = "read"    # one-sided RDMA READ


@dataclass(frozen=True)
class RemoteMemRegion:
    """A remote region as seen locally: address, rkey, size.

    Obtained through the address book (the vanilla RPC of §3.1); this
    is all the information a one-sided verb needs.
    """

    addr: int
    rkey: int
    size: int


class MemRegion:
    """A locally allocated, NIC-registered memory region."""

    def __init__(self, device: "RdmaDevice", buffer: Buffer,
                 region: MemoryRegion) -> None:
        self.device = device
        self.buffer = buffer
        self.region = region

    @property
    def addr(self) -> int:
        return self.buffer.addr

    @property
    def size(self) -> int:
        return self.buffer.size

    @property
    def lkey(self) -> int:
        return self.region.lkey

    @property
    def rkey(self) -> int:
        return self.region.rkey

    def descriptor(self) -> RemoteMemRegion:
        """What a peer needs to access this region remotely."""
        return RemoteMemRegion(addr=self.addr, rkey=self.rkey, size=self.size)

    def read(self, offset: int = 0, length: Optional[int] = None) -> bytes:
        return self.buffer.read(offset, length)

    def read_byte(self, offset: int) -> int:
        return self.buffer.read_byte(offset)

    def write(self, data: bytes, offset: int = 0) -> None:
        self.buffer.write(data, offset)


class RdmaChannel:
    """A channel: one QP towards one peer, with an async memcpy."""

    def __init__(self, device: "RdmaDevice", peer: Endpoint,
                 qp: QueuePair, qp_idx: int) -> None:
        self.device = device
        self.peer = peer
        self.qp = qp
        self.qp_idx = qp_idx
        self.bytes_transferred = 0
        #: set by the recovery layer when it gives up on RDMA for this
        #: channel; later transfers take :meth:`fallback_transfer`
        self.degraded = False
        self.reconnects = 0

    @property
    def broken(self) -> bool:
        """Whether the underlying QP is in the error state."""
        return self.qp.broken

    def wr_target(self) -> Optional[QueuePair]:
        """Per-WR destination endpoint (DCT); None on connected QPs."""
        return None

    def messaging_qp(self) -> QueuePair:
        """The QP two-sided messaging (SEND/RECV) rides on."""
        return self.qp

    def reconnect(self) -> None:
        """Re-establish a broken queue pair (both ends).

        Fresh QPs are created on the same CQs as the old pair and the
        peer's mirror channel is swapped too, so both directions of the
        library stay paired.  The simulated duration of the transition
        (``CostModel.qp_reestablish_time``) is charged by the caller.
        """
        peer_device = RdmaDevice.lookup(self.device.host, self.peer)
        mirror = peer_device._channels.get((self.device.endpoint, self.qp_idx))
        old_remote = self.qp.remote
        local_qp = self.device.host.nic.create_qp(self.qp.send_cq,
                                                  self.qp.recv_cq)
        if old_remote is not None:
            remote_qp = peer_device.host.nic.create_qp(old_remote.send_cq,
                                                       old_remote.recv_cq)
        else:  # pragma: no cover - channels are always paired
            remote_qp = peer_device.host.nic.create_qp(peer_device.cqs[0])
        local_qp.connect(remote_qp)
        self.qp = local_qp
        self.reconnects += 1
        if mirror is not None:
            mirror.qp = remote_qp
            mirror.reconnects += 1

    def fallback_transfer(self, *, local_addr: int, remote_addr: int,
                          size: int, direction: Direction,
                          inline_data: Optional[bytes] = None,
                          role: str = "") -> Generator:
        """Process: move the bytes over the kernel TCP path instead.

        Graceful degradation for a persistently failing RDMA channel:
        charges the real TCP costs (syscalls, socket-buffer copies,
        wire time), commits the bytes straight into the destination
        address space, and wakes the destination host's pollers —
        semantically equivalent to the WRITE/READ it replaces, only
        slower.  Use as ``yield from channel.fallback_transfer(...)``.
        """
        from ..simnet.nic import RdmaNic

        sim = self.device.sim
        cost = self.device.cost
        local_host = self.device.host
        remote_host = RdmaDevice.lookup(local_host, self.peer).host
        if direction is Direction.LOCAL_TO_REMOTE:
            src_host, dst_host = local_host, remote_host
            src_addr, dst_addr = local_addr, remote_addr
        else:
            src_host, dst_host = remote_host, local_host
            src_addr, dst_addr = remote_addr, local_addr
        if inline_data is not None:
            payload: Optional[bytes] = bytes(inline_data)
            head = tail = b""
        else:
            src_buf, src_off = src_host.address_space.resolve(
                src_addr, max(size, 1))
            payload, head, tail = RdmaNic._edge_payload(
                src_buf.backing, src_off, size)
        yield from src_host.cpu.run(cost.tcp_send_time(size))
        start, _ = src_host.tcp.egress.reserve(sim.now, size)
        data_ready = start + cost.tcp_base_latency + size / cost.tcp_bandwidth
        arrival = dst_host.tcp.ingress.reserve_after(
            start + cost.tcp_base_latency, size, data_ready)
        metrics = local_host.cluster.metrics
        if metrics is not None:
            metrics.record_transfer("TCP", src_host.name, dst_host.name,
                                    size, start, arrival,
                                    role=role or "tcp-fallback")
        tracer = local_host.cluster.tracer
        if tracer is not None:
            tracer.record("wire", f"TCP-fallback {size}B", src_host.name,
                          "tcp:wire", start, arrival,
                          args={"dst": dst_host.name, "nbytes": size,
                                "role": role or "tcp-fallback"})
        yield (max(arrival - sim.now, 0.0))
        yield from dst_host.cpu.run(cost.tcp_recv_time(size))
        dst_buf, dst_off = dst_host.address_space.resolve(dst_addr,
                                                          max(size, 1))
        if payload is not None:
            dst_buf.backing.write(dst_off, payload)
        else:
            dst_buf.backing.write_virtual(dst_off, size)
            if head:
                dst_buf.backing.write(dst_off, head)
            if tail:
                dst_buf.backing.write(dst_off + size - len(tail), tail)
        self.bytes_transferred += size
        dst_host.notify_memory_commit()

    def memcpy(self, local_addr: int, local_region: Optional[MemRegion],
               remote_addr: int, remote_region: RemoteMemRegion, size: int,
               direction: Direction,
               callback: Optional[Callable[[Completion], None]] = None,
               inline_data: Optional[bytes] = None,
               role: str = "", priority: int = 0) -> int:
        """Asynchronously copy between local and remote memory.

        Returns the work-request id.  ``callback`` fires (from the CQ
        poller) when the verb completes.  ``inline_data`` replaces the
        local region for small writes (e.g. flag bytes).  ``role`` tags
        the transfer's protocol purpose for metrics and tracing;
        ``priority`` is the wire-scheduling urgency (honoured only by
        the priority quantum scheduler).
        """
        if direction is Direction.LOCAL_TO_REMOTE:
            opcode = Opcode.WRITE
        elif direction is Direction.REMOTE_TO_LOCAL:
            opcode = Opcode.READ
            if inline_data is not None:
                raise DeviceError("cannot use inline data with a READ")
        else:  # pragma: no cover - enum is closed
            raise DeviceError(f"bad direction {direction}")
        if inline_data is None and local_region is None:
            raise DeviceError("memcpy needs a local region or inline data")
        wr = WorkRequest(
            opcode=opcode, size=size,
            local_addr=local_addr,
            lkey=local_region.lkey if local_region else 0,
            remote_addr=remote_addr, rkey=remote_region.rkey,
            inline_data=inline_data,
            signaled=True, role=role, priority=priority,
            dct_target=self.wr_target())
        self.device._register_callback(wr.wr_id, callback)
        self.qp.post_send(wr)
        self.bytes_transferred += wr.size
        return wr.wr_id

    def memcpy_event(self, *args, **kwargs) -> Event:
        """Like :meth:`memcpy` but returns an Event firing on completion.

        The event fails if the verb completes with an error status.
        """
        event = self.device.sim.event()

        def on_complete(completion: Completion) -> None:
            if completion.ok:
                event.succeed(completion)
            else:
                event.fail(DeviceError(
                    f"memcpy failed: {completion.status.value}"))
        self.memcpy(*args, callback=on_complete, **kwargs)
        return event


class SharedChannel(RdmaChannel):
    """A channel whose data plane rides a shared (DCT) endpoint.

    ``qp`` is one of the device's O(1) shared endpoints and ``target``
    is the peer device's matching endpoint; every one-sided verb names
    the target per work request, so N peers share the same local QP
    state.  Two-sided control messaging (the address book's FIFO
    request/reply matching) cannot safely share one receive queue
    across peers, so it rides a dedicated RC QP pair created lazily on
    first use — mirroring how real DC-transport deployments bootstrap
    over RC or UD.  Tensor traffic never touches that control QP.
    """

    def __init__(self, device: "RdmaDevice", peer: Endpoint,
                 qp: SharedQp, qp_idx: int, target: SharedQp) -> None:
        super().__init__(device, peer, qp, qp_idx)
        self.target = target
        self._control_qp: Optional[QueuePair] = None

    @property
    def broken(self) -> bool:
        # A broken shared endpoint flushes *every* peer's verbs — the
        # wider blast radius of collapsing N connections into one.
        return self.qp.broken or self.target.broken

    def wr_target(self) -> Optional[QueuePair]:
        return self.target

    def messaging_qp(self) -> QueuePair:
        if self._control_qp is None:
            peer_device = RdmaDevice.lookup(self.device.host, self.peer)
            mirror = peer_device._channels.get(
                (self.device.endpoint, self.qp_idx))
            cq = self.device.cqs[self.device._next_cq % self.device.num_cqs]
            self.device._next_cq += 1
            local_qp = self.device.host.nic.create_qp(cq)
            peer_cq = peer_device.cqs[
                peer_device._next_cq % peer_device.num_cqs]
            peer_device._next_cq += 1
            remote_qp = peer_device.host.nic.create_qp(peer_cq)
            local_qp.connect(remote_qp)
            self._control_qp = local_qp
            if isinstance(mirror, SharedChannel):
                mirror._control_qp = remote_qp
        return self._control_qp

    def reconnect(self) -> None:
        """Clear the error state on both shared endpoints.

        DCT endpoints are connectionless — recovery transitions the
        existing QP back to ready instead of minting a fresh pair (the
        re-establishment time is still charged by the caller).
        """
        peer_device = RdmaDevice.lookup(self.device.host, self.peer)
        mirror = peer_device._channels.get((self.device.endpoint,
                                            self.qp_idx))
        self.qp.broken = False
        self.target.broken = False
        self.reconnects += 1
        if mirror is not None and mirror is not self:
            mirror.reconnects += 1


class RdmaDevice:
    """One NIC exposed through the paper's device interface."""

    SERVICE_PREFIX = "rdma-device"

    def __init__(self, host: Host, num_cqs: int, num_qps_per_peer: int,
                 endpoint: Endpoint, qp_mode: str = "rc") -> None:
        if num_cqs < 1 or num_qps_per_peer < 1:
            raise DeviceError("need at least one CQ and one QP per peer")
        if qp_mode not in QP_MODES:
            raise DeviceError(f"unknown qp_mode {qp_mode!r}; have {QP_MODES}")
        self.host = host
        self.sim: Simulator = host.sim
        self.cost: CostModel = host.cost
        self.endpoint = endpoint
        self.num_cqs = num_cqs
        self.num_qps_per_peer = num_qps_per_peer
        self.qp_mode = qp_mode
        self.cqs: List[CompletionQueue] = [
            host.nic.create_cq() for _ in range(num_cqs)]
        self._next_cq = 0
        self._channels: Dict[Tuple[Endpoint, int], RdmaChannel] = {}
        self._callbacks: Dict[int, Optional[Callable]] = {}
        self.regions: List[MemRegion] = []
        # Shared mode: the whole data plane is this fixed pool of DCT
        # endpoints, created up front — O(1) per NIC, not O(peers).
        self._shared_qps: List[SharedQp] = []
        if qp_mode == "shared":
            self._shared_qps = [
                host.nic.create_shared_qp(self.cqs[i % num_cqs])
                for i in range(num_qps_per_peer)]
        self._pollers = [self.sim.spawn(self._poll_loop(cq),
                                        name=f"cq-poller-{endpoint}-{i}")
                         for i, cq in enumerate(self.cqs)]
        host.cluster.services[self._service_key(endpoint)] = self

    # -- construction --------------------------------------------------------------

    @classmethod
    def create(cls, host: Host, num_cqs: int, num_qps_per_peer: int,
               local_endpoint: Endpoint, qp_mode: str = "rc") -> "RdmaDevice":
        """CreateRdmaDevice of Table 1."""
        key = cls._service_key(local_endpoint)
        if key in host.cluster.services:
            raise DeviceError(f"device already exists at {local_endpoint}")
        return cls(host, num_cqs, num_qps_per_peer, local_endpoint,
                   qp_mode=qp_mode)

    @staticmethod
    def _service_key(endpoint: Endpoint) -> Endpoint:
        return Endpoint(f"{RdmaDevice.SERVICE_PREFIX}:{endpoint.host}",
                        endpoint.port)

    @classmethod
    def lookup(cls, host: Host, endpoint: Endpoint) -> "RdmaDevice":
        device = host.cluster.services.get(cls._service_key(endpoint))
        if not isinstance(device, RdmaDevice):
            raise DeviceError(f"no RDMA device at {endpoint}")
        return device

    # -- Table 1 interface ------------------------------------------------------------

    def allocate_mem_region(self, size_in_bytes: int, label: str = "",
                            dense: Optional[bool] = None) -> MemRegion:
        """AllocateMemRegion: RDMA-accessible memory on this device."""
        buffer = self.host.allocate(size_in_bytes, label=label or "memregion",
                                    dense=dense)
        region = self.host.nic.register_memory(buffer)
        mem = MemRegion(self, buffer, region)
        self.regions.append(mem)
        return mem

    def register_existing(self, buffer: Buffer) -> MemRegion:
        """Register an already-allocated buffer (e.g. an executor arena)."""
        region = self.host.nic.register_memory(buffer)
        mem = MemRegion(self, buffer, region)
        self.regions.append(mem)
        return mem

    def free_mem_region(self, mem: MemRegion) -> None:
        self.host.nic.deregister_memory(mem.region)
        self.host.address_space.free(mem.buffer)
        self.regions.remove(mem)

    def get_channel(self, remote_endpoint: Endpoint, qp_idx: int = 0) -> RdmaChannel:
        """GetChannel: a channel to a peer over the qp_idx-th QP.

        QPs are created lazily on first use and spread over this
        device's CQs round-robin (Figure 4).
        """
        if not 0 <= qp_idx < self.num_qps_per_peer:
            raise DeviceError(
                f"qp_idx {qp_idx} out of range (device configured with "
                f"{self.num_qps_per_peer} QPs per peer)")
        key = (remote_endpoint, qp_idx)
        channel = self._channels.get(key)
        if channel is None:
            peer = RdmaDevice.lookup(self.host, remote_endpoint)
            if self.qp_mode == "shared":
                if peer.qp_mode != "shared":
                    raise DeviceError(
                        f"qp_mode mismatch: {self.endpoint} is shared but "
                        f"{remote_endpoint} is {peer.qp_mode}")
                # No connection to establish: both ends already own their
                # DCT endpoints; the channel just records which remote
                # endpoint WRs should target.
                channel = SharedChannel(self, remote_endpoint,
                                        self._shared_qps[qp_idx], qp_idx,
                                        target=peer._shared_qps[qp_idx])
                self._channels[key] = channel
                peer._channels[(self.endpoint, qp_idx)] = SharedChannel(
                    peer, self.endpoint, peer._shared_qps[qp_idx], qp_idx,
                    target=self._shared_qps[qp_idx])
            else:
                cq = self.cqs[self._next_cq % self.num_cqs]
                self._next_cq += 1
                local_qp = self.host.nic.create_qp(cq)
                peer_cq = peer.cqs[peer._next_cq % peer.num_cqs]
                peer._next_cq += 1
                remote_qp = peer.host.nic.create_qp(peer_cq)
                local_qp.connect(remote_qp)
                channel = RdmaChannel(self, remote_endpoint, local_qp, qp_idx)
                self._channels[key] = channel
                # The peer gets the mirror channel for send/recv messaging.
                peer._channels[(self.endpoint, qp_idx)] = RdmaChannel(
                    peer, self.endpoint, remote_qp, qp_idx)
        return channel

    def post_recv(self, channel: RdmaChannel, mem: MemRegion,
                  callback: Optional[Callable[[Completion], None]] = None,
                  offset: int = 0, size: Optional[int] = None) -> int:
        """Post a two-sided receive into ``mem`` (messaging verbs).

        Used by the vanilla-RPC address-distribution path (§3.1), not
        by tensor transfer.
        """
        wr = WorkRequest(opcode=Opcode.RECV,
                         size=size if size is not None else mem.size - offset,
                         local_addr=mem.addr + offset, lkey=mem.lkey)
        self._register_callback(wr.wr_id, callback)
        channel.messaging_qp().post_recv(wr)
        return wr.wr_id

    def post_send_message(self, channel: RdmaChannel, data: bytes,
                          callback: Optional[Callable[[Completion], None]] = None) -> int:
        """Send a small message over the messaging verbs (inline)."""
        wr = WorkRequest(opcode=Opcode.SEND, inline_data=data,
                         role="control")
        self._register_callback(wr.wr_id, callback)
        channel.messaging_qp().post_send(wr)
        return wr.wr_id

    # -- completion dispatch -------------------------------------------------------------

    def _register_callback(self, wr_id: int,
                           callback: Optional[Callable]) -> None:
        self._callbacks[wr_id] = callback

    def _poll_loop(self, cq: CompletionQueue) -> Generator:
        """One CQ poller of the device's thread pool."""
        while True:
            yield cq.wait()
            tracer = self.host.cluster.tracer
            woke_at = self.sim.now
            depth = len(cq)
            drained = 0
            for completion in cq.poll(max_entries=64):
                drained += 1
                callback = self._callbacks.pop(completion.wr_id, None)
                if callback is not None:
                    callback(completion)
            if tracer is not None and drained:
                # Callbacks never yield, so the drain itself is
                # instantaneous in simulated time: a zero-duration span
                # still marks the wake on the poller's timeline.
                tracer.record(
                    "cq_poll", f"drain {drained}", self.host.name,
                    f"cq:{cq.cq_id}", woke_at, self.sim.now,
                    args={"depth_at_wake": depth, "drained": drained})
                tracer.metrics.histogram("cq_depth_at_wake").observe(depth)
                tracer.metrics.histogram(
                    "cq_completions_per_wake").observe(drained)
