"""Retriable RDMA transfers: timeout, backoff, re-issue, degradation.

The paper's transfer protocols (§3.2/§3.3) assume the fabric never
fails; this module makes them survive the faults that
:mod:`repro.simnet.faults` injects.  A :class:`RecoveryManager` wraps a
channel memcpy in a retry loop:

* every attempt races the verb's completion against a per-transfer
  timeout scaled to the transfer size (so a blackholed verb — no CQE at
  all — is still detected);
* failed or timed-out attempts back off exponentially (capped) and
  re-issue; payload re-writes are idempotent because the simulated
  fabric never signals success without committing the bytes, and the
  flag byte always trails the payload;
* a broken queue pair is re-established (``qp_reestablish_time``)
  before the re-issue;
* when the retry budget is exhausted the channel **degrades**: this and
  every later transfer on it take the kernel TCP path
  (:meth:`RdmaChannel.fallback_transfer`), trading bandwidth for
  progress.  With ``tcp_fallback`` disabled the failure is raised to
  the caller instead.

Safety against torn writes comes from the protocols, not from here:
the NIC commits in ascending address order and an injected partial
write never lands the tail window, so a receiver polling the trailing
flag byte can never observe a half-landed payload.  In recovery mode
the flag carries an *epoch* (1..255, cycling) instead of a bare 1, so a
stale duplicate from a timed-out-but-delivered attempt can never be
consumed twice (see ``transfer.py``).

Selective repeat (lossy fabrics)
--------------------------------
Retrying the whole transfer is the transport equivalent of go-back-N:
fine when faults are rare whole-verb events, quadratically wasteful on
a PFC-less fabric that drops individual packets.  When a ``loss`` fault
rule is armed the comm runtime flips :attr:`RecoveryManager.
selective_repeat` on, and large transfers switch to
*communication-semantic-aware* selective repeat: the payload is cut
into ``CostModel.loss_chunk_bytes`` chunks tracked by a per-transfer
landed bitmap, and each round re-issues **only the chunks the fabric
actually lost**, tagged :data:`~repro.simnet.verbs.ROLE_RETRANSMIT` on
the wire.  Recovery cost is O(lost bytes), not O(window); the epoch
flag still trails the whole payload (the protocols post it after
``reliable_memcpy`` returns), so consumers never observe a partially
repaired tensor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from ..simnet.costmodel import CostModel
from ..simnet.simulator import Simulator
from ..simnet.verbs import ROLE_RETRANSMIT
from .device import DeviceError, Direction, MemRegion, RdmaChannel, RemoteMemRegion


#: sentinel yielded by the timeout leg of the completion race
_TIMEOUT = object()


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for the retry loop (all times in seconds)."""

    #: re-issues after the first attempt; exhausting this degrades the
    #: channel to TCP (or raises, with ``tcp_fallback`` off)
    max_retries: int = 4
    #: per-attempt timeout: ``timeout_base + size * timeout_per_byte``.
    #: The timeout only has to catch *blackholes* (a lost verb with no
    #: CQE); every other fault surfaces as an immediate error CQE.  The
    #: base is therefore deliberately generous — it must exceed the
    #: fabric's worst-case queueing (a small write stuck behind a full
    #: model's worth of bulk transfers), or spurious timeouts inject
    #: duplicate traffic that compounds the backlog.  Real NICs size
    #: their ACK timeout × retry budget in the same tens-of-ms range.
    timeout_base: float = 20e-3
    timeout_per_byte: float = 1e-9
    #: capped exponential backoff between attempts
    backoff_base: float = 20e-6
    backoff_factor: float = 2.0
    backoff_max: float = 500e-6
    #: degrade a persistently failing channel to the kernel TCP path
    tcp_fallback: bool = True

    def attempt_timeout(self, size: int) -> float:
        return self.timeout_base + size * self.timeout_per_byte

    def backoff_delay(self, attempt: int) -> float:
        """Backoff before re-issue number ``attempt`` (1-based)."""
        delay = self.backoff_base * (self.backoff_factor ** (attempt - 1))
        return min(delay, self.backoff_max)


@dataclass
class RecoveryStats:
    """Counters the chaos tests assert against (JSON-able)."""

    retries: int = 0
    timeouts: int = 0
    failed_completions: int = 0
    qp_reconnects: int = 0
    fallback_transfers: int = 0
    channels_degraded: int = 0
    gave_up: int = 0
    #: timed-out attempts whose original completion landed during the
    #: backoff window — goodput, not loss; never re-issued (the
    #: retry-accounting dedupe)
    late_completions: int = 0
    #: selective-repeat re-issues (chunks or small whole transfers)
    retransmits: int = 0
    #: bytes re-sent under ROLE_RETRANSMIT — the O(lost) invariant the
    #: lossy chaos suite bounds against injected-loss bytes
    retransmitted_bytes: int = 0
    retries_by_role: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failed_completions": self.failed_completions,
            "qp_reconnects": self.qp_reconnects,
            "fallback_transfers": self.fallback_transfers,
            "channels_degraded": self.channels_degraded,
            "gave_up": self.gave_up,
            "late_completions": self.late_completions,
            "retransmits": self.retransmits,
            "retransmitted_bytes": self.retransmitted_bytes,
            "retries_by_role": dict(self.retries_by_role),
        }


class RecoveryManager:
    """Executes channel memcpys with timeout/retry/degradation."""

    def __init__(self, sim: Simulator, cost: CostModel,
                 policy: Optional[RetryPolicy] = None,
                 tracer=None) -> None:
        self.sim = sim
        self.cost = cost
        self.policy = policy or RetryPolicy()
        self.tracer = tracer
        self.stats = RecoveryStats()
        #: chunk-granular selective repeat; flipped on by the comm
        #: runtime only when a ``loss`` fault rule is armed, so every
        #: other configuration keeps the legacy whole-transfer loop
        #: (and its exact-count chaos invariants) bit-identical
        self.selective_repeat = False
        #: sequence-number granularity of the chunk bitmap
        self.chunk_bytes = cost.loss_chunk_bytes

    # -- the retry loop ----------------------------------------------------------

    def reliable_memcpy(self, channel: RdmaChannel, *,
                        local_addr: int = 0,
                        local_region: Optional[MemRegion] = None,
                        remote_addr: int = 0,
                        remote_region: Optional[RemoteMemRegion] = None,
                        size: int,
                        direction: Direction,
                        inline_data: Optional[bytes] = None,
                        role: str = "", priority: int = 0) -> Generator:
        """Process: one logical transfer, retried until it lands.

        Use as ``yield from recovery.reliable_memcpy(...)``.  Returns
        once the bytes are at the destination — over RDMA if any
        attempt succeeds, over TCP once the channel degrades.  Raises
        :class:`DeviceError` only when the budget is exhausted and TCP
        fallback is disabled.
        """
        policy = self.policy
        if (self.selective_repeat and inline_data is None
                and size > self.chunk_bytes):
            yield from self._selective_memcpy(
                channel, local_addr=local_addr, local_region=local_region,
                remote_addr=remote_addr, remote_region=remote_region,
                size=size, direction=direction, role=role,
                priority=priority)
            return
        limit = policy.attempt_timeout(size)
        attempt = 0
        while True:
            if channel.degraded:
                yield from self._fallback(channel, local_addr, remote_addr,
                                          size, direction, inline_data, role)
                return
            # In selective-repeat mode even single-chunk re-issues carry
            # the retransmit role so lossy-wire accounting stays exact.
            retransmit = self.selective_repeat and attempt > 0
            if retransmit:
                self.stats.retransmits += 1
                self.stats.retransmitted_bytes += size
            event = channel.memcpy_event(
                local_addr, local_region, remote_addr, remote_region, size,
                direction, inline_data=inline_data,
                role=ROLE_RETRANSMIT if retransmit else role,
                priority=priority)
            started = self.sim.now
            failure: Optional[str] = None
            try:
                result = yield self.sim.any_of(
                    [event, self.sim.timeout(limit, _TIMEOUT)])
            except DeviceError as exc:
                self.stats.failed_completions += 1
                failure = str(exc)
            else:
                if result is _TIMEOUT:
                    # No CQE at all (blackholed verb, or a straggler
                    # pushed past the deadline); the attempt is written
                    # off and re-issued — idempotent, because success is
                    # never signaled without the bytes committing.
                    self.stats.timeouts += 1
                    failure = "timeout"
            if failure is None:
                return
            attempt += 1
            if attempt > policy.max_retries:
                self.stats.gave_up += 1
                if not policy.tcp_fallback:
                    raise DeviceError(
                        f"transfer failed after {policy.max_retries} "
                        f"retries: {failure}")
                if not channel.degraded:
                    channel.degraded = True
                    self.stats.channels_degraded += 1
                continue
            yield (policy.backoff_delay(attempt))
            if failure == "timeout" and event.ok:
                # The "lost" attempt was merely late: its completion
                # landed during the backoff window.  Re-issuing would
                # double-count a retry and re-send bytes that already
                # committed — record the race and stop instead.
                self.stats.late_completions += 1
                return
            self.stats.retries += 1
            self.stats.retries_by_role[role] = \
                self.stats.retries_by_role.get(role, 0) + 1
            if channel.broken:
                yield (self.cost.qp_reestablish_time)
                channel.reconnect()
                self.stats.qp_reconnects += 1
            self._trace_retry(channel, role, size, attempt, failure, started,
                              retransmit=self.selective_repeat)

    def _selective_memcpy(self, channel: RdmaChannel, *,
                          local_addr: int,
                          local_region: Optional[MemRegion],
                          remote_addr: int,
                          remote_region: Optional[RemoteMemRegion],
                          size: int, direction: Direction,
                          role: str, priority: int) -> Generator:
        """Chunk-granular selective repeat for one large transfer.

        The payload is cut into ``chunk_bytes`` chunks, each posted as
        its own verb (per-QP FIFO keeps them in sequence order).  A
        round completes when every outstanding chunk settles — error
        CQEs from lost chunks included — or the per-transfer timeout
        fires (blackholes produce no CQE at all).  Chunks that landed
        are marked in the bitmap; only the rest are re-issued, tagged
        ``ROLE_RETRANSMIT`` at the original priority.  Chunks whose
        completion arrives during the backoff window are goodput, not
        loss, and are never re-sent.  Exhausting the round budget
        degrades the remaining chunks (only) to the TCP path.
        """
        policy = self.policy
        chunk = max(int(self.chunk_bytes), 1)
        bounds = [(lo, min(lo + chunk, size))
                  for lo in range(0, size, chunk)]
        pending = list(range(len(bounds)))
        limit = policy.attempt_timeout(size)
        attempt = 0
        while True:
            if channel.degraded:
                for index in pending:
                    lo, hi = bounds[index]
                    yield from self._fallback(
                        channel, local_addr + lo, remote_addr + lo,
                        hi - lo, direction, None, role)
                return
            wire_role = role if attempt == 0 else ROLE_RETRANSMIT
            events: List[Tuple[int, object]] = []
            for index in pending:
                lo, hi = bounds[index]
                if attempt > 0:
                    self.stats.retransmits += 1
                    self.stats.retransmitted_bytes += hi - lo
                events.append((index, channel.memcpy_event(
                    local_addr + lo, local_region, remote_addr + lo,
                    remote_region, hi - lo, direction, role=wire_role,
                    priority=priority)))
            started = self.sim.now
            # Gather every chunk's settling (success *or* error CQE)
            # behind one gate event: AllOf would fail fast on the first
            # lost chunk and hide the fate of the rest of the round.
            state = {"unsettled": len(events), "gate": self.sim.event()}

            def settle(_event, state=state) -> None:
                state["unsettled"] -= 1
                if state["unsettled"] == 0 and not state["gate"].triggered:
                    state["gate"].succeed()

            for _index, event in events:
                event.add_callback(settle)
            result = yield self.sim.any_of(
                [state["gate"], self.sim.timeout(limit, _TIMEOUT)])
            timed_out = result is _TIMEOUT
            if timed_out:
                self.stats.timeouts += 1
            still_out: List[Tuple[int, object]] = []
            failed = 0
            for index, event in events:
                if event.ok:
                    continue
                if event.triggered:
                    failed += 1
                still_out.append((index, event))
            self.stats.failed_completions += failed
            if not still_out:
                return
            attempt += 1
            if attempt > policy.max_retries:
                self.stats.gave_up += 1
                if not policy.tcp_fallback:
                    raise DeviceError(
                        f"{len(still_out)} chunks still lost after "
                        f"{policy.max_retries} retransmit rounds")
                if not channel.degraded:
                    channel.degraded = True
                    self.stats.channels_degraded += 1
                pending = [index for index, _event in still_out]
                continue
            yield (policy.backoff_delay(attempt))
            pending = []
            for index, event in still_out:
                if event.ok:
                    # Landed during the backoff: late goodput, no re-send.
                    self.stats.late_completions += 1
                else:
                    pending.append(index)
            if not pending:
                return
            self.stats.retries += 1
            self.stats.retries_by_role[role] = \
                self.stats.retries_by_role.get(role, 0) + 1
            if channel.broken:
                yield (self.cost.qp_reestablish_time)
                channel.reconnect()
                self.stats.qp_reconnects += 1
            lost = sum(bounds[i][1] - bounds[i][0] for i in pending)
            self._trace_retry(channel, role, lost, attempt,
                              "timeout" if timed_out else "chunk-loss",
                              started, retransmit=True)

    def _fallback(self, channel: RdmaChannel, local_addr: int,
                  remote_addr: int, size: int, direction: Direction,
                  inline_data: Optional[bytes], role: str) -> Generator:
        self.stats.fallback_transfers += 1
        if self.tracer is not None:
            self.tracer.metrics.counter("tcp_fallbacks").add(1)
        yield from channel.fallback_transfer(
            local_addr=local_addr, remote_addr=remote_addr, size=size,
            direction=direction, inline_data=inline_data, role=role)

    def _trace_retry(self, channel: RdmaChannel, role: str, size: int,
                     attempt: int, failure: str, started: float,
                     retransmit: bool = False) -> None:
        if self.tracer is None:
            return
        host = channel.device.host.name
        self.tracer.record(
            "retry", f"retry#{attempt} {role or 'transfer'}", host,
            f"recovery:{host}", started, self.sim.now,
            args={"role": role, "size": size, "attempt": attempt,
                  "cause": failure, "peer": str(channel.peer),
                  "retransmit": retransmit})
        self.tracer.metrics.counter("transfer_retries").add(1)
        if retransmit:
            self.tracer.metrics.counter("retransmitted_bytes").add(size)

    # -- reporting ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return self.stats.to_dict()
