"""Retriable RDMA transfers: timeout, backoff, re-issue, degradation.

The paper's transfer protocols (§3.2/§3.3) assume the fabric never
fails; this module makes them survive the faults that
:mod:`repro.simnet.faults` injects.  A :class:`RecoveryManager` wraps a
channel memcpy in a retry loop:

* every attempt races the verb's completion against a per-transfer
  timeout scaled to the transfer size (so a blackholed verb — no CQE at
  all — is still detected);
* failed or timed-out attempts back off exponentially (capped) and
  re-issue; payload re-writes are idempotent because the simulated
  fabric never signals success without committing the bytes, and the
  flag byte always trails the payload;
* a broken queue pair is re-established (``qp_reestablish_time``)
  before the re-issue;
* when the retry budget is exhausted the channel **degrades**: this and
  every later transfer on it take the kernel TCP path
  (:meth:`RdmaChannel.fallback_transfer`), trading bandwidth for
  progress.  With ``tcp_fallback`` disabled the failure is raised to
  the caller instead.

Safety against torn writes comes from the protocols, not from here:
the NIC commits in ascending address order and an injected partial
write never lands the tail window, so a receiver polling the trailing
flag byte can never observe a half-landed payload.  In recovery mode
the flag carries an *epoch* (1..255, cycling) instead of a bare 1, so a
stale duplicate from a timed-out-but-delivered attempt can never be
consumed twice (see ``transfer.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from ..simnet.costmodel import CostModel
from ..simnet.simulator import Simulator
from .device import DeviceError, Direction, MemRegion, RdmaChannel, RemoteMemRegion


#: sentinel yielded by the timeout leg of the completion race
_TIMEOUT = object()


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for the retry loop (all times in seconds)."""

    #: re-issues after the first attempt; exhausting this degrades the
    #: channel to TCP (or raises, with ``tcp_fallback`` off)
    max_retries: int = 4
    #: per-attempt timeout: ``timeout_base + size * timeout_per_byte``.
    #: The timeout only has to catch *blackholes* (a lost verb with no
    #: CQE); every other fault surfaces as an immediate error CQE.  The
    #: base is therefore deliberately generous — it must exceed the
    #: fabric's worst-case queueing (a small write stuck behind a full
    #: model's worth of bulk transfers), or spurious timeouts inject
    #: duplicate traffic that compounds the backlog.  Real NICs size
    #: their ACK timeout × retry budget in the same tens-of-ms range.
    timeout_base: float = 20e-3
    timeout_per_byte: float = 1e-9
    #: capped exponential backoff between attempts
    backoff_base: float = 20e-6
    backoff_factor: float = 2.0
    backoff_max: float = 500e-6
    #: degrade a persistently failing channel to the kernel TCP path
    tcp_fallback: bool = True

    def attempt_timeout(self, size: int) -> float:
        return self.timeout_base + size * self.timeout_per_byte

    def backoff_delay(self, attempt: int) -> float:
        """Backoff before re-issue number ``attempt`` (1-based)."""
        delay = self.backoff_base * (self.backoff_factor ** (attempt - 1))
        return min(delay, self.backoff_max)


@dataclass
class RecoveryStats:
    """Counters the chaos tests assert against (JSON-able)."""

    retries: int = 0
    timeouts: int = 0
    failed_completions: int = 0
    qp_reconnects: int = 0
    fallback_transfers: int = 0
    channels_degraded: int = 0
    gave_up: int = 0
    retries_by_role: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failed_completions": self.failed_completions,
            "qp_reconnects": self.qp_reconnects,
            "fallback_transfers": self.fallback_transfers,
            "channels_degraded": self.channels_degraded,
            "gave_up": self.gave_up,
            "retries_by_role": dict(self.retries_by_role),
        }


class RecoveryManager:
    """Executes channel memcpys with timeout/retry/degradation."""

    def __init__(self, sim: Simulator, cost: CostModel,
                 policy: Optional[RetryPolicy] = None,
                 tracer=None) -> None:
        self.sim = sim
        self.cost = cost
        self.policy = policy or RetryPolicy()
        self.tracer = tracer
        self.stats = RecoveryStats()

    # -- the retry loop ----------------------------------------------------------

    def reliable_memcpy(self, channel: RdmaChannel, *,
                        local_addr: int = 0,
                        local_region: Optional[MemRegion] = None,
                        remote_addr: int = 0,
                        remote_region: Optional[RemoteMemRegion] = None,
                        size: int,
                        direction: Direction,
                        inline_data: Optional[bytes] = None,
                        role: str = "", priority: int = 0) -> Generator:
        """Process: one logical transfer, retried until it lands.

        Use as ``yield from recovery.reliable_memcpy(...)``.  Returns
        once the bytes are at the destination — over RDMA if any
        attempt succeeds, over TCP once the channel degrades.  Raises
        :class:`DeviceError` only when the budget is exhausted and TCP
        fallback is disabled.
        """
        policy = self.policy
        limit = policy.attempt_timeout(size)
        attempt = 0
        while True:
            if channel.degraded:
                yield from self._fallback(channel, local_addr, remote_addr,
                                          size, direction, inline_data, role)
                return
            event = channel.memcpy_event(
                local_addr, local_region, remote_addr, remote_region, size,
                direction, inline_data=inline_data, role=role,
                priority=priority)
            started = self.sim.now
            failure: Optional[str] = None
            try:
                result = yield self.sim.any_of(
                    [event, self.sim.timeout(limit, _TIMEOUT)])
            except DeviceError as exc:
                self.stats.failed_completions += 1
                failure = str(exc)
            else:
                if result is _TIMEOUT:
                    # No CQE at all (blackholed verb, or a straggler
                    # pushed past the deadline); the attempt is written
                    # off and re-issued — idempotent, because success is
                    # never signaled without the bytes committing.
                    self.stats.timeouts += 1
                    failure = "timeout"
            if failure is None:
                return
            attempt += 1
            if attempt > policy.max_retries:
                self.stats.gave_up += 1
                if not policy.tcp_fallback:
                    raise DeviceError(
                        f"transfer failed after {policy.max_retries} "
                        f"retries: {failure}")
                if not channel.degraded:
                    channel.degraded = True
                    self.stats.channels_degraded += 1
                continue
            self.stats.retries += 1
            self.stats.retries_by_role[role] = \
                self.stats.retries_by_role.get(role, 0) + 1
            yield (policy.backoff_delay(attempt))
            if channel.broken:
                yield (self.cost.qp_reestablish_time)
                channel.reconnect()
                self.stats.qp_reconnects += 1
            self._trace_retry(channel, role, size, attempt, failure, started)

    def _fallback(self, channel: RdmaChannel, local_addr: int,
                  remote_addr: int, size: int, direction: Direction,
                  inline_data: Optional[bytes], role: str) -> Generator:
        self.stats.fallback_transfers += 1
        if self.tracer is not None:
            self.tracer.metrics.counter("tcp_fallbacks").add(1)
        yield from channel.fallback_transfer(
            local_addr=local_addr, remote_addr=remote_addr, size=size,
            direction=direction, inline_data=inline_data, role=role)

    def _trace_retry(self, channel: RdmaChannel, role: str, size: int,
                     attempt: int, failure: str, started: float) -> None:
        if self.tracer is None:
            return
        host = channel.device.host.name
        self.tracer.record(
            "retry", f"retry#{attempt} {role or 'transfer'}", host,
            f"recovery:{host}", started, self.sim.now,
            args={"role": role, "size": size, "attempt": attempt,
                  "cause": failure, "peer": str(channel.peer)})
        self.tracer.metrics.counter("transfer_retries").add(1)

    # -- reporting ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return self.stats.to_dict()
