"""Host-side protocol of the in-network (switch-aggregated) allreduce.

The graph side is one ``InNetworkReduce`` node per worker (see
:mod:`repro.collectives.innetwork`); everything that moves bytes lives
here.  Each reduction group owns, per member, a preallocated
RDMA-registered receive region of ``nbytes + 1`` — payload plus a tail
flag byte, the same static-placement discipline as every other
zero-copy transfer — and each iteration runs one *round*:

* the member streams its fusion buffer toward its ToR in
  aggregation-slot-sized chunks tagged ``in-network-aggregate``
  (NIC egress booked per chunk, access-link latency charged, the
  priority wire scheduler honoured when enabled);
* the :class:`~repro.simnet.fabric.AggregationPlane` combines the
  chunks in the switches and hands back, per member, the time the
  reduced chunk clears that member's ToR;
* the result chunk books the member's NIC ingress, commits in
  ascending address order, and — once every chunk of the round has
  landed — the flag byte is set to the round's epoch (cycling 1..255,
  so a stale flag from the previous round is never double-consumed)
  and parked executors are woken.

Fallback
--------
Two conditions push work off the switches, both onto a deterministic
**host-tree** path that reduces at the rack leaders and the global
root with the *same combination order* as the switches (member order
within a rack, rack order across racks — so results are bit-identical
and a run that degrades mid-way stays numerically consistent):

* **backpressure spill** — the plane's slot reservation fails for one
  chunk; just that chunk takes the host path (sent exactly once, so
  the retry cost is bounded);
* **switch failure** — the fault plane reports a ToR/spine down at
  round start (``switch-fail`` rules); the whole round degrades, and
  the group re-checks each round so a bounded failure window heals.

Fallback traffic is tagged ``collective-chunk`` — it *is* host
collective traffic — so wire-byte identities for the in-network roles
stay exact.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from ..graph.executor import Executor
from ..graph.tensor import Tensor
from ..graph.transfer_api import Outcome
from ..simnet.fabric import AggregationPlane, rack_groups
from ..simnet.verbs import (ROLE_COLLECTIVE_CHUNK, ROLE_INNETWORK_AGGREGATE,
                            ROLE_INNETWORK_RESULT, ROLE_RETRANSMIT, Opcode,
                            WorkRequest)
from .device import DeviceError


def _round_epoch(round_id: int) -> int:
    """Flag epoch of a round, cycling 1..255 (0 is always "empty")."""
    return (round_id - 1) % 255 + 1


class _Member:
    """Per-worker state of one reduction group."""

    __slots__ = ("index", "device", "executor", "host", "nic", "tensor",
                 "flag_offset", "round", "egress_tail", "up_link",
                 "down_link", "window_event")

    def __init__(self, index: int, device: str, executor: Executor,
                 tensor: Tensor, flag_offset: int, up_link,
                 down_link) -> None:
        self.index = index
        self.device = device
        self.executor = executor
        self.host = executor.host
        self.nic = executor.host.nic
        self.tensor = tensor
        self.flag_offset = flag_offset
        self.round = 0
        #: last egress wire-scheduler booking (per-member FIFO chain)
        self.egress_tail = None
        #: send process parked on the in-flight window, if any
        self.window_event = None
        #: host->ToR / ToR->host access links (latency + byte counters;
        #: their capacity *is* the NIC pipe, same as Fabric.traverse)
        self.up_link = up_link
        self.down_link = down_link


class InNetworkGroup:
    """One reduction group: members, receive regions, round protocol."""

    def __init__(self, comm, session, group_id: str,
                 nodes: List[Tuple[str, object]],
                 plane: AggregationPlane) -> None:
        self.comm = comm
        self.group_id = group_id
        self.plane = plane
        self.sim = session.sim
        self.cluster = session.cluster
        self.cost = session.cluster.cost
        self.fabric = session.cluster.fabric

        nodes = sorted(nodes, key=lambda item: item[1].attrs["member"])
        first = nodes[0][1]
        self.num_members = int(first.attrs["num_members"])
        self.hosts_per_rack = int(first.attrs["hosts_per_rack"])
        if len(nodes) != self.num_members:
            raise DeviceError(
                f"group {group_id!r}: {len(nodes)} InNetworkReduce nodes "
                f"for {self.num_members} members")
        shape = first.output_shapes[0]
        self.dtype = first.output_dtypes[0]
        self.shape = shape
        self.nbytes = shape.num_elements() * self.dtype.size
        self.priority = int(first.attrs.get("priority", 0))

        slot = max(int(self.cost.switch_agg_slot_bytes), self.dtype.size)
        slot -= slot % self.dtype.size
        self.chunks: List[Tuple[int, int]] = []
        offset = 0
        while offset < self.nbytes:
            size = min(slot, self.nbytes - offset)
            self.chunks.append((offset, size))
            offset += size

        self.members: List[_Member] = []
        for device, node in nodes:
            executor = session.executors[device]
            host_name = executor.host.name
            tor = next((n for n in self.fabric._adjacency.get(host_name, [])
                        if self.fabric.nodes[n].kind == "tor"), None)
            if tor is None:
                raise DeviceError(f"host {host_name!r} has no ToR uplink; "
                                  f"in-network reduction needs a fat-tree")
            buffer = executor.host.allocate(
                self.nbytes + 1, label=f"innet-recv:{group_id}:{device}")
            device_obj = comm.devices[device]
            device_obj.register_existing(buffer)
            comm.registration_seconds += \
                executor.host.cost.mr_register_time(self.nbytes + 1)
            tensor = Tensor(self.dtype, shape, buffer, offset=0)
            self.members.append(_Member(
                int(node.attrs["member"]), device, executor, tensor,
                flag_offset=self.nbytes,
                up_link=self.fabric.links[(host_name, tor)],
                down_link=self.fabric.links[(tor, host_name)]))

        self.racks = rack_groups(self.num_members, self.hosts_per_rack)
        self.rack_of = {}
        for rack_index, group in enumerate(self.racks):
            for m in group:
                self.rack_of[m] = rack_index
        #: member index fronting each rack, and the global root, of the
        #: host-tree fallback
        self.leaders = [group[0] for group in self.racks]
        self.root = self.leaders[0]

        plane.register_group(group_id,
                             [m.host.name for m in self.members],
                             self.hosts_per_rack, self._deliver)

        # -- per-round shared state (keyed by round id) ------------------
        #: round -> whether the switches carry this round (healthy check)
        self._round_switched: Dict[int, bool] = {}
        #: (round, chunk) -> "switch" | "host"
        self._chunk_path: Dict[Tuple[int, int], str] = {}
        #: (round, member) -> committed chunk count
        self._committed: Dict[Tuple[int, int], int] = {}
        #: members that finished a round (for state cleanup)
        self._round_done: Dict[int, int] = {}
        #: host-tree rack stage: (round, chunk, rack) -> contributions
        self._tree_rack: Dict[Tuple[int, int, int], List] = {}
        #: host-tree root stage: (round, chunk) -> rack partials
        self._tree_root: Dict[Tuple[int, int], List] = {}

        # -- counters -----------------------------------------------------
        self.rounds_switched = 0
        self.rounds_degraded = 0
        self.chunks_spilled = 0
        self.chunks_switched = 0

    # -- the executor-facing entry point ------------------------------------------

    def execute(self, executor: Executor, member_index: int,
                tensor: Tensor) -> Outcome:
        member = self.members[member_index]
        if executor is not member.executor:  # pragma: no cover - defensive
            raise DeviceError(f"group {self.group_id!r} member "
                              f"{member_index} ran on the wrong executor")
        if tensor.nbytes != self.nbytes:
            raise DeviceError(
                f"group {self.group_id!r}: expected {self.nbytes} bytes, "
                f"got {tensor.nbytes} (shape changed on a static edge?)")
        member.round += 1
        round_id = member.round
        self._committed[(round_id, member_index)] = 0
        self.sim.spawn(self._member_send(member, tensor, round_id),
                       name=f"innet-send:{self.group_id}:w{member_index}")
        epoch = _round_epoch(round_id)
        backing = member.tensor.buffer.backing

        def poll() -> bool:
            return backing.read_byte(member.flag_offset) == epoch

        def complete() -> Outcome:
            backing.write(member.flag_offset, b"\x00")
            self._member_done(round_id)
            return Outcome.done([member.tensor])

        return Outcome.polling(poll=poll, complete=complete)

    # -- member upstream --------------------------------------------------------

    def _member_send(self, member: _Member, tensor: Tensor,
                     round_id: int) -> Generator:
        executor = member.executor
        cost = self.cost
        sim = self.sim
        extra = self.comm._gpu_delay(executor, self.nbytes)
        if extra > 0:
            yield extra
        if not self.comm.zero_copy:
            # RDMA.cp: stage the buffer into registered memory first.
            yield cost.malloc_time(self.nbytes)
            yield from member.host.cpu.run(cost.memcpy_time(self.nbytes))

        switched = self._round_switched.get(round_id)
        if switched is None:
            switched = self.plane.healthy(self.group_id, sim.now)
            self._round_switched[round_id] = switched
            if switched:
                self.rounds_switched += 1
            else:
                self.rounds_degraded += 1

        dense = tensor.is_dense
        flat = tensor.array if dense else None
        item = self.dtype.size
        window = max(1, cost.switch_agg_window)
        committed_key = (round_id, member.index)
        for chunk_index, (offset, size) in enumerate(self.chunks):
            # Send window: run at most ``window`` chunks ahead of the
            # results delivered back to this member.  This is what keeps
            # switch-slot occupancy bounded — without it every chunk
            # would hold its reservation from post time to delivery and
            # the slot pool would drain instantly on big buckets.
            while (chunk_index - self._committed.get(committed_key,
                                                     len(self.chunks))
                   >= window):
                member.window_event = sim.event()
                yield member.window_event
            yield cost.rdma_verb_overhead
            payload = None
            if dense:
                payload = flat[offset // item:(offset + size) // item].copy()
            path = self._chunk_route(round_id, chunk_index, size)
            if path == "switch":
                self._send_up(member, round_id, chunk_index, size, payload)
            else:
                self._tree_send_to_leader(member, round_id, chunk_index,
                                          size, payload)
        return []

    def _chunk_route(self, round_id: int, chunk_index: int,
                     size: int) -> str:
        """Switch or host path for one chunk (first member decides)."""
        key = (round_id, chunk_index)
        path = self._chunk_path.get(key)
        if path is None:
            if not self._round_switched[round_id]:
                path = "host"
            elif self.plane.reserve_chunk(self.group_id, round_id,
                                          chunk_index, size):
                path = "switch"
                self.chunks_switched += 1
            else:
                path = "host"
                self.chunks_spilled += 1
            self._chunk_path[key] = path
        return path

    def _send_up(self, member: _Member, round_id: int, chunk_index: int,
                 size: int, payload,
                 role: str = ROLE_INNETWORK_AGGREGATE) -> None:
        """Book the member's egress toward its ToR for one chunk.

        On a lossy fabric the uplink consults the fault plane's
        loss-only hook (these bookings bypass the verb path): a lost
        chunk still burns its wire slot — recorded under the attempt's
        role — and is then re-issued as ``ROLE_RETRANSMIT`` traffic, so
        retransmitted bytes stay exactly the injected-loss bytes.  The
        switch-to-host downlink carries reduced results the switch
        replays from its slot until delivery acknowledges, so it is
        modelled reliable.
        """
        sim = self.sim
        tor_link = member.up_link
        latency = tor_link.latency
        tor_link.bytes_carried += size
        tor_link.transfers += 1
        injector = member.host.cluster.fault_plane
        lost = False
        if injector is not None:
            probe = WorkRequest(opcode=Opcode.WRITE, size=size, role=role)
            lost = injector.on_uplink(member.nic, probe)

        def arrived(start: float, egress_end: float) -> None:
            arrival = egress_end + latency
            self._record(member.host.name, tor_link.dst.name, size,
                         start, arrival, role)
            if lost:
                sim.call_at(arrival, lambda: self._send_up(
                    member, round_id, chunk_index, size, payload,
                    role=ROLE_RETRANSMIT))
                return
            sim.call_at(arrival, lambda: self.plane.chunk_arrival(
                self.group_id, round_id, chunk_index, member.index, size,
                payload, arrival))

        nic = member.nic
        if nic.egress_sched is not None:
            booking = nic.egress_sched.submit(
                size, self.priority, data_ready=sim.now,
                after=member.egress_tail)
            member.egress_tail = booking
            booking.on_complete = (
                lambda b=booking: arrived(b.first_start, b.end))
        else:
            start, egress_end = nic.egress.reserve(sim.now, size)
            arrived(start, egress_end)

    # -- downstream delivery -----------------------------------------------------

    def _deliver(self, chunk_index: int, round_id: int, members: List[int],
                 ready: float, payload, size: int) -> None:
        """Plane callback: the reduced chunk cleared these members' ToR."""
        offset, _ = self.chunks[chunk_index]
        for member_index in members:
            member = self.members[member_index]
            link = member.down_link
            begin = ready + link.latency
            link.bytes_carried += size
            link.transfers += 1
            nic = member.nic
            if nic.ingress_sched is not None:
                booking = nic.ingress_sched.submit(
                    size, self.priority, data_ready=begin)
                booking.on_complete = (
                    lambda b=booking, m=member, o=offset: self._land(
                        m, round_id, o, size, payload, link.src.name,
                        b.first_start, b.end, ROLE_INNETWORK_RESULT))
            else:
                start, end = nic.ingress.reserve(begin, size)
                self._land(member, round_id, offset, size, payload,
                           link.src.name, begin, end, ROLE_INNETWORK_RESULT)

    def _land(self, member: _Member, round_id: int, offset: int, size: int,
              payload, src_name: str, start: float, end: float,
              role: str, record: bool = True) -> None:
        """Commit one result chunk into the member's receive region."""
        # Self-deliveries never hit the wire; tree hops were already
        # accounted by the transfer that carried them here.
        if record and src_name != member.host.name:
            self._record(src_name, member.host.name, size, start, end, role)
        raw = payload.tobytes() if payload is not None else None
        member.nic._schedule_ascending_commit(
            member.tensor.buffer.backing, offset, size, raw, start, end)
        self.sim.call_at(end, lambda: self._chunk_committed(member, round_id))

    def _chunk_committed(self, member: _Member, round_id: int) -> None:
        key = (round_id, member.index)
        count = self._committed[key] + 1
        self._committed[key] = count
        if member.window_event is not None:
            event, member.window_event = member.window_event, None
            event.succeed()
        if count == len(self.chunks):
            del self._committed[key]
            member.tensor.buffer.backing.write(
                member.flag_offset, bytes([_round_epoch(round_id)]))
            member.host.notify_memory_commit()

    def _member_done(self, round_id: int) -> None:
        done = self._round_done.get(round_id, 0) + 1
        if done < self.num_members:
            self._round_done[round_id] = done
            return
        # Whole round consumed: drop its shared per-chunk state.
        self._round_done.pop(round_id, None)
        self._round_switched.pop(round_id, None)
        for chunk_index in range(len(self.chunks)):
            self._chunk_path.pop((round_id, chunk_index), None)

    # -- host-tree fallback -------------------------------------------------------

    def _tree_send_to_leader(self, member: _Member, round_id: int,
                             chunk_index: int, size: int, payload) -> None:
        """Stage 1: every member ships the chunk to its rack leader."""
        rack = self.rack_of[member.index]
        leader = self.members[self.leaders[rack]]
        if member.index == leader.index:
            self._tree_rack_arrival(round_id, chunk_index, rack,
                                    member.index, payload, size,
                                    self.sim.now)
            return
        self._tree_transfer(
            member, leader, size,
            lambda now, m=member.index: self._tree_rack_arrival(
                round_id, chunk_index, rack, m, payload, size, now))

    def _tree_rack_arrival(self, round_id: int, chunk_index: int, rack: int,
                           member_index: int, payload, size: int,
                           now: float) -> None:
        key = (round_id, chunk_index, rack)
        entries = self._tree_rack.setdefault(key, [])
        entries.append((member_index, payload, now))
        if len(entries) < len(self.racks[rack]):
            return
        del self._tree_rack[key]
        entries.sort()
        partial = self._combine([e[1] for e in entries])
        ready = max(e[2] for e in entries) + self._combine_time(size)
        leader = self.members[self.leaders[rack]]
        root = self.members[self.root]
        if leader.index == root.index:
            self.sim.call_at(ready, lambda: self._tree_root_arrival(
                round_id, chunk_index, rack, partial, size, ready))
        else:
            self.sim.call_at(ready, lambda: self._tree_transfer(
                leader, root, size,
                lambda now, r=rack: self._tree_root_arrival(
                    round_id, chunk_index, r, partial, size, now)))

    def _tree_root_arrival(self, round_id: int, chunk_index: int, rack: int,
                           partial, size: int, now: float) -> None:
        key = (round_id, chunk_index)
        entries = self._tree_root.setdefault(key, [])
        entries.append((rack, partial, now))
        if len(entries) < len(self.racks):
            return
        del self._tree_root[key]
        entries.sort()
        result = self._combine([e[1] for e in entries])
        ready = max(e[2] for e in entries) + self._combine_time(size)
        root = self.members[self.root]
        offset, _ = self.chunks[chunk_index]
        for rack_index, group in enumerate(self.racks):
            leader = self.members[self.leaders[rack_index]]

            def fan_out(now: float, leader=leader, group=group) -> None:
                for member_index in group:
                    member = self.members[member_index]
                    if member is leader:
                        self._tree_land(member, round_id, offset, size,
                                        result, leader.host.name, now)
                    else:
                        self._tree_transfer(
                            leader, member, size,
                            lambda t, m=member: self._tree_land(
                                m, round_id, offset, size, result,
                                leader.host.name, t))

            if leader is root:
                self.sim.call_at(ready, lambda f=fan_out: f(ready))
            else:
                self.sim.call_at(ready, lambda f=fan_out, l=leader:
                                 self._tree_transfer(root, l, size, f))

    def _tree_land(self, member: _Member, round_id: int, offset: int,
                   size: int, payload, src_name: str, now: float) -> None:
        """Terminal hop of the tree: commit into the receive region."""
        if src_name == member.host.name:
            # The node already holds the result locally (leader / root):
            # no wire, just the commit.
            start = end = now
        else:
            start, end = member.nic.ingress.reserve(now, size)
        self._land(member, round_id, offset, size, payload, src_name,
                   start, end, ROLE_COLLECTIVE_CHUNK, record=False)

    def _tree_transfer(self, src: _Member, dst: _Member, size: int,
                       then) -> None:
        """One host-to-host hop of the fallback tree.

        Books the source NIC egress, charges the fabric path (trunk
        links contend via :meth:`Fabric.traverse`), and fires ``then``
        at the destination arrival time.  The destination's own ingress
        booking happens at the terminal hop.
        """
        sim = self.sim
        start, egress_end = src.nic.egress.reserve(sim.now, size)
        path = self.fabric.traverse(src.host.name, dst.host.name,
                                    start, egress_end, size)
        arrival = path.last_byte if path is not None \
            else egress_end + self.cost.rdma_base_latency
        self._record(src.host.name, dst.host.name, size, start, arrival,
                     ROLE_COLLECTIVE_CHUNK)
        sim.call_at(arrival, lambda: then(arrival))

    def _combine_time(self, size: int) -> float:
        return self.cost.op_overhead + \
            (size // self.dtype.size) / self.cost.gpu_elementwise

    @staticmethod
    def _combine(payloads: List) -> Optional[np.ndarray]:
        if any(p is None for p in payloads):
            return None
        result = payloads[0].copy()
        for payload in payloads[1:]:
            result += payload
        return result

    # -- helpers ------------------------------------------------------------------

    def _record(self, src: str, dst: str, size: int, start: float,
                end: float, role: str) -> None:
        metrics = self.cluster.metrics
        if metrics is not None:
            metrics.record_transfer("RDMA_WRITE", src, dst, size,
                                    start, end, role=role)
        tracer = self.cluster.tracer
        if tracer is not None:
            tracer.record("wire", f"RDMA_WRITE {size}B", src, "nic:wire",
                          start, end,
                          args={"dst": dst, "nbytes": size, "role": role})
            tracer.metrics.histogram("transfer_size_bytes").observe(size)

    def snapshot(self) -> Dict[str, object]:
        return {
            "members": self.num_members,
            "chunks_per_round": len(self.chunks),
            "rounds_switched": self.rounds_switched,
            "rounds_degraded": self.rounds_degraded,
            "chunks_switched": self.chunks_switched,
            "chunks_spilled": self.chunks_spilled,
        }


class InNetworkRuntime:
    """All reduction groups of one session plus their shared plane."""

    def __init__(self, comm, session) -> None:
        grouped: Dict[str, List[Tuple[str, object]]] = {}
        for device, graph in session.partitioned.subgraphs.items():
            for node in graph:
                if node.op_type == "InNetworkReduce":
                    grouped.setdefault(node.attrs["group"], []).append(
                        (device, node))
        self.groups: Dict[str, InNetworkGroup] = {}
        self.plane: Optional[AggregationPlane] = None
        if not grouped:
            return
        cluster = session.cluster
        if cluster.fabric is None:
            raise DeviceError(
                "in-network reduction needs a fat-tree fabric; the runner "
                "falls back to the hierarchical host collective on flat "
                "topologies")
        self.plane = AggregationPlane(
            session.sim, cluster.fabric, cluster.cost,
            metrics=cluster.metrics, fault_plane=cluster.fault_plane)
        for group_id in sorted(grouped):
            self.groups[group_id] = InNetworkGroup(
                comm, session, group_id, grouped[group_id], self.plane)

    @property
    def active(self) -> bool:
        return bool(self.groups)

    def execute(self, comm, executor: Executor, node, tensor: Tensor):
        group = self.groups.get(node.attrs["group"])
        if group is None:  # pragma: no cover - defensive
            raise DeviceError(f"unknown reduction group "
                              f"{node.attrs['group']!r}")
        return group.execute(executor, int(node.attrs["member"]), tensor)

    def snapshot(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            group_id: group.snapshot()
            for group_id, group in sorted(self.groups.items())}
        if self.plane is not None:
            out["plane"] = self.plane.snapshot()
        return out
