"""RDMA-aware graph analysis (paper §3.4).

Given a partitioned session, the analyzer:

1. classifies every cross-device transfer edge as *static* (shape
   fully inferred — the static shape-inference pass already ran during
   graph finalization) or *dynamic*;
2. sizes one RDMA arena per partition — big enough for the preallocated
   receiver tensors, metadata slots, staging blocks, and traced
   sender tensors — and registers it with the NIC **once** (per-tensor
   registration would pay the pinning cost per transfer and run into
   the NIC's MR-table cap);
3. preallocates receiver-side tensors (static edges) and metadata
   slots (dynamic edges) inside the arena and publishes their
   addresses in the device's address book;
4. statically walks senders back through in-place operators to find
   variables whose storage should be arena-allocated from birth;
5. distributes remote addresses to the sender sides using the vanilla
   RPC of §3.1 (simulated for real over messaging verbs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..graph.allocator import ArenaAllocator
from ..graph.executor import Executor
from ..graph.node import Graph, Node
from ..graph.partition import PartitionedGraph, TransferEdge
from ..graph.tensor import TensorMeta
from ..simnet.memory import Buffer
from .device import MemRegion, RdmaDevice, RemoteMemRegion
from .tracing import AllocationSiteTracer


ALIGN = 64
#: churn multiplier for dynamically allocated receive tensors (the
#: previous mini-batch's tensor coexists briefly with the new one)
DYNAMIC_CHURN = 4
FIXED_SLACK = 1024 * 1024

#: ops that pass their input (or variable) buffer through in place —
#: the static walk the analyzer does before falling back to tracing
_INPLACE_OPS = {"ApplyGradient", "Identity"}


@dataclass
class EdgePlan:
    """Analyzer output for one transfer edge."""

    edge: TransferEdge
    static: bool
    recv_tensor_offset: Optional[int] = None   # static edges
    meta_slot_offset: Optional[int] = None     # dynamic edges
    ndims: Optional[int] = None                # dynamic edges


@dataclass
class DevicePlan:
    """Analyzer output for one partition/device."""

    device: str
    arena_size: int
    edges_in: List[EdgePlan] = field(default_factory=list)
    edges_out: List[TransferEdge] = field(default_factory=list)
    #: variable nodes whose storage must be born in the arena
    static_variable_sites: Set[Tuple[str, int]] = field(default_factory=set)


def _aligned(size: int) -> int:
    return (size + ALIGN - 1) & ~(ALIGN - 1)


def _estimate_dynamic_nbytes(edge: TransferEdge, graph: Graph) -> int:
    """Upper-bound estimate for a dynamic tensor (unknown dims -> cap)."""
    recv = graph.node(edge.recv_node)
    shape = recv.attrs["shape"]
    dtype = recv.attrs["dtype"]
    elements = 1
    for dim in shape.dims:
        elements *= dim if dim is not None else 4096
    return elements * dtype.size


def find_static_source(graph: Graph, node: Node) -> Optional[Node]:
    """Walk back through in-place ops to a Variable, if any.

    This is the *static* half of the allocation-site decision: when a
    sent tensor is provably a variable's storage (possibly updated in
    place by ApplyGradient), the variable is arena-allocated from the
    start and no tracing is needed for it.
    """
    seen = set()
    current = node
    while current.name not in seen:
        seen.add(current.name)
        if current.op_type == "Variable":
            return current
        if current.op_type == "ApplyGradient":
            current = graph.node(current.attrs["variable"])
        elif current.op_type == "Identity" and current.inputs:
            current = current.inputs[0].node
        else:
            return None
    return None


class RdmaGraphAnalyzer:
    """Produces a :class:`DevicePlan` per partition of a session."""

    def __init__(self, partitioned: PartitionedGraph,
                 dynamic_headroom: int = 0,
                 force_dynamic: bool = False) -> None:
        self.partitioned = partitioned
        #: extra arena bytes on top of the per-edge estimates
        self.dynamic_headroom = dynamic_headroom
        #: treat every edge as dynamic — used by GPUDirect (§3.5 always
        #: transfers via the dynamic protocol) and by ablations
        self.force_dynamic = force_dynamic

    def plan(self) -> Dict[str, DevicePlan]:
        plans: Dict[str, DevicePlan] = {}
        for device in self.partitioned.devices:
            plans[device] = self._plan_device(device)
        return plans

    def _plan_device(self, device: str) -> DevicePlan:
        graph = self.partitioned.subgraphs[device]
        edges_in = self.partitioned.transfers_into(device)
        edges_out = self.partitioned.transfers_out_of(device)

        size = FIXED_SLACK
        edge_plans: List[EdgePlan] = []
        any_dynamic_in = False
        for edge in edges_in:
            if edge.static_shape and not self.force_dynamic:
                size += _aligned(edge.nbytes_static + 1)
                edge_plans.append(EdgePlan(edge=edge, static=True))
            else:
                recv = graph.node(edge.recv_node)
                ndims = recv.attrs["shape"].rank
                size += _aligned(TensorMeta.slot_size(ndims))
                size += DYNAMIC_CHURN * _aligned(
                    _estimate_dynamic_nbytes(edge, graph))
                edge_plans.append(EdgePlan(edge=edge, static=False,
                                           ndims=ndims))
                any_dynamic_in = True
        # Sender side: room for traced tensors plus an equal-size
        # staging reserve (iteration one stages everything).
        out_bytes = 0
        for edge in edges_out:
            if edge.nbytes_static is not None:
                out_bytes += _aligned(edge.nbytes_static + 1)
            else:
                out_bytes += _aligned(
                    _estimate_dynamic_nbytes(
                        edge, self.partitioned.subgraphs[edge.dst_device]))
        size += 2 * out_bytes
        if any_dynamic_in or any(e.nbytes_static is None for e in edges_out):
            size += self.dynamic_headroom

        plan = DevicePlan(device=device, arena_size=size,
                          edges_in=edge_plans, edges_out=list(edges_out))
        # Static sender-side placement: variables that feed sends.
        for edge in edges_out:
            src = graph.node(edge.src_node)
            variable = find_static_source(graph, src)
            if variable is not None:
                plan.static_variable_sites.add((variable.name, 0))
        return plan
