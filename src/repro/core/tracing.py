"""Dynamic allocation-site tracing (paper §3.4, "decide tensor
allocation site").

During the first mini-batch iteration the tracer observes every tensor
allocation, recording ``buffer address -> (graph node, allocation
index)`` — newest record wins, because in-place operators pass one
buffer through several nodes and only the *latest allocator* of an
address is the true allocation site.  Whenever a tensor is handed to a
cross-server transfer, the tracer looks its address up in that map and
adds the allocation site to the set **S**.  From the second iteration
on, allocations whose site is in S are served from the RDMA arena, so
to-be-transferred tensors are born RDMA-accessible and the sender-side
copy disappears.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..graph.allocator import ArenaAllocator, BaseAllocator
from ..graph.executor import Executor
from ..graph.tensor import Tensor


Site = Tuple[str, int]  # (node name, allocation index within the node)


class AllocationSiteTracer:
    """Per-executor tracer implementing the two-phase scheme of §3.4."""

    def __init__(self, executor: Executor) -> None:
        self.executor = executor
        #: address -> allocation site, refreshed on every allocation
        self.address_map: Dict[int, Site] = {}
        #: the set S: sites whose tensors get transferred
        self.hot_sites: Set[Site] = set()
        #: sites the static analyzer decided on (variables feeding sends)
        self.static_sites: Set[Site] = set()
        self.lookups_missed = 0
        self._install()

    def _install(self) -> None:
        self.executor.heap.add_observer(self._on_allocation)
        if self.executor.arena is not None:
            self.executor.arena.add_observer(self._on_allocation)
        self.executor.allocation_policy = self._policy

    def observe_arena(self, arena: ArenaAllocator) -> None:
        """Attach to an arena installed after the tracer was created."""
        arena.add_observer(self._on_allocation)

    # -- observation ---------------------------------------------------------------------

    def _on_allocation(self, tensor: Tensor, node_name: Optional[str],
                       alloc_index: int) -> None:
        if node_name is None:
            return
        # Latest writer wins: re-allocated addresses are re-attributed.
        self.address_map[tensor.addr] = (node_name, alloc_index)

    def on_send(self, tensor: Tensor) -> None:
        """Called by the transfer mechanism for every outgoing tensor."""
        site = self.address_map.get(tensor.addr)
        if site is None:
            self.lookups_missed += 1
            return
        self.hot_sites.add(site)

    # -- the allocation policy -------------------------------------------------------------

    def _policy(self, node_name: str, alloc_index: int) -> Optional[BaseAllocator]:
        site = (node_name, alloc_index)
        if site in self.static_sites or site in self.hot_sites:
            return self.executor.arena
        return None
