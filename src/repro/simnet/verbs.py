"""Verb-layer datatypes: work requests and completions.

Mirrors the libibverbs surface that the paper's C++ library is built
on: applications post :class:`WorkRequest` objects to queue pairs and
harvest :class:`Completion` entries from completion queues.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional


class Opcode(enum.Enum):
    """RDMA operation types we model (reliable connected transport)."""

    WRITE = "RDMA_WRITE"    # one-sided, no remote CPU
    READ = "RDMA_READ"      # one-sided, no remote CPU
    SEND = "SEND"           # two-sided, consumes a posted RECV
    RECV = "RECV"


class WcStatus(enum.Enum):
    """Completion status codes (subset of ibv_wc_status)."""

    SUCCESS = "IBV_WC_SUCCESS"
    REMOTE_ACCESS_ERROR = "IBV_WC_REM_ACCESS_ERR"
    LOCAL_LENGTH_ERROR = "IBV_WC_LOC_LEN_ERR"
    REMOTE_INVALID_REQUEST = "IBV_WC_REM_INV_REQ_ERR"
    #: transport retry counter exhausted — the fabric lost the packet(s)
    #: (injected wire loss surfaces as this status)
    RETRY_EXC_ERR = "IBV_WC_RETRY_EXC_ERR"
    #: the QP entered the error state; posted work is flushed unexecuted
    WR_FLUSH_ERR = "IBV_WC_WR_FLUSH_ERR"


_wr_ids = itertools.count(1)


def next_wr_id() -> int:
    return next(_wr_ids)


#: canonical protocol-role tags carried on :attr:`WorkRequest.role`.
#: Training-plane roles (PRs 1-4) plus the serving-plane roles: the
#: request path ("serving-request" metadata write + payload read and
#: the "serving-response" write-back) runs at :data:`SERVING_PRIORITY`
#: so the wire scheduler keeps inference tails bounded, weight
#: publication ("weight-publish" bulk, "weight-stamp" version stamps,
#: "weight-ack" swap acknowledgements) runs between the request path
#: and bulk training traffic ("train-sync").
ROLE_STATIC_WRITE = "static-write"
ROLE_DYNAMIC_METADATA = "dynamic-metadata"
ROLE_DYNAMIC_PAYLOAD_READ = "dynamic-payload-read"
ROLE_COLLECTIVE_CHUNK = "collective-chunk"
ROLE_CONTROL = "control"
ROLE_SERVING_REQUEST = "serving-request"
ROLE_SERVING_RESPONSE = "serving-response"
ROLE_WEIGHT_PUBLISH = "weight-publish"
ROLE_WEIGHT_STAMP = "weight-stamp"
ROLE_WEIGHT_ACK = "weight-ack"
ROLE_TRAIN_SYNC = "train-sync"
#: in-network reduction: worker -> ToR gradient-chunk contributions …
ROLE_INNETWORK_AGGREGATE = "in-network-aggregate"
#: … and the switch-multicast reduced result back down to the workers
ROLE_INNETWORK_RESULT = "in-network-result"
#: switch-to-switch hops of an in-network reduction (ToR partials up to
#: the spine, spine results back down) — kept distinct from the
#: host-edge roles so per-worker wire-byte identities stay clean
ROLE_INNETWORK_TRUNK = "in-network-trunk"
#: selective-repeat retransmission of a chunk the lossy fabric dropped.
#: Every first attempt keeps its original protocol role (so goodput
#: identities are unchanged by loss); every re-issue carries this role,
#: which makes "retransmitted bytes == lost bytes" directly measurable
#: from the metrics stream.
ROLE_RETRANSMIT = "retransmit"

#: wire-scheduler urgency tiers for co-located serving + training.
#: Gradient buckets use small non-negative priorities (bucket index),
#: so the serving tiers sit far above them.
SERVING_PRIORITY = 100
PUBLICATION_PRIORITY = 50
TRAIN_SYNC_PRIORITY = 0


@dataclass
class WorkRequest:
    """One unit of work posted to a queue pair.

    For WRITE/READ/SEND the local side is ``(local_addr, size)`` inside
    a registered region identified by ``lkey``.  For WRITE/READ the
    remote side is ``(remote_addr, rkey)``.  ``inline_data`` (small
    payloads only) bypasses the local-region read, mirroring
    IBV_SEND_INLINE.
    """

    opcode: Opcode
    size: int = 0
    local_addr: int = 0
    lkey: int = 0
    remote_addr: int = 0
    rkey: int = 0
    inline_data: Optional[bytes] = None
    signaled: bool = True
    #: protocol role the transfer plays ("static-write",
    #: "dynamic-metadata", "dynamic-payload-read", "collective-chunk",
    #: "control", "serving-request", "serving-response",
    #: "weight-publish", "weight-stamp", "weight-ack", "train-sync",
    #: ...); carried through to metrics and trace spans
    role: str = ""
    #: wire-scheduling urgency (higher = sooner-needed by its consumer);
    #: only honoured when the NIC runs the priority quantum scheduler
    #: (``CostModel.wire_quantum_bytes > 0``), ignored otherwise
    priority: int = 0
    #: DCT-style per-WR destination: on a shared (DC initiator) queue
    #: pair the remote endpoint is named per work request instead of
    #: being fixed at connect time.  ``None`` on RC QPs — the connected
    #: remote applies — which keeps the RC path bit-identical.
    dct_target: Optional[object] = None
    wr_id: int = field(default_factory=next_wr_id)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("work request size must be non-negative")
        if self.inline_data is not None:
            self.size = len(self.inline_data)


@dataclass
class Completion:
    """A completion-queue entry (ibv_wc)."""

    wr_id: int
    opcode: Opcode
    status: WcStatus
    byte_len: int
    qp_num: int
    timestamp: float

    @property
    def ok(self) -> bool:
        return self.status is WcStatus.SUCCESS
