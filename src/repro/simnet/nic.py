"""The simulated RDMA NIC: queue pairs, completion queues, DMA engine.

Timing model
------------
Each NIC port has two :class:`Pipe` objects (egress and ingress), each
a FIFO bandwidth reservation: a transfer of ``S`` bytes occupies the
pipe for ``S / bandwidth`` seconds starting no earlier than the pipe's
previous reservation ends.  A cross-host transfer reserves the sender's
egress and the receiver's ingress with cut-through overlap, so an
uncontended transfer costs one serialization delay while fan-in to a
hot receiver (the parameter-server pattern) queues on its ingress.

When ``CostModel.wire_quantum_bytes > 0`` each direction instead runs a
:class:`WireScheduler` — a preemptive priority quantum server in which
large transfers are sliced into quantum bookings so a high-priority
small transfer can interleave mid-flight; an uncontended transfer still
costs exactly the legacy ``verb + latency + size/bandwidth`` time.

Semantics model
---------------
One-sided WRITEs commit into the destination address space in
**ascending address order**, in several chunks spread across the
transfer window — exactly the property the paper's flag-byte completion
protocol relies on (§3.2).  A concurrent reader observes a committed
prefix.  READs pull remote memory with an extra request leg.  SENDs
require a posted RECV on the destination queue pair and consume it in
FIFO order.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right
from collections import deque
from heapq import heappop, heappush
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .costmodel import CostModel
from .faults import FaultVerdict
from .memory import Backing, DenseBacking, MemoryRegion, MrTable, MemoryError_
from .simulator import Event, Simulator
from .verbs import Completion, Opcode, WcStatus, WorkRequest


#: Maximum number of commit chunks per WRITE/READ; bounds event count so
#: large simulated transfers stay cheap to simulate.
MAX_COMMIT_CHUNKS = 4
#: Writes at or below this size commit in a single chunk.
SINGLE_CHUNK_LIMIT = 4096


class Pipe:
    """One direction of a NIC port: bandwidth reservation with backfill.

    A transfer of ``S`` bytes books ``S / bandwidth`` seconds of pipe
    time starting no earlier than its data is available.  Bookings may
    fill idle gaps left by transfers whose data arrives later, so a
    backed-up flow does not head-of-line-block unrelated traffic (the
    wire interleaves packets); ordering guarantees within one QP are
    enforced by the QP itself, not the pipe.
    """

    def __init__(self, bandwidth: float) -> None:
        self.bandwidth = bandwidth
        self.bytes_carried = 0
        #: sorted, disjoint busy intervals
        self._busy: List[List[float]] = []

    @property
    def available_at(self) -> float:
        """Time at which all booked work is done."""
        return self._busy[-1][1] if self._busy else 0.0

    def _book(self, earliest: float, duration: float) -> Tuple[float, float]:
        """Find the first gap of ``duration`` starting >= ``earliest``."""
        if duration <= 0:
            return earliest, earliest
        cursor = earliest
        # Skip every interval that ends at or before the cursor in one
        # bisect instead of a linear scan from index 0: the intervals
        # are sorted and disjoint, so once the walk below advances the
        # cursor past an interval's end, no later interval can satisfy
        # ``busy_end <= cursor`` again.
        index = bisect_right(self._busy, cursor, key=lambda iv: iv[1])
        while index < len(self._busy):
            busy_start, busy_end = self._busy[index]
            if busy_start >= cursor + duration:
                break  # the gap before this interval fits
            cursor = max(cursor, busy_end)
            index += 1
        slot = (cursor, cursor + duration)
        interval = [slot[0], slot[1]]
        self._busy.insert(index, interval)
        # Coalesce with neighbours to keep the list short.
        if index + 1 < len(self._busy) and \
                self._busy[index + 1][0] <= interval[1]:
            interval[1] = max(interval[1], self._busy[index + 1][1])
            self._busy.pop(index + 1)
        if index > 0 and self._busy[index - 1][1] >= interval[0]:
            self._busy[index - 1][1] = max(self._busy[index - 1][1],
                                           interval[1])
            self._busy.pop(index)
        return slot

    def reserve(self, earliest: float, size: int) -> Tuple[float, float]:
        """Reserve ``size`` bytes; returns (start, end) times."""
        duration = size / self.bandwidth
        start, end = self._book(earliest, duration)
        self.bytes_carried += size
        return start, end

    def reserve_after(self, earliest: float, size: int, data_ready: float) -> float:
        """Reserve capacity that cannot finish before ``data_ready``.

        Used for the receiving pipe of a cut-through transfer: the pipe
        spends ``size / bandwidth`` of its own capacity starting when
        the first bit can arrive, but the last byte cannot land before
        it was sent.
        """
        _start, end = self.reserve(earliest, size)
        return max(end, data_ready)


class WireBooking:
    """One transfer's claim on a :class:`WireScheduler` direction.

    ``first_start``/``end`` are filled in as the scheduler serves the
    booking; ``on_start`` fires when the first quantum begins (used to
    release the cut-through ingress half), ``on_complete`` when the
    last quantum ends.  ``_done_callbacks`` implement ``after``
    chaining: a booking gated on this one is enqueued the moment this
    one finishes.
    """

    __slots__ = ("size", "priority", "data_ready", "quantum", "remaining",
                 "first_start", "end", "on_start", "on_complete", "done",
                 "_done_callbacks", "_after", "seq")

    def __init__(self, size: int, priority: int, data_ready: Optional[float],
                 quantum: int, seq: int) -> None:
        self.size = size
        self.priority = priority
        self.data_ready = data_ready
        self.quantum = quantum
        self.remaining = size
        self.first_start: Optional[float] = None
        self.end: Optional[float] = None
        self.on_start: Optional[Callable[[], None]] = None
        self.on_complete: Optional[Callable[[], None]] = None
        self.done = False
        self._done_callbacks: List[Callable[[], None]] = []
        self._after: Optional["WireBooking"] = None
        self.seq = seq


class WireScheduler:
    """Preemptive priority quantum server for one NIC port direction.

    The classic :class:`Pipe` books every transfer as one contiguous
    interval, so a 32MB fusion buffer head-of-line-blocks each small,
    urgently-needed tensor posted behind it.  Here the wire serves one
    *quantum* at a time, always picking the highest-priority runnable
    booking, so a high-priority transfer interleaves at the next
    quantum boundary instead of waiting out the whole booking.  Large
    transfers use ``max(quantum_bytes, size / max_quanta)`` per quantum
    so the event count per transfer stays bounded.

    Per-QP FIFO is not the scheduler's job: the NIC chains each QP's
    bookings with ``after`` so one QP's verbs start (and therefore
    finish) in post order no matter how the wire interleaves quanta.
    """

    def __init__(self, sim: Simulator, bandwidth: float, quantum_bytes: int,
                 max_quanta: int = 8) -> None:
        self.sim = sim
        self.bandwidth = bandwidth
        self.quantum_bytes = max(int(quantum_bytes), 1)
        self.max_quanta = max(int(max_quanta), 1)
        self.bytes_carried = 0
        #: runnable bookings, highest priority first (FIFO within a tie)
        self._heap: List[Tuple[int, int, WireBooking]] = []
        #: the wire is committed to the current quantum until this time
        self._busy_until = 0.0
        self._seq = itertools.count()

    # -- booking lifecycle -------------------------------------------------------

    def submit(self, size: int, priority: int = 0, data_ready: float = 0.0,
               after: Optional[WireBooking] = None) -> WireBooking:
        """Book ``size`` bytes, runnable once ``data_ready`` passes and
        ``after`` (if given) has finished."""
        booking = self._make(size, priority, data_ready)
        self._gate(booking, after)
        return booking

    def hold(self, size: int, priority: int = 0,
             after: Optional[WireBooking] = None) -> WireBooking:
        """Create a booking that is not yet runnable (see :meth:`release`).

        Used for the ingress half of a cut-through transfer: the booking
        must exist at post time so the QP can chain ordering through it,
        but it only becomes runnable once the sender's egress starts and
        the first bit's arrival time is known.
        """
        booking = self._make(size, priority, None)
        booking._after = after
        return booking

    def release(self, booking: WireBooking, data_ready: float) -> None:
        """Make a held booking runnable from ``data_ready`` onwards."""
        booking.data_ready = data_ready
        self._gate(booking, booking._after)

    def _make(self, size: int, priority: int,
              data_ready: Optional[float]) -> WireBooking:
        quantum = max(self.quantum_bytes, -(-size // self.max_quanta))
        booking = WireBooking(size, priority, data_ready, quantum,
                              next(self._seq))
        self.bytes_carried += size
        return booking

    def _gate(self, booking: WireBooking,
              after: Optional[WireBooking]) -> None:
        if after is None or after.done:
            self._enqueue(booking)
        else:
            after._done_callbacks.append(lambda: self._enqueue(booking))

    def _enqueue(self, booking: WireBooking) -> None:
        heappush(self._heap, (-booking.priority, booking.seq, booking))
        self._schedule_decision()

    # -- the serving loop --------------------------------------------------------

    def _schedule_decision(self) -> None:
        if not self._heap:
            return
        when = max(self.sim.now, self._busy_until)
        if not any(b.data_ready <= when for _, _, b in self._heap):
            when = min(b.data_ready for _, _, b in self._heap)
        self.sim.call_at(when, self._decide)

    def _decide(self) -> None:
        """Serve one quantum of the best runnable booking.

        The simulator cannot cancel scheduled events, so stale
        ``_decide`` callbacks are expected; the guard makes them
        harmless no-ops.
        """
        now = self.sim.now
        if now < self._busy_until or not self._heap:
            return
        deferred = []
        chosen: Optional[WireBooking] = None
        while self._heap:
            entry = heappop(self._heap)
            if entry[2].data_ready <= now:
                chosen = entry[2]
                break
            deferred.append(entry)
        for entry in deferred:
            heappush(self._heap, entry)
        if chosen is None:
            self._schedule_decision()
            return
        if chosen.first_start is None:
            chosen.first_start = now
            if chosen.on_start is not None:
                chosen.on_start()
        take = min(chosen.quantum, chosen.remaining)
        chosen.remaining -= take
        end = now + take / self.bandwidth
        self._busy_until = end
        self.sim.call_at(end, lambda: self._finish_quantum(chosen))

    def _finish_quantum(self, booking: WireBooking) -> None:
        if booking.remaining > 0:
            # Preemption point: the booking re-competes on priority.
            heappush(self._heap, (-booking.priority, booking.seq, booking))
        else:
            booking.end = self.sim.now
            booking.done = True
            if booking.on_complete is not None:
                booking.on_complete()
            callbacks, booking._done_callbacks = booking._done_callbacks, []
            for callback in callbacks:
                callback()
        self._schedule_decision()


class CompletionQueue:
    """A completion queue: poll for entries or register a waiter."""

    _ids = itertools.count(1)

    def __init__(self, sim: Simulator, capacity: int = 4096) -> None:
        self.sim = sim
        self.cq_id = next(self._ids)
        self.capacity = capacity
        self._entries: Deque[Completion] = deque()
        self._waiters: List[Event] = []

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, completion: Completion) -> None:
        if len(self._entries) >= self.capacity:
            raise MemoryError_(f"CQ {self.cq_id} overflow (capacity {self.capacity})")
        self._entries.append(completion)
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.succeed()

    def poll(self, max_entries: int = 16) -> List[Completion]:
        """Drain up to ``max_entries`` completions (non-blocking)."""
        out: List[Completion] = []
        while self._entries and len(out) < max_entries:
            out.append(self._entries.popleft())
        return out

    def wait(self) -> Event:
        """Event that fires when the CQ is (or becomes) non-empty."""
        event = self.sim.event()
        if self._entries:
            event.succeed()
        else:
            self._waiters.append(event)
        return event


class QueuePair:
    """A reliable-connected queue pair bound to send and receive CQs."""

    _qp_nums = itertools.count(100)

    def __init__(self, nic: "RdmaNic", send_cq: CompletionQueue,
                 recv_cq: CompletionQueue) -> None:
        self.nic = nic
        self.qp_num = next(self._qp_nums)
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.remote: Optional["QueuePair"] = None
        #: error state (set by an injected qp_break): posted verbs are
        #: flushed with WR_FLUSH_ERR until the channel re-establishes
        self.broken = False
        self._recv_queue: Deque[WorkRequest] = deque()
        self._pending_sends: Deque = deque()
        #: per-QP FIFO guarantees (verbs on one QP execute in order)
        self._egress_free = 0.0
        self._last_arrival = 0.0
        #: tail of this QP's booking chains when the NIC runs the
        #: priority wire scheduler (the quantum server interleaves
        #: transfers, so FIFO must be enforced by chaining here)
        self._egress_chain: Optional[WireBooking] = None
        self._ingress_chain: Optional[WireBooking] = None

    # -- connection management ---------------------------------------------------

    def connect(self, remote: "QueuePair") -> None:
        """Pair this QP with its remote counterpart (both directions)."""
        if self.remote is not None or remote.remote is not None:
            raise MemoryError_("queue pair already connected")
        self.remote = remote
        remote.remote = self

    def _require_remote(self, wr: Optional[WorkRequest] = None) -> "QueuePair":
        """Destination endpoint for one verb.

        RC QPs always use the connected remote; a per-WR ``dct_target``
        (shared/DCT endpoints) overrides it.  On the RC path the target
        is ``None`` so resolution is the same attribute read as before.
        """
        if wr is not None and wr.dct_target is not None:
            return wr.dct_target
        if self.remote is None:
            raise MemoryError_(f"QP {self.qp_num} is not connected")
        return self.remote

    def _clamp_arrival(self, remote_qp: "QueuePair", end: float) -> float:
        """Per-QP ordering: a later verb never lands before an earlier
        one.  RC QPs keep a single watermark; shared QPs override this
        with a per-destination watermark (DCT orders per target)."""
        end = max(end, self._last_arrival)
        self._last_arrival = end
        return end

    def _get_ingress_chain(self, remote_qp: "QueuePair"):
        return self._ingress_chain

    def _set_ingress_chain(self, remote_qp: "QueuePair", booking) -> None:
        self._ingress_chain = booking

    # -- posting -----------------------------------------------------------------

    def post_recv(self, wr: WorkRequest) -> None:
        """Post a receive buffer for an incoming SEND."""
        if wr.opcode is not Opcode.RECV:
            raise ValueError("post_recv requires a RECV work request")
        self._recv_queue.append(wr)
        if self._pending_sends:
            send_wr, data, arrival, head, tail = self._pending_sends.popleft()
            self._deliver_send(send_wr, data, max(arrival, self.nic.sim.now),
                               head, tail)

    def post_send(self, wr: WorkRequest) -> None:
        """Post a WRITE, READ, or SEND; executes asynchronously."""
        if wr.opcode is Opcode.WRITE:
            self.nic._execute_write(self, wr)
        elif wr.opcode is Opcode.READ:
            self.nic._execute_read(self, wr)
        elif wr.opcode is Opcode.SEND:
            self.nic._execute_send(self, wr)
        else:
            raise ValueError(f"cannot post {wr.opcode} to the send queue")

    # -- send/recv matching (called by the remote NIC) ----------------------------

    def _incoming_send(self, wr: WorkRequest, data: bytes, arrival: float,
                       head: bytes = b"", tail: bytes = b"") -> None:
        if self._recv_queue:
            self._deliver_send(wr, data, arrival, head, tail)
        else:
            # Receiver-not-ready: the message waits for a posted RECV,
            # modelling RNR retries without failing the connection.
            self._pending_sends.append((wr, data, arrival, head, tail))

    def _deliver_send(self, send_wr: WorkRequest, data: bytes, arrival: float,
                      head: bytes = b"", tail: bytes = b"") -> None:
        recv_wr = self._recv_queue.popleft()
        sim = self.nic.sim
        if len(data) > 0 and recv_wr.size < len(data):
            def fail() -> None:
                self.recv_cq.push(Completion(
                    wr_id=recv_wr.wr_id, opcode=Opcode.RECV,
                    status=WcStatus.LOCAL_LENGTH_ERROR, byte_len=len(data),
                    qp_num=self.qp_num, timestamp=sim.now))
            sim.call_at(arrival, fail)
            return
        size = len(data) if data else send_wr.size

        def commit() -> None:
            space = self.nic.host.address_space
            if data:
                space.write(recv_wr.local_addr, data)
            else:
                buf, off = space.resolve(recv_wr.local_addr, max(size, 1))
                buf.backing.write_virtual(off, size)
                # Virtual payload: the real head/tail windows still land,
                # carrying protocol headers and flags.
                if head:
                    buf.backing.write(off, head)
                if tail:
                    buf.backing.write(off + size - len(tail), tail)
            self.recv_cq.push(Completion(
                wr_id=recv_wr.wr_id, opcode=Opcode.RECV,
                status=WcStatus.SUCCESS, byte_len=size,
                qp_num=self.qp_num, timestamp=sim.now))
        sim.call_at(arrival, commit)


class SharedQp(QueuePair):
    """A DCT-style shared connection endpoint (dynamically connected
    transport): one QP object serves *every* peer, so a NIC talking to
    N hosts needs O(1) QP state instead of O(N) RC connections.

    Semantics mirror Mellanox DC transport:

    * the destination is named per work request (``wr.dct_target``),
      not fixed at connect time — :meth:`connect` is a hard error;
    * the send queue is one FIFO shared across all peers, so a verb to
      a slow peer head-of-line blocks later verbs to other peers
      (``_egress_free`` / ``_egress_chain`` stay shared — the DCT
      scalability trade the loss-recovery paper calls out);
    * delivery ordering is only guaranteed *per target*: the arrival
      watermark and priority-mode ingress chains are keyed by the
      destination endpoint, matching what per-peer RC QPs enforce;
    * on the receive side the shared QP behaves as an SRQ: every
      peer's SENDs consume from the one ``_recv_queue`` in FIFO order;
    * an injected ``qp_break`` has a wider blast radius than RC: the
      one endpoint carries every peer's traffic, so all of it flushes
      until the channel layer clears the error state.
    """

    def __init__(self, nic: "RdmaNic", send_cq: CompletionQueue,
                 recv_cq: CompletionQueue) -> None:
        super().__init__(nic, send_cq, recv_cq)
        self._arrival_by_target: Dict[int, float] = {}
        self._ingress_chain_by_target: Dict[int, Optional[WireBooking]] = {}

    def connect(self, remote: "QueuePair") -> None:
        raise MemoryError_(
            f"shared QP {self.qp_num} is connectionless; name the "
            f"destination per work request via dct_target")

    def _require_remote(self, wr: Optional[WorkRequest] = None) -> QueuePair:
        if wr is None or wr.dct_target is None:
            raise MemoryError_(
                f"shared QP {self.qp_num} needs wr.dct_target")
        return wr.dct_target

    def _clamp_arrival(self, remote_qp: QueuePair, end: float) -> float:
        key = remote_qp.qp_num
        end = max(end, self._arrival_by_target.get(key, 0.0))
        self._arrival_by_target[key] = end
        return end

    def _get_ingress_chain(self, remote_qp: QueuePair):
        return self._ingress_chain_by_target.get(remote_qp.qp_num)

    def _set_ingress_chain(self, remote_qp: QueuePair, booking) -> None:
        self._ingress_chain_by_target[remote_qp.qp_num] = booking


class RdmaNic:
    """A host's RDMA NIC: MR table, CQs, QPs, and the DMA/wire engine."""

    def __init__(self, sim: Simulator, host: "Host", cost: CostModel) -> None:
        self.sim = sim
        self.host = host
        self.cost = cost
        self.mr_table = MrTable(cost.mr_table_capacity)
        self.egress = Pipe(cost.rdma_bandwidth)
        self.ingress = Pipe(cost.rdma_bandwidth)
        # Priority mode: each direction becomes a preemptive quantum
        # server instead of a contiguous-booking pipe.
        if cost.wire_quantum_bytes > 0:
            self.egress_sched: Optional[WireScheduler] = WireScheduler(
                sim, cost.rdma_bandwidth, cost.wire_quantum_bytes,
                cost.wire_max_quanta)
            self.ingress_sched: Optional[WireScheduler] = WireScheduler(
                sim, cost.rdma_bandwidth, cost.wire_quantum_bytes,
                cost.wire_max_quanta)
        else:
            self.egress_sched = None
            self.ingress_sched = None
        self.registration_time_spent = 0.0
        #: QP objects this NIC has created — the O(1)-vs-O(N) state
        #: footprint that shared (DCT) endpoints exist to collapse
        self.qps_created = 0

    # -- memory registration -------------------------------------------------------

    def register_memory(self, buf) -> MemoryRegion:
        """Register a buffer with the NIC (charged via ``register_delay``)."""
        region = self.mr_table.register(buf)
        self.registration_time_spent += self.cost.mr_register_time(buf.size)
        return region

    def register_delay(self, size: int) -> float:
        """Simulated duration of registering ``size`` bytes."""
        return self.cost.mr_register_time(size)

    def deregister_memory(self, region: MemoryRegion) -> None:
        self.mr_table.deregister(region)

    def create_cq(self, capacity: int = 4096) -> CompletionQueue:
        return CompletionQueue(self.sim, capacity)

    def create_qp(self, send_cq: CompletionQueue,
                  recv_cq: Optional[CompletionQueue] = None) -> QueuePair:
        self.qps_created += 1
        return QueuePair(self, send_cq, recv_cq or send_cq)

    def create_shared_qp(self, send_cq: CompletionQueue,
                         recv_cq: Optional[CompletionQueue] = None
                         ) -> SharedQp:
        """Create a DCT-style shared endpoint (see :class:`SharedQp`)."""
        self.qps_created += 1
        return SharedQp(self, send_cq, recv_cq or send_cq)

    # -- internal verb execution ---------------------------------------------------

    #: bytes at each end of a virtual transfer that still move for real,
    #: so flag bytes (tail) and metadata headers (head) are preserved.
    EDGE_WINDOW = 64

    def _local_payload(self, wr: WorkRequest) -> Tuple[Optional[bytes], bytes, bytes]:
        """Fetch outgoing bytes as (full_payload, head_window, tail_window).

        ``full_payload`` is None for virtual sources, in which case only
        the head/tail windows carry real content.
        """
        if wr.inline_data is not None:
            return bytes(wr.inline_data), b"", b""
        region = self.mr_table.lookup(wr.lkey, wr.local_addr, wr.size)
        buf = region.buffer
        offset = wr.local_addr - buf.addr
        if isinstance(buf.backing, DenseBacking):
            return buf.backing.read(offset, wr.size), b"", b""
        # Virtual source: move timing, not bytes — except the edges.
        win = min(self.EDGE_WINDOW, wr.size)
        head = buf.backing.read(offset, win)
        tail = buf.backing.read(offset + wr.size - win, win) if wr.size > win else b""
        return None, head, tail

    @staticmethod
    def _edge_payload(backing: Backing, offset: int, size: int) -> Tuple[Optional[bytes], bytes, bytes]:
        """Like :meth:`_local_payload` but for an already-resolved buffer."""
        if isinstance(backing, DenseBacking):
            return backing.read(offset, size), b"", b""
        win = min(RdmaNic.EDGE_WINDOW, size)
        head = backing.read(offset, win)
        tail = backing.read(offset + size - win, win) if size > win else b""
        return None, head, tail

    def _fail(self, qp: QueuePair, wr: WorkRequest, status: WcStatus) -> None:
        comp = Completion(wr_id=wr.wr_id, opcode=wr.opcode, status=status,
                          byte_len=0, qp_num=qp.qp_num, timestamp=self.sim.now)
        self.sim.call_after(self.cost.rdma_verb_overhead, lambda: qp.send_cq.push(comp))

    def _fault_gate(self, qp: QueuePair,
                    wr: WorkRequest) -> Tuple[bool, Optional[FaultVerdict]]:
        """Broken-QP flush + fault-plane consult for one posted verb.

        Returns ``(proceed, verdict)``.  With no fault plane installed
        this is two attribute checks and schedules nothing, so clean
        runs keep bit-identical timing.
        """
        target = wr.dct_target if wr.dct_target is not None else qp.remote
        if qp.broken or (target is not None and target.broken):
            self._fail(qp, wr, WcStatus.WR_FLUSH_ERR)
            return False, None
        plane = self.host.cluster.fault_plane
        if plane is None:
            return True, None
        verdict = plane.on_post(
            self, qp, wr,
            dst=target.nic.host.name if target is not None else None)
        if verdict is None:
            return True, None
        if verdict.kind == "blackhole":
            # Lost in the fabric: no wire time, no commit, no CQE —
            # only the recovery layer's timeout can notice.
            return False, None
        if verdict.fail_fast:
            self._fail(qp, wr, verdict.status)
            return False, None
        if verdict.break_qp:
            qp.broken = True
            if target is not None:
                target.broken = True
        return True, verdict

    def _faulted_commit(self, verdict: Optional[FaultVerdict],
                        backing: Backing, offset: int, size: int,
                        payload: Optional[bytes], start: float, end: float,
                        head: bytes, tail: bytes, wake_host) -> None:
        """Ascending commit honouring a fault verdict's committed prefix.

        A torn write commits a strict prefix — never the tail window
        where the protocols keep their flag byte — and wakes nobody.
        """
        commit = size if verdict is None else verdict.commit_size(size)
        if commit <= 0:
            return
        if commit < size:
            payload = payload[:commit] if payload is not None else None
            head = head[:commit]
            tail = b""
            wake_host = None
        self._schedule_ascending_commit(backing, offset, commit, payload,
                                        start, end, head, tail,
                                        wake_host=wake_host)

    def _fabric_traverse(self, dst_nic: "RdmaNic", start: float,
                         egress_end: float, size: int):
        """Charge the cluster fabric (if any) for a transfer leaving this
        NIC for ``dst_nic``.  Returns the :class:`PathTiming`, or None
        when no fabric is installed or the pair has no path to charge —
        in which case the caller keeps the flat-topology timing, making
        fabric-less clusters bit-identical to pre-fabric builds."""
        fabric = self.host.cluster.fabric
        if fabric is None:
            return None
        return fabric.traverse(self.host.name, dst_nic.host.name,
                               start, egress_end, size)

    def _fabric_latency(self, dst_nic: "RdmaNic") -> float:
        """One-way first-bit latency towards ``dst_nic``: the fabric
        path's summed hop latency, or the flat model's base latency."""
        fabric = self.host.cluster.fabric
        if fabric is not None:
            latency = fabric.path_latency(self.host.name, dst_nic.host.name)
            if latency is not None:
                return latency
        return self.cost.rdma_base_latency

    def _execute_write(self, qp: QueuePair, wr: WorkRequest) -> None:
        proceed, verdict = self._fault_gate(qp, wr)
        if not proceed:
            return
        remote_qp = qp._require_remote(wr)
        remote_nic = remote_qp.nic
        try:
            payload, head, tail = self._local_payload(wr)
            remote_nic.mr_table.lookup(wr.rkey, wr.remote_addr, wr.size)
            dest_buf, dest_off = remote_nic.host.address_space.resolve(
                wr.remote_addr, max(wr.size, 1))
        except MemoryError_:
            self._fail(qp, wr, WcStatus.REMOTE_ACCESS_ERROR)
            return

        if self.egress_sched is not None and remote_nic.ingress_sched is not None:
            self._execute_write_prio(qp, wr, remote_qp, payload, head, tail,
                                     dest_buf, dest_off, verdict)
            return

        extra = verdict.delay if verdict is not None else 0.0
        depart = max(self.sim.now + self.cost.rdma_verb_overhead + extra,
                     qp._egress_free)
        start, egress_end = self.egress.reserve(depart, wr.size)
        qp._egress_free = egress_end
        path = self._fabric_traverse(remote_nic, start, egress_end, wr.size)
        if path is None:
            data_ready = start + self.cost.rdma_base_latency + wr.size / self.cost.rdma_bandwidth
            end = remote_nic.ingress.reserve_after(
                start + self.cost.rdma_base_latency, wr.size, data_ready)
        else:
            end = remote_nic.ingress.reserve_after(
                path.first_bit, wr.size, path.last_byte)
        # Per-QP ordering: a later verb never lands before an earlier one.
        end = qp._clamp_arrival(remote_qp, end)

        self._faulted_commit(verdict, dest_buf.backing, dest_off, wr.size,
                             payload, start, end, head, tail,
                             wake_host=remote_nic.host)
        self._record(Opcode.WRITE, self.host, remote_nic.host, wr.size,
                     start, end, role=wr.role)
        status = WcStatus.SUCCESS if verdict is None else verdict.status
        # Error completions are delivered even for unsignaled posts:
        # the NIC always reports failed work requests.
        if wr.signaled or status is not WcStatus.SUCCESS:
            done = end + self.cost.rdma_completion_overhead
            comp = Completion(wr_id=wr.wr_id, opcode=Opcode.WRITE,
                              status=status,
                              byte_len=wr.size if status is WcStatus.SUCCESS else 0,
                              qp_num=qp.qp_num, timestamp=done)
            self.sim.call_at(done, lambda: qp.send_cq.push(comp))
        self._trace_verb(qp, wr, end + self.cost.rdma_completion_overhead
                         if wr.signaled else end)

    def _execute_write_prio(self, qp: QueuePair, wr: WorkRequest,
                            remote_qp: QueuePair,
                            payload: Optional[bytes], head: bytes,
                            tail: bytes, dest_buf, dest_off: int,
                            verdict: Optional[FaultVerdict] = None) -> None:
        """WRITE under the priority quantum scheduler (cut-through).

        The egress booking becomes runnable once the WQE is processed;
        the ingress booking is created immediately (so the QP's FIFO
        chain covers it) but held until the egress actually starts,
        when the first bit's arrival time is known.  The transfer is
        finished when both directions have served all quanta; the last
        byte additionally cannot land before it was sent
        (``egress end + propagation``).
        """
        posted = self.sim.now
        remote_nic = remote_qp.nic
        latency = self._fabric_latency(remote_nic)
        extra = verdict.delay if verdict is not None else 0.0
        depart = posted + self.cost.rdma_verb_overhead + extra
        eb = self.egress_sched.submit(wr.size, wr.priority, data_ready=depart,
                                      after=qp._egress_chain)
        qp._egress_chain = eb
        ib = remote_nic.ingress_sched.hold(
            wr.size, wr.priority, after=qp._get_ingress_chain(remote_qp))
        qp._set_ingress_chain(remote_qp, ib)
        eb.on_start = lambda: remote_nic.ingress_sched.release(
            ib, eb.first_start + latency)

        def finish() -> None:
            if not (eb.done and ib.done):
                return
            end = max(ib.end, eb.end + latency)
            # Trunk capacity is charged once the egress booking is known;
            # uplink queueing pushes the last byte's landing time.
            path = self._fabric_traverse(remote_nic, eb.first_start, eb.end,
                                         wr.size)
            if path is not None:
                end = max(end, path.last_byte)
            self._faulted_commit(verdict, dest_buf.backing, dest_off,
                                 wr.size, payload, eb.first_start, end,
                                 head, tail, wake_host=remote_nic.host)
            self._record(Opcode.WRITE, self.host, remote_nic.host, wr.size,
                         eb.first_start, end, role=wr.role)
            status = WcStatus.SUCCESS if verdict is None else verdict.status
            completed = end
            if wr.signaled or status is not WcStatus.SUCCESS:
                completed = end + self.cost.rdma_completion_overhead
                comp = Completion(wr_id=wr.wr_id, opcode=Opcode.WRITE,
                                  status=status,
                                  byte_len=wr.size if status is WcStatus.SUCCESS else 0,
                                  qp_num=qp.qp_num, timestamp=completed)
                self.sim.call_at(completed, lambda: qp.send_cq.push(comp))
            self._trace_verb(qp, wr, completed, posted=posted)

        eb.on_complete = finish
        ib.on_complete = finish

    def _execute_read(self, qp: QueuePair, wr: WorkRequest) -> None:
        proceed, verdict = self._fault_gate(qp, wr)
        if not proceed:
            return
        remote_qp = qp._require_remote(wr)
        remote_nic = remote_qp.nic
        try:
            remote_region = remote_nic.mr_table.lookup(wr.rkey, wr.remote_addr, wr.size)
            local_region = self.mr_table.lookup(wr.lkey, wr.local_addr, wr.size)
        except MemoryError_:
            self._fail(qp, wr, WcStatus.REMOTE_ACCESS_ERROR)
            return

        src_buf = remote_region.buffer
        src_off = wr.remote_addr - src_buf.addr
        payload, head, tail = self._edge_payload(src_buf.backing, src_off, wr.size)
        dest_buf = local_region.buffer
        dest_off = wr.local_addr - dest_buf.addr

        if self.ingress_sched is not None and remote_nic.egress_sched is not None:
            self._execute_read_prio(qp, wr, remote_qp, payload, head, tail,
                                    dest_buf, dest_off, verdict)
            return

        # Request leg to the remote NIC, then data flows back.
        extra = verdict.delay if verdict is not None else 0.0
        request_arrives = (max(self.sim.now + self.cost.rdma_verb_overhead
                               + extra, qp._egress_free)
                           + self.cost.rdma_read_extra_rtt)
        start, src_egress_end = remote_nic.egress.reserve(request_arrives,
                                                          wr.size)
        path = remote_nic._fabric_traverse(self, start, src_egress_end,
                                           wr.size)
        if path is None:
            data_ready = start + self.cost.rdma_base_latency + wr.size / self.cost.rdma_bandwidth
            end = self.ingress.reserve_after(
                start + self.cost.rdma_base_latency, wr.size, data_ready)
        else:
            end = self.ingress.reserve_after(
                path.first_bit, wr.size, path.last_byte)
        end = qp._clamp_arrival(remote_qp, end)

        self._faulted_commit(verdict, dest_buf.backing, dest_off, wr.size,
                             payload, start, end, head, tail,
                             wake_host=self.host)
        self._record(Opcode.READ, remote_nic.host, self.host, wr.size,
                     start, end, role=wr.role)
        status = WcStatus.SUCCESS if verdict is None else verdict.status
        if wr.signaled or status is not WcStatus.SUCCESS:
            done = end + self.cost.rdma_completion_overhead
            comp = Completion(wr_id=wr.wr_id, opcode=Opcode.READ,
                              status=status,
                              byte_len=wr.size if status is WcStatus.SUCCESS else 0,
                              qp_num=qp.qp_num, timestamp=done)
            self.sim.call_at(done, lambda: qp.send_cq.push(comp))
        self._trace_verb(qp, wr, end + self.cost.rdma_completion_overhead
                         if wr.signaled else end)

    def _execute_read_prio(self, qp: QueuePair, wr: WorkRequest,
                           remote_qp: QueuePair, payload: Optional[bytes],
                           head: bytes, tail: bytes, dest_buf,
                           dest_off: int,
                           verdict: Optional[FaultVerdict] = None) -> None:
        """READ under the priority quantum scheduler.

        The data leg flows on the *remote* egress after the request
        leg's extra RTT; the remote egress booking is chained after this
        QP's egress chain (mirroring the legacy ``_egress_free`` gate on
        the request departure) but does not advance it — legacy READs do
        not occupy the local egress either.
        """
        posted = self.sim.now
        remote_nic = remote_qp.nic
        latency = remote_nic._fabric_latency(self)
        extra = verdict.delay if verdict is not None else 0.0
        request_arrives = (posted + self.cost.rdma_verb_overhead + extra
                           + self.cost.rdma_read_extra_rtt)
        reb = remote_nic.egress_sched.submit(wr.size, wr.priority,
                                             data_ready=request_arrives,
                                             after=qp._egress_chain)
        ib = self.ingress_sched.hold(
            wr.size, wr.priority, after=qp._get_ingress_chain(remote_qp))
        qp._set_ingress_chain(remote_qp, ib)
        reb.on_start = lambda: self.ingress_sched.release(
            ib, reb.first_start + latency)

        def finish() -> None:
            if not (reb.done and ib.done):
                return
            end = max(ib.end, reb.end + latency)
            path = remote_nic._fabric_traverse(self, reb.first_start,
                                               reb.end, wr.size)
            if path is not None:
                end = max(end, path.last_byte)
            self._faulted_commit(verdict, dest_buf.backing, dest_off,
                                 wr.size, payload, reb.first_start, end,
                                 head, tail, wake_host=self.host)
            self._record(Opcode.READ, remote_nic.host, self.host, wr.size,
                         reb.first_start, end, role=wr.role)
            status = WcStatus.SUCCESS if verdict is None else verdict.status
            completed = end
            if wr.signaled or status is not WcStatus.SUCCESS:
                completed = end + self.cost.rdma_completion_overhead
                comp = Completion(wr_id=wr.wr_id, opcode=Opcode.READ,
                                  status=status,
                                  byte_len=wr.size if status is WcStatus.SUCCESS else 0,
                                  qp_num=qp.qp_num, timestamp=completed)
                self.sim.call_at(completed, lambda: qp.send_cq.push(comp))
            self._trace_verb(qp, wr, completed, posted=posted)

        reb.on_complete = finish
        ib.on_complete = finish

    def _execute_send(self, qp: QueuePair, wr: WorkRequest) -> None:
        proceed, verdict = self._fault_gate(qp, wr)
        if not proceed:
            return
        remote_qp = qp._require_remote(wr)
        try:
            payload, head, tail = self._local_payload(wr)
        except MemoryError_:
            self._fail(qp, wr, WcStatus.REMOTE_ACCESS_ERROR)
            return
        if self.egress_sched is not None and \
                remote_qp.nic.ingress_sched is not None:
            self._execute_send_prio(qp, wr, remote_qp, payload, head, tail,
                                    verdict)
            return
        extra = verdict.delay if verdict is not None else 0.0
        depart = max(self.sim.now + self.cost.rdma_verb_overhead + extra,
                     qp._egress_free)
        start, egress_end = self.egress.reserve(depart, wr.size)
        qp._egress_free = egress_end
        path = self._fabric_traverse(remote_qp.nic, start, egress_end,
                                     wr.size)
        if path is None:
            data_ready = start + self.cost.rdma_base_latency + wr.size / self.cost.rdma_bandwidth
            arrival = remote_qp.nic.ingress.reserve_after(
                start + self.cost.rdma_base_latency, wr.size, data_ready)
        else:
            arrival = remote_qp.nic.ingress.reserve_after(
                path.first_bit, wr.size, path.last_byte)
        arrival = qp._clamp_arrival(remote_qp, arrival)

        data = payload if payload is not None else b""
        size = wr.size
        self._record(Opcode.SEND, self.host, remote_qp.nic.host, size,
                     start, arrival, role=wr.role)
        status = WcStatus.SUCCESS if verdict is None else verdict.status
        if status is WcStatus.SUCCESS:
            # A faulted SEND never reaches the remote RECV queue: the
            # message vanishes and only the error CQE reports it.
            self.sim.call_at(
                arrival,
                lambda: remote_qp._incoming_send(wr, data, arrival, head, tail))
        if wr.signaled or status is not WcStatus.SUCCESS:
            done = arrival + self.cost.rdma_completion_overhead
            comp = Completion(wr_id=wr.wr_id, opcode=Opcode.SEND,
                              status=status,
                              byte_len=size if status is WcStatus.SUCCESS else 0,
                              qp_num=qp.qp_num, timestamp=done)
            self.sim.call_at(done, lambda: qp.send_cq.push(comp))
        self._trace_verb(qp, wr, arrival + self.cost.rdma_completion_overhead
                         if wr.signaled else arrival)

    def _execute_send_prio(self, qp: QueuePair, wr: WorkRequest,
                           remote_qp: QueuePair, payload: Optional[bytes],
                           head: bytes, tail: bytes,
                           verdict: Optional[FaultVerdict] = None) -> None:
        """SEND under the priority quantum scheduler."""
        remote_nic = remote_qp.nic
        posted = self.sim.now
        latency = self._fabric_latency(remote_nic)
        extra = verdict.delay if verdict is not None else 0.0
        depart = posted + self.cost.rdma_verb_overhead + extra
        eb = self.egress_sched.submit(wr.size, wr.priority, data_ready=depart,
                                      after=qp._egress_chain)
        qp._egress_chain = eb
        ib = remote_nic.ingress_sched.hold(
            wr.size, wr.priority, after=qp._get_ingress_chain(remote_qp))
        qp._set_ingress_chain(remote_qp, ib)
        eb.on_start = lambda: remote_nic.ingress_sched.release(
            ib, eb.first_start + latency)
        data = payload if payload is not None else b""

        def finish() -> None:
            if not (eb.done and ib.done):
                return
            arrival = max(ib.end, eb.end + latency)
            path = self._fabric_traverse(remote_nic, eb.first_start, eb.end,
                                         wr.size)
            if path is not None:
                arrival = max(arrival, path.last_byte)
            self._record(Opcode.SEND, self.host, remote_nic.host, wr.size,
                         eb.first_start, arrival, role=wr.role)
            status = WcStatus.SUCCESS if verdict is None else verdict.status
            if status is WcStatus.SUCCESS:
                self.sim.call_at(
                    arrival,
                    lambda: remote_qp._incoming_send(wr, data, arrival, head, tail))
            completed = arrival
            if wr.signaled or status is not WcStatus.SUCCESS:
                completed = arrival + self.cost.rdma_completion_overhead
                comp = Completion(wr_id=wr.wr_id, opcode=Opcode.SEND,
                                  status=status,
                                  byte_len=wr.size if status is WcStatus.SUCCESS else 0,
                                  qp_num=qp.qp_num, timestamp=completed)
                self.sim.call_at(completed, lambda: qp.send_cq.push(comp))
            self._trace_verb(qp, wr, completed, posted=posted)

        eb.on_complete = finish
        ib.on_complete = finish

    def _record(self, opcode: Opcode, src_host, dst_host, size: int,
                start: float, end: float, role: str = "") -> None:
        metrics = src_host.cluster.metrics
        if metrics is not None:
            metrics.record_transfer(opcode.value, src_host.name,
                                    dst_host.name, size, start, end,
                                    role=role)
        tracer = src_host.cluster.tracer
        if tracer is not None:
            tracer.record(
                "wire", f"{opcode.value} {size}B", src_host.name, "nic:wire",
                start, end,
                args={"dst": dst_host.name, "nbytes": size, "role": role})
            tracer.metrics.histogram("transfer_size_bytes").observe(size)

    def _trace_verb(self, qp: QueuePair, wr: WorkRequest,
                    completed: float, posted: Optional[float] = None) -> None:
        """Span from verb post to completion delivery on the QP track.

        The priority paths trace from deferred callbacks, so they pass
        the post time explicitly; the legacy paths trace synchronously
        and default to ``sim.now``.
        """
        tracer = self.host.cluster.tracer
        if tracer is not None:
            tracer.record(
                "verb", f"{wr.opcode.value} {wr.size}B", self.host.name,
                f"nic:qp{qp.qp_num}",
                self.sim.now if posted is None else posted, completed,
                args={"wr_id": wr.wr_id, "nbytes": wr.size, "role": wr.role,
                      "signaled": wr.signaled})

    def _schedule_ascending_commit(self, backing: Backing, offset: int, size: int,
                                   payload: Optional[bytes], start: float,
                                   end: float, head: bytes = b"",
                                   tail: bytes = b"",
                                   wake_host=None) -> None:
        """Commit a transfer into ``backing`` in ascending address order.

        The range is split into chunks whose commit times are spread
        across (start, end]; the tail chunk (which carries any flag
        byte) always commits exactly at ``end``.  For virtual payloads,
        the real ``head``/``tail`` windows are applied with the first
        and last chunks so protocol headers and flag bytes land.
        ``wake_host``'s parked executors are notified when the tail
        chunk commits (the moment a spinning flag poller would see it).
        """
        if size == 0:
            return
        if size <= SINGLE_CHUNK_LIMIT:
            chunk_bounds = [(0, size)]
        else:
            n = MAX_COMMIT_CHUNKS
            step = size // n
            chunk_bounds = [(i * step, (i + 1) * step if i < n - 1 else size)
                            for i in range(n)]
        duration = max(end - start, 0.0)
        last = len(chunk_bounds) - 1
        for i, (lo, hi) in enumerate(chunk_bounds):
            frac = (i + 1) / len(chunk_bounds)
            when = max(end if i == last else start + frac * duration, self.sim.now)

            def commit(lo: int = lo, hi: int = hi, first: bool = (i == 0),
                       final: bool = (i == last)) -> None:
                if payload is not None:
                    backing.write(offset + lo, payload[lo:hi])
                else:
                    backing.write_virtual(offset + lo, hi - lo)
                    if first and head:
                        backing.write(offset, head)
                    if final and tail:
                        backing.write(offset + size - len(tail), tail)
                if final and wake_host is not None:
                    wake_host.notify_memory_commit()
            self.sim.call_at(when, commit)
