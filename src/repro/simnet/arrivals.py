"""Seeded request-arrival processes for open-loop workloads.

The serving plane drives the cluster with an *open-loop* load: request
arrival times are drawn up front from a seeded generator and do not
depend on how fast the system answers (closed-loop generators hide
queueing collapse; see the "coordinated omission" literature).  Two
arrival disciplines are modelled:

* ``poisson`` — exponential interarrival gaps at a fixed rate, the
  classic memoryless approximation of many independent clients;
* ``bursty``  — a two-phase Markov-modulated Poisson process: an ON
  phase at ``burst_factor`` times the base rate alternating with an
  OFF phase whose rate is scaled down so the long-run average still
  matches ``rate``.  This is the diurnal-peak/flash-crowd shape that
  stresses admission control and batching.

Everything is a pure function of ``(seed, rate, ...)`` via one
``random.Random``; the simulator never adds randomness of its own, so
a workload is exactly reproducible from its seed.
"""

from __future__ import annotations

import random
from typing import Iterator, List


ARRIVAL_KINDS = ("poisson", "bursty", "uniform")


def poisson_gaps(rng: random.Random, rate: float) -> Iterator[float]:
    """Exponential interarrival gaps for a ``rate``/sec Poisson process."""
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    while True:
        yield rng.expovariate(rate)


def uniform_gaps(rng: random.Random, rate: float) -> Iterator[float]:
    """Deterministic fixed-gap arrivals (a perfectly paced client)."""
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    gap = 1.0 / rate
    while True:
        yield gap


def bursty_gaps(rng: random.Random, rate: float, burst_factor: float = 4.0,
                on_fraction: float = 0.25,
                phase_time: float = 50e-3) -> Iterator[float]:
    """Markov-modulated gaps: ON bursts at ``burst_factor * rate``.

    Phases alternate ON/OFF with mean durations ``phase_time *
    on_fraction`` and ``phase_time * (1 - on_fraction)``; the OFF rate
    is solved so the long-run mean rate equals ``rate`` (and clamped to
    a tiny positive floor when the burst carries more than the whole
    budget).
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    if burst_factor < 1.0:
        raise ValueError(f"burst_factor must be >= 1, got {burst_factor}")
    if not 0.0 < on_fraction < 1.0:
        raise ValueError(f"on_fraction must be in (0, 1), got {on_fraction}")
    on_rate = rate * burst_factor
    off_rate = max(rate * (1.0 - burst_factor * on_fraction)
                   / (1.0 - on_fraction), rate * 1e-3)
    clock = 0.0
    on_phase = True
    phase_left = rng.expovariate(1.0 / (phase_time * on_fraction))
    while True:
        current = on_rate if on_phase else off_rate
        gap = rng.expovariate(current)
        # Phase switches are evaluated at arrival granularity: a gap
        # that overruns the phase boundary flips the phase for the
        # *next* draw, which keeps the process simple and still bursty.
        clock += gap
        phase_left -= gap
        if phase_left <= 0.0:
            on_phase = not on_phase
            mean = phase_time * (on_fraction if on_phase
                                 else 1.0 - on_fraction)
            phase_left = rng.expovariate(1.0 / mean)
        yield gap


def make_gaps(kind: str, rng: random.Random, rate: float,
              **kwargs) -> Iterator[float]:
    """Interarrival-gap generator for an arrival discipline by name."""
    if kind == "poisson":
        return poisson_gaps(rng, rate)
    if kind == "bursty":
        return bursty_gaps(rng, rate, **kwargs)
    if kind == "uniform":
        return uniform_gaps(rng, rate)
    raise ValueError(f"unknown arrival kind {kind!r}; have {ARRIVAL_KINDS}")


def arrival_times(kind: str, seed: int, rate: float, count: int,
                  **kwargs) -> List[float]:
    """The first ``count`` absolute arrival times of a seeded process."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = random.Random(seed)
    gaps = make_gaps(kind, rng, rate, **kwargs)
    times: List[float] = []
    clock = 0.0
    for _ in range(count):
        clock += next(gaps)
        times.append(clock)
    return times
