"""Cluster topology: hosts, their NICs and TCP stacks, a name service.

A :class:`Cluster` owns the simulator and a set of :class:`Host`
objects.  Each host has one RDMA NIC and one TCP stack sharing nothing
(the experiments never mix transports within a run).  Hosts are
addressed by ``Endpoint`` (host name + port), matching the paper's
device interface which identifies peers by IP address and port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from ..observability.tracer import Tracer
from .costmodel import CostModel, DEFAULT_COST_MODEL
from .cpu import CpuEngine
from .fabric import Fabric
from .faults import FaultInjector
from .metrics import MetricsCollector
from .memory import AddressSpace, Buffer
from .nic import RdmaNic
from .simulator import Simulator
from .tcp import TcpStack


@dataclass(frozen=True, order=True)
class Endpoint:
    """A network endpoint: host name plus port."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


class Host:
    """A simulated server: address space, RDMA NIC, TCP stack."""

    def __init__(self, cluster: "Cluster", name: str) -> None:
        self.cluster = cluster
        self.name = name
        self.sim = cluster.sim
        self.cost = cluster.cost
        self.address_space = AddressSpace(name)
        self.nic = RdmaNic(self.sim, self, self.cost)
        self.tcp = TcpStack(self.sim, self, self.cost)
        #: bounded lanes for per-byte communication CPU work (RPC
        #: serialization and copies contend here; one-sided RDMA does not)
        self.cpu = CpuEngine(self.sim, self.cost.rpc_copy_threads)
        #: callbacks fired when a one-sided transfer finishes committing
        #: into this host's memory.  Pollers (the flag-byte receivers of
        #: §3.2) park on idle backoff purely to bound simulator events; a
        #: real spinning poller would observe the flag within its poll
        #: interval, so arrival wakes them immediately.
        self.wake_listeners: List[Callable[[], None]] = []

    def notify_memory_commit(self) -> None:
        """Wake parked executors: remote data just landed in memory."""
        for listener in self.wake_listeners:
            listener()

    def allocate(self, size: int, label: str = "",
                 dense: Optional[bool] = None) -> Buffer:
        """Allocate host memory (not yet RDMA-registered)."""
        return self.address_space.allocate(size, label=label, dense=dense)

    def __repr__(self) -> str:
        return f"Host({self.name!r})"


class Cluster:
    """A set of simulated hosts sharing one event loop and cost model."""

    def __init__(self, num_hosts: int, cost: Optional[CostModel] = None,
                 name_prefix: str = "server",
                 fabric: Optional[Fabric] = None) -> None:
        if num_hosts < 1:
            raise ValueError("cluster needs at least one host")
        self.sim = Simulator()
        self.cost = cost or DEFAULT_COST_MODEL
        #: explicit fabric graph (multi-rack topologies); None keeps the
        #: flat full-bisection model where the NIC pipes are the only
        #: contention points — and keeps its timing bit-identical
        self.fabric = fabric
        if fabric is not None:
            known = set(fabric.hosts())
            missing = [f"{name_prefix}{i}" for i in range(num_hosts)
                       if f"{name_prefix}{i}" not in known]
            if missing:
                raise ValueError(
                    f"fabric is missing host nodes for {missing[:4]}"
                    + ("..." if len(missing) > 4 else ""))
        self.hosts: List[Host] = [
            Host(self, f"{name_prefix}{i}") for i in range(num_hosts)]
        self._by_name: Dict[str, Host] = {h.name: h for h in self.hosts}
        #: out-of-band service registry (endpoint -> listener object);
        #: used for connection setup, never on a measured critical path
        self.services: Dict[Endpoint, object] = {}
        #: transfer metrics, off unless :meth:`enable_metrics` is called
        self.metrics: Optional[MetricsCollector] = None
        #: span tracing, off unless :meth:`enable_tracing` is called;
        #: instrumented fast paths pay one attribute check when None
        self.tracer: Optional[Tracer] = None
        #: fault plane, off unless :meth:`install_faults` is called; the
        #: NICs consult it on every posted data verb (one None-check on
        #: the fast path, so fault-free timing stays bit-identical)
        self.fault_plane: Optional[FaultInjector] = None

    def enable_metrics(self) -> MetricsCollector:
        """Record every wire transfer (see :mod:`repro.simnet.metrics`)."""
        if self.metrics is None:
            self.metrics = MetricsCollector()
        return self.metrics

    def enable_tracing(self, budget=None, telemetry=None) -> Tracer:
        """Record timestamped spans (see :mod:`repro.observability`).

        ``budget`` (a :class:`~repro.observability.TraceBudget`) bounds
        span retention for fleet-scale runs; ``telemetry`` (a
        :class:`~repro.observability.Telemetry`) digests every span
        into fixed-memory streaming series before any sampling.
        """
        if self.tracer is None:
            self.tracer = Tracer(budget=budget, telemetry=telemetry)
        if self.fabric is not None:
            # Uplink queueing becomes link_queue spans for stall reports.
            self.fabric.tracer = self.tracer
        return self.tracer

    def install_faults(self, injector: FaultInjector) -> FaultInjector:
        """Install a fault plane (see :mod:`repro.simnet.faults`)."""
        self.fault_plane = injector
        return injector

    def __len__(self) -> int:
        return len(self.hosts)

    def __iter__(self) -> Iterator[Host]:
        return iter(self.hosts)

    def host(self, name: str) -> Host:
        """Resolve a host by name (the simulated name service)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no host named {name!r} in cluster "
                           f"({sorted(self._by_name)})")

    def resolve(self, endpoint: Endpoint) -> Host:
        return self.host(endpoint.host)
