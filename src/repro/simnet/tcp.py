"""A simulated kernel TCP stack.

Deliberately models the costs that make gRPC-over-TCP slow relative to
RDMA in the paper: user/kernel crossings on both sides, a kernel copy
of every payload byte into and out of socket buffers, per-segment
overhead, higher base latency, and a lower effective wire bandwidth.

The unit of exchange is a message (the RPC layer above does framing);
content may be real bytes or virtual (size-only) for large payloads.
Connections are exposed as a pair of :class:`Socket` endpoints, so
loopback (worker talking to the parameter-server process on the same
machine, as in the paper's deployment) works like any other pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional, TYPE_CHECKING

from .costmodel import CostModel
from .simulator import Simulator, Store

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .topology import Endpoint, Host


class TcpError(RuntimeError):
    """Connection failures (no listener, connection reset)."""


@dataclass
class TcpMessage:
    """A delivered message: real bytes, or virtual with only a size.

    ``meta`` can carry an arbitrary object alongside the accounted
    bytes; upper layers use it to attach parsed wire structures so that
    large payloads need not be physically materialized.
    """

    size: int
    data: Optional[bytes] = None
    meta: object = None

    def __post_init__(self) -> None:
        if self.data is not None and len(self.data) != self.size:
            raise ValueError("TcpMessage size does not match data length")


class Socket:
    """One endpoint of an established connection."""

    def __init__(self, stack: "TcpStack") -> None:
        self.stack = stack
        self.inbox = Store(stack.sim)
        self.peer: Optional["Socket"] = None
        self.closed = False

    @property
    def loopback(self) -> bool:
        assert self.peer is not None
        return self.peer.stack.host is self.stack.host

    def send(self, message: TcpMessage) -> Generator:
        """Process: transmit a message; returns when the kernel accepts it.

        Charges the sender-side syscall/segment/copy cost in the calling
        process, then schedules wire transit and delivery to the peer's
        inbox.  Use as ``yield from socket.send(msg)``.
        """
        if self.closed or self.peer is None:
            raise TcpError("send on closed or unconnected socket")
        sim = self.stack.sim
        cost = self.stack.cost
        # The kernel transmit path (syscalls, segmentation, socket-buffer
        # copy) is CPU work on the host's communication lanes.
        yield from self.stack.host.cpu.run(cost.tcp_send_time(message.size))
        peer = self.peer
        if self.loopback:
            # Loopback skips the wire but still crosses the kernel.
            arrival = sim.now
        else:
            start, _ = self.stack.egress.reserve(sim.now, message.size)
            data_ready = (start + cost.tcp_base_latency
                          + message.size / cost.tcp_bandwidth)
            arrival = peer.stack.ingress.reserve_after(
                start + cost.tcp_base_latency, message.size, data_ready)
        metrics = self.stack.host.cluster.metrics
        if metrics is not None:
            metrics.record_transfer("TCP", self.stack.host.name,
                                    peer.stack.host.name, message.size,
                                    sim.now, arrival)
        tracer = self.stack.host.cluster.tracer
        if tracer is not None:
            tracer.record("wire", f"TCP {message.size}B",
                          self.stack.host.name, "tcp:wire", sim.now, arrival,
                          args={"dst": peer.stack.host.name,
                                "nbytes": message.size})
            tracer.metrics.histogram("transfer_size_bytes").observe(
                message.size)
        sim.call_at(arrival, lambda: peer.inbox.put(message))

    def recv(self) -> Generator:
        """Process: receive the next message, charging the kernel read path.

        Use as ``msg = yield from socket.recv()``.
        """
        message: TcpMessage = yield self.inbox.get()
        yield from self.stack.host.cpu.run(
            self.stack.cost.tcp_recv_time(message.size))
        return message

    def pending(self) -> int:
        """Messages delivered to this endpoint but not yet read."""
        return len(self.inbox)

    def close(self) -> None:
        self.closed = True
        if self.peer is not None:
            self.peer.closed = True


class Listener:
    """A passive socket; ``accept()`` yields established endpoints."""

    def __init__(self, stack: "TcpStack", port: int) -> None:
        self.stack = stack
        self.port = port
        self._backlog: Store = Store(stack.sim)

    def accept(self):
        """Event yielding the next established server-side :class:`Socket`."""
        return self._backlog.get()


class TcpStack:
    """Per-host TCP state: listeners and the host's TCP wire pipes."""

    def __init__(self, sim: Simulator, host: "Host", cost: CostModel) -> None:
        # Local import to avoid a cycle at module load.
        from .nic import Pipe

        self.sim = sim
        self.host = host
        self.cost = cost
        self.egress = Pipe(cost.tcp_bandwidth)
        self.ingress = Pipe(cost.tcp_bandwidth)
        self._listeners: Dict[int, Listener] = {}

    def listen(self, port: int) -> Listener:
        if port in self._listeners:
            raise TcpError(f"port {port} already listening on {self.host.name}")
        listener = Listener(self, port)
        self._listeners[port] = listener
        return listener

    def connect(self, endpoint: "Endpoint") -> Socket:
        """Establish a connection to a listening remote endpoint.

        Returns the client-side socket.  The three-way handshake is off
        the critical path of every experiment, so setup is immediate.
        """
        remote = self.host.cluster.resolve(endpoint)
        listener = remote.tcp._listeners.get(endpoint.port)
        if listener is None:
            raise TcpError(f"connection refused: nothing listening on {endpoint}")
        client = Socket(self)
        server = Socket(remote.tcp)
        client.peer = server
        server.peer = client
        listener._backlog.put(server)
        return client
