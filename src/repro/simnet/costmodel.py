"""Timing constants and derived cost functions for the simulated cluster.

Every simulated duration in the reproduction is computed here, so the
calibration of the whole system lives in one file.  The constants are
chosen to match the paper's testbed (dual Xeon E5-2690v4, 100 Gbps
Mellanox MT27700 InfiniBand, Tesla P100) using figures from the paper
itself and from Kalia et al.'s RDMA design guidelines.

All times are in **seconds**, all sizes in **bytes**.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: quantum the harness enables when priority scheduling is requested:
#: ~41us of wire time at 100 Gbps — fine-grained enough to interleave
#: urgent tensors, coarse enough to keep per-transfer event counts low
DEFAULT_WIRE_QUANTUM_BYTES = 512 * KB


@dataclass(frozen=True)
class CostModel:
    """A bundle of hardware timing constants.

    Instances are immutable; use :meth:`scaled` or ``dataclasses.replace``
    to derive variants for ablation studies.
    """

    # ---- RDMA fabric (100 Gbps InfiniBand, Mellanox MT27700) ----
    rdma_bandwidth: float = 100e9 / 8          # bytes/sec on the wire
    rdma_base_latency: float = 1.0e-6          # one-way propagation + switch
    rdma_verb_overhead: float = 0.6e-6         # post WQE + NIC processing
    rdma_completion_overhead: float = 0.3e-6   # CQE generation + poll cost
    rdma_read_extra_rtt: float = 1.0e-6        # one-sided READ needs a request leg
    #: tearing down and re-establishing a broken queue pair (transition
    #: through RESET/INIT/RTR/RTS via the connection manager)
    qp_reestablish_time: float = 50e-6

    # ---- memory registration (page pinning through the kernel) ----
    mr_register_base: float = 150e-6           # ibv_reg_mr fixed cost
    mr_register_per_page: float = 1.0e-6       # pinning cost per 4 KiB page
    mr_page_size: int = 4096
    mr_table_capacity: int = 1024              # NIC MR table entries (hardware cap)

    # ---- host memory ----
    memcpy_bandwidth: float = 16e9             # single-thread streaming memcpy
    memcpy_base: float = 0.2e-6                # call + cache warmup
    malloc_base: float = 0.5e-6                # allocator fast-path
    malloc_per_mb: float = 2.0e-6              # page faults on large buffers

    # ---- serialization (protobuf-like encode/decode) ----
    serialize_bandwidth: float = 4.5e9
    serialize_base: float = 10e-6              # per-message fixed overhead
    deserialize_bandwidth: float = 6e9
    deserialize_base: float = 8e-6

    # ---- TCP/kernel stack (single gRPC stream over the kernel path;
    # measured gRPC goodput on fast fabrics is ~1-2 GB/s per stream) ----
    tcp_bandwidth: float = 12e9 / 8
    tcp_base_latency: float = 15e-6            # kernel->kernel one way
    tcp_syscall: float = 3.0e-6                # user/kernel crossing
    tcp_segment_size: int = 64 * KB            # per-sendmsg chunk
    tcp_per_segment: float = 1.0e-6            # header + interrupt amortized

    # ---- RPC framework ----
    rpc_dispatch: float = 2.0e-6               # method lookup, future wiring
    rpc_copy_threads: int = 2                  # communication CPU lanes/host
    rpc_ring_buffer_size: int = 4 * MB         # in-library receive buffer/channel
    rpc_max_message_size: int = 1 * GB         # gRPC.RDMA crashes above this

    # ---- scheduler / executor ----
    sched_dispatch: float = 0.5e-6             # pop + dispatch one op
    poll_check: float = 0.2e-6                 # one flag-byte check
    poll_requeue: float = 0.3e-6               # re-enqueue a polling-async op
    idle_poll_interval: float = 2.0e-6         # backoff when queue is empty

    # ---- priority wire scheduling ----
    #: quantum size for the preemptive wire scheduler; 0 keeps the
    #: classic contiguous-booking Pipe (a transfer occupies the wire in
    #: one unbroken interval).  When positive, each NIC direction is a
    #: priority quantum server: transfers are sliced into quantum
    #: bookings and a higher-priority transfer can interleave at the
    #: next quantum boundary instead of waiting out a 32MB booking.
    wire_quantum_bytes: int = 0
    #: cap on quanta per transfer (large transfers use size/max so the
    #: event count stays bounded)
    wire_max_quanta: int = 8

    # ---- in-network (switch) aggregation ----
    #: aggregation buffer slots per ToR/spine switch; each slot holds
    #: one in-flight chunk of one reduction group.  When every slot is
    #: busy the excess chunk spills to the host-collective path.  Only
    #: the aggregation plane reads these — flat-topology and
    #: host-collective timing is untouched by the defaults.
    switch_agg_slots: int = 128
    #: bytes per aggregation slot = the chunk granularity workers use
    #: when streaming a fusion bucket through the switches
    switch_agg_slot_bytes: int = 256 * KB
    #: per-chunk combine latency once every contribution has arrived
    #: (the switch reduces at line rate; this is the pipeline drain)
    switch_agg_latency: float = 0.25e-6
    #: per-worker send window: how many chunks of one reduction group a
    #: worker may have posted beyond its delivered results (SwitchML's
    #: slot-pool streaming discipline).  Bounds switch occupancy while
    #: covering the chunk round-trip so the access link stays saturated.
    switch_agg_window: int = 8

    # ---- lossy fabric (ECN-marked drops, no PFC) ----
    #: selective-repeat chunk granularity: a transfer larger than one
    #: chunk is tracked as a sequence-numbered chunk bitmap so only the
    #: chunks the fabric actually dropped are re-issued (O(lost bytes)
    #: recovery, not O(window)).  64 KiB matches the loss-recovery
    #: paper's message-level retransmission unit.
    loss_chunk_bytes: int = 64 * KB
    #: trunk-link utilization above which the fabric starts ECN-marking
    #: packets instead of pausing them (there is no PFC in lossy mode)
    ecn_mark_threshold: float = 0.7
    #: sender pacing delay applied per ECN mark (DCQCN-style rate cut
    #: collapsed into a fixed-cost injection hold-off)
    ecn_pace_delay: float = 5e-6
    #: how strongly trunk congestion above the mark threshold amplifies
    #: the base loss probability: effective_p = p * (1 + scale * over)
    #: where ``over`` is the utilization excess beyond the threshold
    ecn_loss_scale: float = 8.0
    #: minimum horizon for the running trunk-utilization estimate used
    #: by ECN marking (floors the divisor so the first microseconds of
    #: a run cannot read as 100% utilization)
    ecn_utilization_horizon: float = 2e-3

    # ---- GPU (Tesla P100 over PCIe 3.0 x16) ----
    pcie_bandwidth: float = 10e9               # host<->device staging copy
    pcie_base: float = 5.0e-6                  # cudaMemcpy launch
    gpu_kernel_launch: float = 6.0e-6

    # ---- operator compute (effective rates on the P100) ----
    op_overhead: float = 2.0e-6                # dispatch + launch per op
    gpu_flops: float = 5e12                    # effective FP32 FLOP/s
    gpu_elementwise: float = 2e10              # elementwise ops/s

    # -- derived costs ---------------------------------------------------------

    def rdma_wire_time(self, size: int) -> float:
        """Pure wire time for ``size`` payload bytes over the RDMA link."""
        return self.rdma_base_latency + size / self.rdma_bandwidth

    def rdma_write_time(self, size: int) -> float:
        """End-to-end one-sided WRITE: post, wire, remote DMA, CQE."""
        return (self.rdma_verb_overhead + self.rdma_wire_time(size)
                + self.rdma_completion_overhead)

    def rdma_read_time(self, size: int) -> float:
        """One-sided READ: an extra request leg precedes the data flow."""
        return (self.rdma_verb_overhead + self.rdma_read_extra_rtt
                + self.rdma_wire_time(size) + self.rdma_completion_overhead)

    def rdma_send_time(self, size: int) -> float:
        """Two-sided SEND/RECV pair (remote CPU posts the RECV)."""
        return (self.rdma_verb_overhead + self.rdma_wire_time(size)
                + 2 * self.rdma_completion_overhead)

    def mr_register_time(self, size: int) -> float:
        """Register ``size`` bytes with the NIC (pins pages in the kernel)."""
        pages = max(1, (size + self.mr_page_size - 1) // self.mr_page_size)
        return self.mr_register_base + pages * self.mr_register_per_page

    def memcpy_time(self, size: int) -> float:
        return self.memcpy_base + size / self.memcpy_bandwidth

    def malloc_time(self, size: int) -> float:
        return self.malloc_base + (size / MB) * self.malloc_per_mb

    def serialize_time(self, size: int) -> float:
        return self.serialize_base + size / self.serialize_bandwidth

    def deserialize_time(self, size: int) -> float:
        return self.deserialize_base + size / self.deserialize_bandwidth

    def tcp_send_time(self, size: int) -> float:
        """Kernel-stack transmit cost for ``size`` bytes (sender side).

        Charges one syscall plus per-segment overhead plus a kernel copy
        of the payload into socket buffers; the wire time itself is
        charged separately by the link model.
        """
        segments = max(1, (size + self.tcp_segment_size - 1) // self.tcp_segment_size)
        return (self.tcp_syscall + segments * self.tcp_per_segment
                + self.memcpy_time(size))

    def tcp_wire_time(self, size: int) -> float:
        return self.tcp_base_latency + size / self.tcp_bandwidth

    def tcp_recv_time(self, size: int) -> float:
        """Kernel receive path: syscall plus copy out of socket buffers."""
        return self.tcp_syscall + self.memcpy_time(size)

    def pcie_copy_time(self, size: int) -> float:
        """Host<->device staging copy over PCIe."""
        return self.pcie_base + size / self.pcie_bandwidth

    # -- variants ---------------------------------------------------------------

    def scaled(self, **multipliers: float) -> "CostModel":
        """Return a copy with named fields multiplied (for ablations).

        Example: ``cm.scaled(rdma_bandwidth=0.5)`` halves the RDMA link.
        """
        changes = {}
        for name, factor in multipliers.items():
            current = getattr(self, name)
            if isinstance(current, int) and not isinstance(current, bool):
                changes[name] = int(current * factor)
            else:
                changes[name] = current * factor
        return replace(self, **changes)


DEFAULT_COST_MODEL = CostModel()

#: The paper's testbed: 100 Gbps Mellanox MT27700 InfiniBand.
INFINIBAND_COST_MODEL = DEFAULT_COST_MODEL

#: RoCE v2 on 25 GbE — "our RDMA mechanism can also work with RoCE
#: network adapters" (§5).  Same verbs semantics, commodity-Ethernet
#: wire: lower bandwidth, higher latency, slightly costlier verbs
#: (UDP encapsulation + PFC machinery).
ROCE_COST_MODEL = CostModel(
    rdma_bandwidth=25e9 / 8,
    rdma_base_latency=3.0e-6,
    rdma_verb_overhead=0.9e-6,
    rdma_read_extra_rtt=3.0e-6,
)
