"""Optional metrics collection for the simulated cluster.

A :class:`MetricsCollector` (enabled via ``Cluster.enable_metrics()``)
records every wire transfer the NICs and TCP stacks perform, giving
experiments per-host traffic accounting, link-utilization estimates,
and transfer timelines — the observability layer a systems paper's
"we measured..." sentences rest on.

Collection is off by default; when disabled the fast paths pay a
single attribute check.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TransferRecord:
    """One wire transfer (RDMA verb or TCP message)."""

    kind: str          # "RDMA_WRITE" | "RDMA_READ" | "SEND" | "TCP"
    src_host: str
    dst_host: str
    nbytes: int
    start: float
    end: float
    #: protocol role ("static-write", "dynamic-metadata",
    #: "dynamic-payload-read", "collective-chunk", "control", or ""),
    #: separating §3.2 static traffic from §3.3 dynamic traffic
    role: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class MetricsCollector:
    """Accumulates transfer records and answers summary queries."""

    def __init__(self) -> None:
        self.transfers: List[TransferRecord] = []

    # -- recording -------------------------------------------------------------------

    def record_transfer(self, kind: str, src_host: str, dst_host: str,
                        nbytes: int, start: float, end: float,
                        role: str = "") -> None:
        self.transfers.append(TransferRecord(
            kind=kind, src_host=src_host, dst_host=dst_host,
            nbytes=nbytes, start=start, end=max(end, start), role=role))

    def reset(self) -> None:
        self.transfers = []

    # -- queries ------------------------------------------------------------------------

    def total_bytes(self, kind: Optional[str] = None,
                    role: Optional[str] = None) -> int:
        return sum(t.nbytes for t in self.transfers
                   if (kind is None or t.kind == kind)
                   and (role is None or t.role == role))

    def count(self, kind: Optional[str] = None,
              role: Optional[str] = None) -> int:
        return sum(1 for t in self.transfers
                   if (kind is None or t.kind == kind)
                   and (role is None or t.role == role))

    def bytes_by_role(self) -> Dict[str, int]:
        """Per-protocol-role byte totals (unlabelled traffic under "")."""
        out: Dict[str, int] = defaultdict(int)
        for t in self.transfers:
            out[t.role] += t.nbytes
        return dict(out)

    def bytes_in_window(self, lo: float = 0.0, hi: Optional[float] = None,
                        host: Optional[str] = None,
                        direction: str = "egress",
                        kinds: Optional[Tuple[str, ...]] = None) -> int:
        """Payload bytes of transfers *starting* inside ``[lo, hi)``.

        The workhorse of steady-state accounting: experiments snapshot
        the simulated clock at an iteration boundary and ask how many
        bytes a host (or the whole cluster, ``host=None``) put on the
        wire afterwards, excluding warm-up traffic such as iteration
        zero's staged copies and address-book distribution.
        """
        if direction not in ("egress", "ingress"):
            raise ValueError("direction must be 'egress' or 'ingress'")
        key = "src_host" if direction == "egress" else "dst_host"
        total = 0
        for t in self.transfers:
            if t.start < lo or (hi is not None and t.start >= hi):
                continue
            if host is not None and getattr(t, key) != host:
                continue
            if kinds is not None and t.kind not in kinds:
                continue
            total += t.nbytes
        return total

    def bytes_by_host(self, direction: str = "egress") -> Dict[str, int]:
        """Per-host byte totals; direction 'egress' or 'ingress'."""
        if direction not in ("egress", "ingress"):
            raise ValueError("direction must be 'egress' or 'ingress'")
        out: Dict[str, int] = defaultdict(int)
        for t in self.transfers:
            host = t.src_host if direction == "egress" else t.dst_host
            out[host] += t.nbytes
        return dict(out)

    def hottest_host(self, direction: str = "egress") -> Optional[str]:
        totals = self.bytes_by_host(direction)
        if not totals:
            return None
        return max(totals, key=totals.get)

    def utilization(self, host: str, bandwidth: float,
                    window: Optional[Tuple[float, float]] = None,
                    direction: str = "egress") -> float:
        """Fraction of a host link's capacity used over a window."""
        if window is None:
            if not self.transfers:
                return 0.0
            window = (min(t.start for t in self.transfers),
                      max(t.end for t in self.transfers))
        lo, hi = window
        span = hi - lo
        if span <= 0:
            return 0.0
        key = "src_host" if direction == "egress" else "dst_host"
        carried = sum(
            t.nbytes for t in self.transfers
            if getattr(t, key) == host and t.start < hi and t.end > lo)
        return carried / (bandwidth * span)

    def timeline(self, bucket: float) -> List[Tuple[float, int]]:
        """(bucket_start, bytes finishing in bucket) pairs, sorted."""
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        buckets: Dict[int, int] = defaultdict(int)
        for t in self.transfers:
            buckets[int(t.end / bucket)] += t.nbytes
        return [(index * bucket, size)
                for index, size in sorted(buckets.items())]

    def summary(self) -> str:
        """A short human-readable traffic report."""
        if not self.transfers:
            return "no transfers recorded"
        lines = [f"{self.count()} transfers, "
                 f"{self.total_bytes() / 1e6:.1f} MB total"]
        kinds = sorted({t.kind for t in self.transfers})
        for kind in kinds:
            lines.append(f"  {kind}: {self.count(kind)} transfers, "
                         f"{self.total_bytes(kind) / 1e6:.1f} MB")
        roles = self.bytes_by_role()
        for role, nbytes in sorted(roles.items()):
            if role:
                lines.append(f"  role {role}: "
                             f"{self.count(role=role)} transfers, "
                             f"{nbytes / 1e6:.1f} MB")
        for host, nbytes in sorted(self.bytes_by_host().items()):
            lines.append(f"  {host} egress: {nbytes / 1e6:.1f} MB")
        return "\n".join(lines)
