"""Simulated cluster substrate: event engine, RDMA NICs, TCP, GPUs.

This package replaces the paper's physical testbed (8 servers with
100 Gbps Mellanox InfiniBand NICs and Tesla P100 GPUs) with a
deterministic discrete-event simulation.  See DESIGN.md §2 for the
substitution rationale.
"""

from .costmodel import CostModel, DEFAULT_COST_MODEL, KB, MB, GB
from .faults import (FaultInjector, FaultRule, FaultSpecError, FaultVerdict,
                     parse_fault_spec)
from .gpu import GpuDevice
from .metrics import MetricsCollector, TransferRecord
from .memory import (AddressSpace, Backing, Buffer, DenseBacking, MemoryError_,
                     MemoryRegion, MrTable, VirtualBacking)
from .nic import CompletionQueue, Pipe, QueuePair, RdmaNic
from .simulator import (AllOf, AnyOf, Event, Interrupt, Process, Resource,
                        SimulationError, Simulator, Store, Timeout)
from .tcp import Listener, Socket, TcpError, TcpMessage, TcpStack
from .topology import Cluster, Endpoint, Host
from .verbs import Completion, Opcode, WcStatus, WorkRequest

__all__ = [
    "AddressSpace", "AllOf", "AnyOf", "Backing", "Buffer", "Cluster",
    "Completion", "CompletionQueue", "CostModel", "DEFAULT_COST_MODEL",
    "DenseBacking", "Endpoint", "Event", "FaultInjector", "FaultRule",
    "FaultSpecError", "FaultVerdict", "GB", "GpuDevice", "Host",
    "Interrupt", "KB", "Listener", "MB", "MemoryError_", "MemoryRegion", "MetricsCollector",
    "MrTable", "Opcode", "Pipe", "Process", "QueuePair", "RdmaNic",
    "Resource", "SimulationError", "Simulator", "Socket", "Store",
    "TcpError", "TcpMessage", "TcpStack", "Timeout", "TransferRecord", "VirtualBacking",
    "WcStatus", "WorkRequest", "parse_fault_spec",
]
