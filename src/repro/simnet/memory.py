"""Simulated host memory: address spaces, backings, registered regions.

Each simulated host owns a flat virtual :class:`AddressSpace`.  Buffers
carved out of it are backed either by a real ``numpy`` byte array
(:class:`DenseBacking`) — used for control data, metadata slots, flag
bytes, and any tensor small enough to verify byte-exactly — or by a
:class:`VirtualBacking` that tracks which ranges have been written
without storing payload bytes.  Virtual backings let the benchmarks
move multi-hundred-megabyte "tensors" per iteration without exhausting
real RAM; the flag-byte completion protocol still works because sparse
explicit bytes (the flag, metadata headers) are stored for real.

RDMA registration is modelled by :class:`MemoryRegion` entries in the
NIC's :class:`MrTable`, which enforces the hardware cap on the number
of registered regions.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


DENSE_LIMIT = 16 * 1024 * 1024  # regions <= 16 MiB get real byte storage


class MemoryError_(RuntimeError):
    """Simulated memory fault (bad address, protection, exhaustion)."""


class Backing:
    """Storage behind a buffer.  Subclasses define read/write semantics."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise MemoryError_(f"backing size must be positive, got {size}")
        self.size = size

    def read(self, offset: int, length: int) -> bytes:
        raise NotImplementedError

    def write(self, offset: int, data: bytes) -> None:
        raise NotImplementedError

    def write_virtual(self, offset: int, length: int) -> None:
        """Record that ``length`` bytes were written without content."""
        raise NotImplementedError

    def read_byte(self, offset: int) -> int:
        return self.read(offset, 1)[0]

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise MemoryError_(
                f"access [{offset}, {offset + length}) outside backing of size {self.size}")


class DenseBacking(Backing):
    """Real bytes in a numpy array; supports exact round-trips."""

    def __init__(self, size: int) -> None:
        super().__init__(size)
        self.array = np.zeros(size, dtype=np.uint8)

    def read(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        return self.array[offset:offset + length].tobytes()

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self.array[offset:offset + len(data)] = np.frombuffer(bytes(data), dtype=np.uint8)

    def write_virtual(self, offset: int, length: int) -> None:
        # A virtual write into dense storage leaves content unchanged;
        # it only models that the DMA engine touched the range.
        self._check(offset, length)

    def read_byte(self, offset: int) -> int:
        # Flag pollers call this every sweep; skip the slice+tobytes.
        self._check(offset, 1)
        return int(self.array[offset])

    def view(self, offset: int, length: int) -> np.ndarray:
        """A zero-copy numpy view of the backing range."""
        self._check(offset, length)
        return self.array[offset:offset + length]


class VirtualBacking(Backing):
    """Size-only storage: content dropped, small explicit writes kept.

    Reads of never-written bytes return 0.  Writes of at most
    ``sparse_limit`` bytes are stored for real (flag bytes, metadata
    headers); larger writes only record their byte count.
    """

    sparse_limit = 64 * 1024

    def __init__(self, size: int) -> None:
        super().__init__(size)
        self._sparse: Dict[int, int] = {}
        self.bytes_written = 0

    def read(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        sparse = self._sparse
        return bytes(sparse.get(offset + i, 0) for i in range(length))

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self.bytes_written += len(data)
        if len(data) <= self.sparse_limit:
            for i, b in enumerate(data):
                self._sparse[offset + i] = b
        else:
            # Content intentionally dropped, but keep the head and tail
            # windows for real: protocol headers and flag bytes live there.
            keep = 64
            for i in range(keep):
                self._sparse[offset + i] = data[i]
            for i in range(len(data) - keep, len(data)):
                self._sparse[offset + i] = data[i]

    def write_virtual(self, offset: int, length: int) -> None:
        self._check(offset, length)
        self.bytes_written += length

    def read_byte(self, offset: int) -> int:
        self._check(offset, 1)
        return self._sparse.get(offset, 0)


@dataclass
class Buffer:
    """A contiguous range of a host's virtual address space."""

    addr: int
    size: int
    backing: Backing
    host_name: str
    label: str = ""

    @property
    def end(self) -> int:
        return self.addr + self.size

    def read(self, offset: int = 0, length: Optional[int] = None) -> bytes:
        if length is None:
            length = self.size - offset
        return self.backing.read(offset, length)

    def write(self, data: bytes, offset: int = 0) -> None:
        self.backing.write(offset, data)

    def read_byte(self, offset: int) -> int:
        return self.backing.read_byte(offset)


class AddressSpace:
    """A host's flat virtual address space with bump allocation.

    Addresses are globally unique across hosts (each host gets its own
    base), which mirrors the paper's setting where a remote address is
    meaningful only together with the remote endpoint, yet makes
    cross-host confusion bugs loud in tests.
    """

    _host_counter = itertools.count(1)

    def __init__(self, host_name: str) -> None:
        self.host_name = host_name
        base_index = next(self._host_counter)
        self._next_addr = base_index << 44  # 16 TiB apart per host
        self._buffers: List[Buffer] = []    # sorted by addr
        self._addrs: List[int] = []         # parallel sorted start addresses

    def allocate(self, size: int, label: str = "",
                 dense: Optional[bool] = None) -> Buffer:
        """Carve a new buffer; dense backing by default for small sizes."""
        if size <= 0:
            raise MemoryError_(f"allocation size must be positive, got {size}")
        if dense is None:
            dense = size <= DENSE_LIMIT
        backing = DenseBacking(size) if dense else VirtualBacking(size)
        buf = Buffer(addr=self._next_addr, size=size, backing=backing,
                     host_name=self.host_name, label=label)
        # Align the next allocation to 64 bytes, like a cache-line allocator.
        self._next_addr += (size + 63) & ~63
        self._buffers.append(buf)  # bump allocation => appends stay sorted
        self._addrs.append(buf.addr)
        return buf

    def free(self, buf: Buffer) -> None:
        """Release a buffer (bump allocator: bookkeeping only)."""
        index = bisect.bisect_right(self._addrs, buf.addr) - 1
        if index < 0 or self._buffers[index] is not buf:
            raise MemoryError_(f"double free or foreign buffer at {buf.addr:#x}")
        del self._buffers[index]
        del self._addrs[index]

    def resolve(self, addr: int, length: int = 1) -> Tuple[Buffer, int]:
        """Map a virtual address range to (buffer, offset) or fault."""
        # Buffers never overlap and stay address-sorted, so the only
        # candidate is the last buffer starting at or below ``addr``.
        index = bisect.bisect_right(self._addrs, addr) - 1
        if index >= 0:
            buf = self._buffers[index]
            if addr + length <= buf.end:
                return buf, addr - buf.addr
        raise MemoryError_(
            f"address [{addr:#x}, +{length}) unmapped on host {self.host_name!r}")

    def read(self, addr: int, length: int) -> bytes:
        buf, off = self.resolve(addr, length)
        return buf.backing.read(off, length)

    def write(self, addr: int, data: bytes) -> None:
        buf, off = self.resolve(addr, len(data))
        buf.backing.write(off, data)


@dataclass
class MemoryRegion:
    """An RDMA-registered buffer with local and remote protection keys."""

    buffer: Buffer
    lkey: int
    rkey: int
    registered: bool = True

    @property
    def addr(self) -> int:
        return self.buffer.addr

    @property
    def size(self) -> int:
        return self.buffer.size

    def contains(self, addr: int, length: int) -> bool:
        return self.addr <= addr and addr + length <= self.buffer.end


class MrTable:
    """The NIC's memory-region table: registration with a hardware cap."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._regions: Dict[int, MemoryRegion] = {}  # rkey -> region
        self._next_key = itertools.count(1000)

    def __len__(self) -> int:
        return len(self._regions)

    def register(self, buf: Buffer) -> MemoryRegion:
        """Register a buffer; raises when the MR table is full."""
        if len(self._regions) >= self.capacity:
            raise MemoryError_(
                f"NIC MR table exhausted ({self.capacity} regions); "
                "register fewer, larger regions (see paper §3.4)")
        key = next(self._next_key)
        region = MemoryRegion(buffer=buf, lkey=key, rkey=key)
        self._regions[key] = region
        return region

    def deregister(self, region: MemoryRegion) -> None:
        if region.rkey not in self._regions:
            raise MemoryError_(f"region rkey={region.rkey} not registered")
        region.registered = False
        del self._regions[region.rkey]

    def lookup(self, rkey: int, addr: int, length: int) -> MemoryRegion:
        """Validate a remote access against the MR table."""
        region = self._regions.get(rkey)
        if region is None:
            raise MemoryError_(f"remote access with invalid rkey={rkey}")
        if not region.contains(addr, length):
            raise MemoryError_(
                f"remote access [{addr:#x}, +{length}) outside MR "
                f"[{region.addr:#x}, +{region.size}) (rkey={rkey})")
        return region
