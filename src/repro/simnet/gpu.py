"""Simulated GPU device memory and GPUDirect RDMA capability.

Models the only GPU property the paper's Table 3 experiment depends
on: tensors living in device memory must be staged through host memory
over PCIe before a NIC can touch them — *unless* the GPU and NIC
support GPUDirect, in which case the NIC reads device memory directly
and the staging copy disappears (§3.5).

Device memory is carved from the host's address space like any other
buffer (mirroring CUDA's unified virtual addressing), tagged with the
owning GPU so transfer paths can tell host from device pointers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set, TYPE_CHECKING

from .costmodel import CostModel
from .memory import Buffer

if TYPE_CHECKING:  # pragma: no cover
    from .topology import Host


class GpuDevice:
    """One GPU: device-memory allocation plus PCIe staging costs."""

    def __init__(self, host: "Host", index: int = 0,
                 gpudirect_capable: bool = True) -> None:
        self.host = host
        self.index = index
        self.gpudirect_capable = gpudirect_capable
        self.cost: CostModel = host.cost
        self._device_buffers: Set[int] = set()

    @property
    def name(self) -> str:
        return f"{self.host.name}/gpu{self.index}"

    def allocate(self, size: int, label: str = "",
                 dense: Optional[bool] = None) -> Buffer:
        """Allocate device memory (appears in the host address space)."""
        buf = self.host.address_space.allocate(
            size, label=label or f"gpu{self.index}-mem", dense=dense)
        self._device_buffers.add(buf.addr)
        return buf

    def owns(self, buf: Buffer) -> bool:
        """Whether the buffer lives in this GPU's device memory."""
        return buf.addr in self._device_buffers

    def staging_copy_time(self, size: int) -> float:
        """Host<->device copy over PCIe (cudaMemcpy)."""
        return self.cost.pcie_copy_time(size)

    def kernel_launch_time(self) -> float:
        return self.cost.gpu_kernel_launch

    def free(self, buf: Buffer) -> None:
        self._device_buffers.discard(buf.addr)
        self.host.address_space.free(buf)
