"""Deterministic fault injection for the simulated RDMA fabric.

The paper's protocols assume the fabric never loses a write or breaks
a queue pair mid-transfer; this module makes those assumptions break on
purpose.  A :class:`FaultInjector` installed on a cluster (see
:meth:`repro.simnet.topology.Cluster.install_faults`) is consulted by
the NIC on every posted data verb and renders a :class:`FaultVerdict`:

* ``drop`` — the verb occupies the wire but nothing commits at the
  destination; the sender gets an error CQE (wire-level loss that the
  NIC detects, e.g. a retry-exhausted ACK timeout).
* ``blackhole`` — the verb vanishes without a trace: no commit, **no
  CQE**.  Exercises the recovery layer's per-transfer timeout.
* ``partial`` — a torn write: an ascending-order prefix of the payload
  commits and then the transfer dies, error CQE.  The tail (where the
  protocols put their flag byte) never lands, which is exactly why the
  flag protocol is safe against torn writes.
* ``qp_break`` — like ``partial``, and additionally both ends of the
  queue pair enter the error state: every later verb posted on the QP
  fails fast with a flush status until the channel re-establishes it.
* ``flap`` — the host's NIC is down for a time window; every data verb
  posted in the window fails fast.
* ``loss`` — lossy-fabric packet loss (no PFC): like ``drop`` the verb
  occupies the wire and nothing commits, but the rule's probability is
  *congestion-coupled*.  On a fat tree, trunk links along the routed
  path whose utilization exceeds ``CostModel.ecn_mark_threshold`` both
  ECN-mark the flow (the sender pays ``ecn_pace_delay`` per post) and
  scale the base loss probability by ``1 + ecn_loss_scale * excess``.
  On the flat topology there are no trunk links, so ``loss`` is pure
  probabilistic wire loss.  Arming a ``loss`` rule also switches the
  recovery layer to chunk-granular selective repeat (see
  :mod:`repro.core.recovery`).
* ``straggler`` — a transient slowdown: the verb departs ``delay``
  seconds late but succeeds (can push a transfer past the recovery
  layer's timeout, making spurious retries reachable in tests).
* ``switch_fail`` — a ToR/spine switch loses its aggregation engine
  for the time window: in-network reductions touching it degrade to
  the host-collective fallback.  Never consulted on the verb path —
  the aggregation plane queries :meth:`FaultInjector.switch_failed`
  instead, and ``host=`` addresses the *switch* name (``tor0``,
  ``spine1``; unset matches every switch).

All randomness comes from one seeded ``random.Random``; draws happen in
verb post order, which the simulator makes deterministic, so a fault
schedule is a pure function of (spec, seed, workload).  Every injected
fault is appended to :attr:`FaultInjector.injected` so tests can match
retry counts against the schedule exactly.

Verbs with ``role == "control"`` (address-book RPC) are never faulted:
connection setup is out of scope for the recovery layer, which lives in
the transfer protocols.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .verbs import WcStatus, WorkRequest


#: fault kinds that terminate the verb (at most one fires per post)
TERMINAL_KINDS = ("drop", "blackhole", "partial", "qp_break", "flap",
                  "loss")
#: all spec-addressable kinds: the additive straggler delay plus the
#: switch-plane ``switch_fail`` (queried by the aggregation plane, never
#: rendered on the verb path)
FAULT_KINDS = TERMINAL_KINDS + ("straggler", "switch_fail")


class FaultSpecError(ValueError):
    """A malformed ``--fault-spec`` string."""


@dataclass
class FaultRule:
    """One clause of a fault spec.

    A rule is *eligible* for a posted verb when the sim time is inside
    ``[after, until)``, the posting host matches ``host`` (if set) and
    the verb's protocol role matches ``role`` (if set; unset matches
    every non-control role).  Eligible posts first burn ``skip``, then
    draw against ``probability``; ``count`` caps total firings so tests
    can assert exact retry counts.
    """

    kind: str
    probability: float = 1.0
    count: Optional[int] = None
    skip: int = 0
    after: float = 0.0
    until: float = float("inf")
    host: Optional[str] = None
    role: Optional[str] = None
    #: extra seconds a straggler adds to the verb's departure
    delay: float = 200e-6
    #: fraction of the payload a partial/qp_break commits before dying
    frac: float = 0.5
    fired: int = 0
    seen: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; have {FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultSpecError(f"probability {self.probability} not in [0,1]")
        if not 0.0 <= self.frac < 1.0:
            raise FaultSpecError(f"frac {self.frac} must be in [0,1)")

    def matches(self, now: float, host: str, role: str) -> bool:
        if not self.after <= now < self.until:
            return False
        if self.host is not None and self.host != host:
            return False
        if self.role is not None and self.role != role:
            return False
        return True

    def exhausted(self) -> bool:
        return self.count is not None and self.fired >= self.count


@dataclass(frozen=True)
class FaultVerdict:
    """What the NIC must do to one posted verb."""

    kind: str
    status: WcStatus = WcStatus.SUCCESS
    #: extra departure delay (straggler rules, additive)
    delay: float = 0.0
    #: committed payload fraction for partial/qp_break
    frac: float = 0.0

    @property
    def fail_fast(self) -> bool:
        """Fails at post time, before touching the wire."""
        return self.kind == "flap"

    @property
    def break_qp(self) -> bool:
        return self.kind == "qp_break"

    def commit_size(self, size: int) -> int:
        """Bytes that land at the destination (< size for faults)."""
        if self.kind in ("drop", "blackhole", "flap", "loss"):
            return 0
        if self.kind in ("partial", "qp_break"):
            return min(int(size * self.frac), size - 1) if size else 0
        return size


def parse_fault_spec(spec: str) -> List[FaultRule]:
    """Parse ``"kind:key=value,...;kind:..."`` into rules.

    Keys: ``p`` (probability), ``count``, ``skip``, ``at``/``after``,
    ``until``, ``for`` (duration, sets ``until = after + for``),
    ``host``, ``role``, ``delay``, ``frac``.  Example::

        drop:p=0.05;flap:host=server1,at=0.001,for=0.0005
    """
    rules: List[FaultRule] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, rest = clause.partition(":")
        kind = kind.strip().replace("-", "_")
        kwargs: Dict[str, object] = {}
        duration: Optional[float] = None
        for item in filter(None, (s.strip() for s in rest.split(","))):
            key, sep, value = item.partition("=")
            if not sep:
                raise FaultSpecError(f"expected key=value, got {item!r}")
            key = key.strip()
            value = value.strip()
            if key in ("p", "prob", "probability"):
                kwargs["probability"] = float(value)
            elif key == "count":
                kwargs["count"] = int(value)
            elif key == "skip":
                kwargs["skip"] = int(value)
            elif key in ("at", "after"):
                kwargs["after"] = float(value)
            elif key == "until":
                kwargs["until"] = float(value)
            elif key == "for":
                duration = float(value)
            elif key == "host":
                kwargs["host"] = value
            elif key == "role":
                kwargs["role"] = value
            elif key == "delay":
                kwargs["delay"] = float(value)
            elif key == "frac":
                kwargs["frac"] = float(value)
            else:
                raise FaultSpecError(f"unknown fault-spec key {key!r}")
        if duration is not None:
            kwargs["until"] = float(kwargs.get("after", 0.0)) + duration
        try:
            rules.append(FaultRule(kind=kind, **kwargs))  # type: ignore[arg-type]
        except TypeError as exc:
            raise FaultSpecError(str(exc)) from exc
    return rules


class FaultInjector:
    """Seeded, schedulable fault plane for a cluster's RDMA fabric."""

    def __init__(self, rules: Optional[List[FaultRule]] = None,
                 seed: int = 0) -> None:
        self.rules: List[FaultRule] = list(rules or [])
        self.seed = seed
        self._rng = random.Random(seed)
        #: chronological log of every injected fault (dicts, so a
        #: ``RunStats.faults`` snapshot is JSON-able and comparable)
        self.injected: List[Dict[str, object]] = []
        #: cached per-(rule, switch) draws for ``switch_fail`` rules
        self._switch_draws: Dict[Tuple[int, str], bool] = {}

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultInjector":
        return cls(parse_fault_spec(spec), seed=seed)

    @property
    def armed(self) -> bool:
        """Whether any rule exists.

        An installed-but-empty injector is *not* armed: the NIC's fast
        path and the comm runtime's recovery gating both key off this,
        so an empty spec stays bit-identical to no injector at all.
        """
        return bool(self.rules)

    @property
    def has_loss(self) -> bool:
        """Whether any ``loss`` rule is armed (selective-repeat gate)."""
        return any(rule.kind == "loss" for rule in self.rules)

    def _ecn_factor(self, nic, dst: Optional[str]) -> Tuple[float, float]:
        """Congestion coupling for one post: (probability multiplier,
        pacing delay).

        Walks the routed fabric path and takes the hottest trunk link's
        running utilization; beyond ``ecn_mark_threshold`` the flow is
        ECN-marked (sender pacing) and its loss probability scales with
        the excess.  Flat topology / unknown destination → (1, 0).
        """
        fabric = getattr(nic.host.cluster, "fabric", None)
        if fabric is None or dst is None or dst == nic.host.name:
            return 1.0, 0.0
        cost = nic.cost
        now = nic.sim.now
        horizon = max(now, cost.ecn_utilization_horizon)
        util = 0.0
        for link in fabric.route(nic.host.name, dst):
            if link.trunk:
                util = max(util, link.utilization(horizon))
        over = util - cost.ecn_mark_threshold
        if over <= 0.0:
            return 1.0, 0.0
        return 1.0 + cost.ecn_loss_scale * over, cost.ecn_pace_delay

    def on_post(self, nic, qp, wr: WorkRequest,
                dst: Optional[str] = None) -> Optional[FaultVerdict]:
        """Render the verdict for one posted verb (None = untouched).

        Straggler delays accumulate across matching rules; the first
        terminal rule to fire wins and stops evaluation.  RNG draws are
        made only for eligible probabilistic rules, in spec order, so
        the schedule is deterministic given the workload.  ``dst`` (the
        destination host name, when the caller knows it) feeds the ECN
        congestion coupling of ``loss`` rules.
        """
        if wr.role == "control" or not self.rules:
            return None
        now = nic.sim.now
        host = nic.host.name
        delay = 0.0
        terminal: Optional[FaultRule] = None
        for rule in self.rules:
            if rule.kind == "switch_fail":
                continue  # switch-plane rules never touch the verb path
            if rule.exhausted() or not rule.matches(now, host, wr.role):
                continue
            rule.seen += 1
            if rule.seen <= rule.skip:
                continue
            probability = rule.probability
            if rule.kind == "loss":
                factor, pace = self._ecn_factor(nic, dst)
                probability = min(1.0, probability * factor)
                delay += pace
            if probability < 1.0 and \
                    self._rng.random() >= probability:
                continue
            rule.fired += 1
            if rule.kind == "straggler":
                delay += rule.delay
                self._log(nic, wr, rule, now)
                continue
            terminal = rule
            self._log(nic, wr, rule, now)
            break
        if terminal is None and delay == 0.0:
            return None
        if terminal is None:
            return FaultVerdict(kind="straggler", delay=delay)
        status = (WcStatus.WR_FLUSH_ERR if terminal.kind == "qp_break"
                  else WcStatus.RETRY_EXC_ERR)
        return FaultVerdict(kind=terminal.kind, status=status, delay=delay,
                            frac=terminal.frac)

    def on_uplink(self, nic, wr: WorkRequest,
                  dst: Optional[str] = None) -> bool:
        """Loss-only consultation for transfers that bypass the verb path.

        Switch-aggregation uplinks book the wire directly instead of
        posting verbs, so :meth:`on_post` never sees them.  Only
        ``loss`` rules are evaluated here — the other kinds model
        NIC/QP failure surfaces those bookings don't traverse.  Returns
        whether the attempt was lost (the caller re-issues it as
        retransmit traffic); every loss is logged to :attr:`injected`
        with its size, keeping the retransmit-byte identity exact.
        """
        if wr.role == "control" or not self.has_loss:
            return False
        now = nic.sim.now
        host = nic.host.name
        for rule in self.rules:
            if rule.kind != "loss":
                continue
            if rule.exhausted() or not rule.matches(now, host, wr.role):
                continue
            rule.seen += 1
            if rule.seen <= rule.skip:
                continue
            factor, _ = self._ecn_factor(nic, dst)
            probability = min(1.0, rule.probability * factor)
            if probability < 1.0 and self._rng.random() >= probability:
                continue
            rule.fired += 1
            self._log(nic, wr, rule, now)
            return True
        return False

    def _log(self, nic, wr: WorkRequest, rule: FaultRule, now: float) -> None:
        # wr_id is drawn from a process-global counter and so differs
        # between back-to-back runs; keep the log run-deterministic.
        self.injected.append({
            "time": now, "kind": rule.kind, "host": nic.host.name,
            "role": wr.role, "opcode": wr.opcode.value, "size": wr.size,
        })
        tracer = nic.host.cluster.tracer
        if tracer is not None:
            tracer.record("fault", f"{rule.kind} {wr.role or wr.opcode.value}",
                          nic.host.name, "nic:faults", now, now,
                          args={"kind": rule.kind, "role": wr.role,
                                "wr_id": wr.wr_id, "size": wr.size})
            tracer.metrics.counter("faults_injected").add(1)

    def switch_failed(self, name: str, now: float) -> bool:
        """Whether switch ``name`` has lost its aggregation engine.

        ``switch_fail`` rules address switches via ``host=`` (the
        switch's node name; unset matches every switch) inside the
        usual ``[after, until)`` window.  Each (rule, switch) pair gets
        one probability draw, cached for the run and seeded from
        ``(seed, rule, switch)`` independently of the verb-fault RNG —
        querying the plane never perturbs the verb fault schedule.
        """
        if not self.rules:
            return False
        failed = False
        for index, rule in enumerate(self.rules):
            if rule.kind != "switch_fail":
                continue
            if not rule.after <= now < rule.until:
                continue
            if rule.host is not None and rule.host != name:
                continue
            key = (index, name)
            verdict = self._switch_draws.get(key)
            if verdict is None:
                if rule.exhausted():
                    continue
                draw = random.Random(
                    self.seed * 1000003
                    + zlib.crc32(f"{index}|{name}".encode()))
                verdict = draw.random() < rule.probability
                self._switch_draws[key] = verdict
                if verdict:
                    rule.fired += 1
                    self.injected.append({
                        "time": now, "kind": "switch_fail", "host": name,
                        "role": "in-network-aggregate", "opcode": "switch",
                        "size": 0,
                    })
            failed = failed or verdict
        return failed

    # -- reporting ---------------------------------------------------------------

    def counts_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for entry in self.injected:
            kind = str(entry["kind"])
            out[kind] = out.get(kind, 0) + 1
        return out

    def snapshot(self) -> Dict[str, object]:
        """JSON-able summary for ``RunStats.faults``."""
        return {
            "seed": self.seed,
            "total": len(self.injected),
            "by_kind": self.counts_by_kind(),
            "log": [dict(entry) for entry in self.injected],
        }
