"""A bounded per-host CPU engine for per-byte communication work.

The paper's core observation is that "the high-bandwidth of RDMA and
its kernel-bypassing nature make any communication related computation
overhead significant" (§2.3): serialization, deserialization, and
buffer copies burn CPU and cannot overlap without bound.  This engine
models a small pool of communication threads (gRPC completion threads,
kernel softirq time): each unit of per-byte work occupies one lane for
its full duration, so a hot parameter server's RPC byte-handling
serializes once the lanes are busy — while one-sided RDMA transfers
bypass the engine entirely.
"""

from __future__ import annotations

from typing import Generator, List

from .simulator import Simulator


class CpuEngine:
    """N identical lanes; work occupies the least-loaded lane."""

    def __init__(self, sim: Simulator, lanes: int) -> None:
        if lanes < 1:
            raise ValueError("need at least one CPU lane")
        self.sim = sim
        self._lanes: List[float] = [0.0] * lanes
        self.busy_seconds = 0.0

    @property
    def num_lanes(self) -> int:
        return len(self._lanes)

    def reserve(self, duration: float) -> float:
        """Book ``duration`` seconds of work; returns the finish time."""
        if duration <= 0:
            return self.sim.now
        index = min(range(len(self._lanes)), key=self._lanes.__getitem__)
        start = max(self.sim.now, self._lanes[index])
        end = start + duration
        self._lanes[index] = end
        self.busy_seconds += duration
        return end

    def run(self, duration: float) -> Generator:
        """Process: perform ``duration`` seconds of CPU-bound work.

        Usage: ``yield from host.cpu.run(cost.serialize_time(n))``.
        """
        end = self.reserve(duration)
        if end > self.sim.now:
            yield (end - self.sim.now)
