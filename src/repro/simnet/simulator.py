"""Discrete-event simulation engine.

Every component of the simulated cluster (NICs, TCP stacks, graph
executors, RPC servers) runs as a *process*: a Python generator that
yields waitable :class:`Event` objects.  The engine advances a virtual
clock from event to event, so an entire multi-server training run
executes deterministically inside one OS process.

The design follows the classic process-interaction style (as in SimPy)
but is intentionally minimal: events, timeouts, processes, and a FIFO
:class:`Resource` for modelling contended capacities such as network
links.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for illegal uses of the simulation engine."""


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    *triggers* it, which schedules all registered callbacks at the
    current simulated time.  Yielding a triggered event from a process
    resumes the process immediately (at the same timestamp).
    """

    __slots__ = ("sim", "_value", "_exception", "_triggered", "_processed", "callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        self.callbacks: List[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        """Whether the event has been succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event was triggered successfully."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event will have the exception thrown
        into it at its yield point.
        """
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.sim._schedule_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` once the event has been processed.

        If the event was already processed the callback fires at the
        current simulated time (via a zero-delay schedule) rather than
        being silently dropped.
        """
        if self._processed:
            self.sim.call_at(self.sim.now, lambda: callback(self))
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds in the future."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._schedule_event(self, delay=delay)


class SleepUntil:
    """Yieldable sentinel: sleep until an *absolute* simulated time.

    Unlike a bare-delay yield (which the engine adds to ``sim.now``),
    the wake-up lands at exactly ``when`` — the caller controls the
    float-addition chain that produced the target, so two delays whose
    sum is known in advance can be merged into a single heap event
    without perturbing bit-identical clocks.
    """

    __slots__ = ("when",)

    def __init__(self, when: float) -> None:
        self.when = when


class Process(Event):
    """A running generator coroutine; also an event that fires on return.

    The process's return value (via ``return x`` in the generator)
    becomes the event value, so processes can wait on sub-processes:

    ``result = yield sim.spawn(child())``
    """

    __slots__ = ("generator", "name", "_target", "_wait_token")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        #: invalidates in-flight plain-delay wake-ups on interrupt
        self._wait_token = 0
        # Bootstrap: resume the generator at the current time.
        sim.call_at(sim.now, lambda: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        self._wait_token += 1  # cancel any pending plain-delay wake-up
        target = self._target
        if target is not None and not target._triggered:
            # Detach from the event we were waiting on.
            try:
                target.callbacks.remove(self._on_event)
            except ValueError:
                pass
        self.sim.call_at(self.sim.now, lambda: self._resume(None, Interrupt(cause)))

    def _on_event(self, event: Event) -> None:
        if event._exception is not None:
            self._resume(None, event._exception)
        else:
            self._resume(event._value, None)

    def _resume(self, value: Any, exception: Optional[BaseException]) -> None:
        if self._triggered:
            return
        self._target = None
        try:
            if exception is not None:
                target = self.generator.throw(exception)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except Interrupt:
            # The process let an interrupt escape: treat as clean exit.
            self.succeed(None)
            return
        except BaseException as exc:  # noqa: BLE001 - fault isolation
            # An uncaught exception ends the process; waiters see it.
            self.fail(exc)
            return
        if not isinstance(target, Event):
            # Fast path: a bare non-negative number is a plain timeout.
            # Semantically identical to ``yield sim.timeout(delay)`` —
            # the wake-up lands at the same (time, seq) heap position a
            # Timeout created here would get — but skips allocating the
            # Event and its callback list (the hottest allocation in
            # large-cluster sweeps).
            if type(target) is float or type(target) is int:
                if target >= 0:
                    self._wait_token = token = self._wait_token + 1
                    sim = self.sim
                    sim._seq += 1
                    heapq.heappush(
                        sim._queue,
                        (sim._now + target, sim._seq, None,
                         lambda: self._delay_wake(token)))
                    return
                self.generator.close()
                self.fail(SimulationError(
                    f"process {self.name!r} yielded negative delay {target!r}"))
                return
            if type(target) is SleepUntil:
                # Absolute-time variant of the fast path above: the
                # wake-up lands at exactly ``target.when``.
                when = target.when
                if when >= self.sim._now:
                    self._wait_token = token = self._wait_token + 1
                    sim = self.sim
                    sim._seq += 1
                    heapq.heappush(
                        sim._queue,
                        (when, sim._seq, None,
                         lambda: self._delay_wake(token)))
                    return
                self.generator.close()
                self.fail(SimulationError(
                    f"process {self.name!r} slept until {when!r}, "
                    f"already past {self.sim._now!r}"))
                return
            self.generator.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"))
            return
        if target is self:
            self.generator.close()
            self.fail(SimulationError(f"process {self.name!r} waits on itself"))
            return
        self._target = target
        target.add_callback(self._on_event)

    def _delay_wake(self, token: int) -> None:
        """Resume after a plain-delay yield, unless interrupted since."""
        if token == self._wait_token and not self._triggered:
            self._resume(None, None)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class AllOf(Event):
    """Event that triggers once all given events have triggered."""

    __slots__ = ("_pending", "_values")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        if self._pending == 0:
            self.succeed([])
            return
        self._values: List[Any] = [None] * len(events)
        for i, event in enumerate(events):
            event.add_callback(self._make_cb(i))

    def _make_cb(self, index: int) -> Callable[[Event], None]:
        def cb(event: Event) -> None:
            if self._triggered:
                return
            if event._exception is not None:
                self.fail(event._exception)
                return
            self._values[index] = event._value
            self._pending -= 1
            if self._pending == 0:
                self.succeed(list(self._values))
        return cb


class AnyOf(Event):
    """Event that triggers as soon as one of the given events triggers."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(event._value)


class Simulator:
    """The event loop: a priority queue of (time, seq) ordered events."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[tuple] = []
        self._seq = 0
        self._event_count = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def event_count(self) -> int:
        """Total number of events processed so far (for diagnostics)."""
        return self._event_count

    # -- scheduling primitives -------------------------------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event, None))

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run a plain callback at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self._now}")
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, None, fn))

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Run a plain callback ``delay`` seconds from now."""
        self.call_at(self._now + delay, fn)

    # -- user-facing API ---------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator."""
        if not hasattr(generator, "send"):
            raise SimulationError("spawn() requires a generator (did you call the function?)")
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- running ------------------------------------------------------------------

    def step(self) -> None:
        """Process the single next scheduled entry."""
        when, _seq, event, fn = heapq.heappop(self._queue)
        self._now = when
        self._event_count += 1
        if fn is not None:
            fn()
            return
        assert event is not None
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulated time at which the run stopped.
        """
        processed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        else:
            if until is not None:
                self._now = until
        return self._now

    def run_until_complete(self, process: Process, limit: float = float("inf")) -> Any:
        """Run until ``process`` finishes; return its value.

        Raises :class:`SimulationError` if the queue drains (deadlock)
        or ``limit`` simulated seconds pass before the process ends.
        """
        while not process.triggered:
            if not self._queue:
                raise SimulationError(
                    f"deadlock: process {process.name!r} never completed")
            if self._queue[0][0] > limit:
                raise SimulationError(
                    f"time limit {limit}s exceeded waiting for {process.name!r}")
            self.step()
        return process.value


class Resource:
    """A FIFO resource with integer capacity (e.g. a network link slot).

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ... hold the resource ...
        finally:
            resource.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiting: List[Event] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that fires when the resource is granted."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiting.append(event)
        return event

    def release(self, request: Event) -> None:
        """Release a previously granted request."""
        if not request.triggered:
            # The holder gave up before being granted; drop from queue.
            try:
                self._waiting.remove(request)
                return
            except ValueError:
                raise SimulationError("releasing a request that was never made")
        if self._in_use <= 0:
            raise SimulationError("release without a matching grant")
        if self._waiting:
            nxt = self._waiting.pop(0)
            nxt.succeed()
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO message store (like a queue between processes)."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: List[Any] = []
        self._getters: List[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the oldest waiting getter, if any."""
        if self._getters:
            getter = self._getters.pop(0)
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event yielding the next item (immediately if present)."""
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.pop(0))
        else:
            self._getters.append(event)
        return event

    def fail_all(self, exception: BaseException) -> None:
        """Fail every waiting getter (producer-side fatal error)."""
        getters, self._getters = self._getters, []
        for getter in getters:
            getter.fail(exception)
