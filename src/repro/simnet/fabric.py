"""Graph-based cluster fabric: hosts, ToR/spine switches, capacity links.

The flat :class:`~repro.simnet.topology.Cluster` models the network as
one full-bisection switch: every NIC's egress and ingress pipes are the
only contention points.  That is faithful for the paper's 8-server
testbed but cannot express the dominant effect at production scale —
**oversubscribed uplinks**.  This module adds an explicit fabric graph:

* typed :class:`FabricNode` s (``host``, ``tor``, ``spine``);
* directed :class:`FabricLink` s, each with its own bandwidth-sharing
  :class:`~repro.simnet.nic.Pipe` and per-hop propagation latency;
* deterministic ECMP routing: all equal-cost shortest paths between a
  host pair are enumerated once, and one is picked by a stable hash of
  the (src, dst) pair — the same flow always takes the same path, and
  two runs of the same configuration replay bit-identically;
* :func:`build_fat_tree` — a two-tier leaf/spine (folded-Clos) builder
  parameterized by racks, hosts per rack, and oversubscription ratio.

Division of labour with the NIC
-------------------------------
The first and last hop of every path (``host -> tor`` and
``tor -> host``) are the NIC's access links; their serialization and
fan-in contention are already modelled by the NIC egress/ingress pipes
(or the priority wire schedulers), so :meth:`Fabric.traverse` charges
only their *latency* and reserves capacity exclusively on the **trunk**
links between switches.  Consequently a transfer between two hosts on
the same ToR costs exactly what the flat topology charges (the trunk
portion of its path is empty), and a cluster constructed without a
fabric is bit-identical to one that never imported this module.

Contention model
----------------
A transfer of ``S`` bytes cut-throughs the path: each trunk link books
``S / bandwidth`` seconds of capacity starting no earlier than the
first bit's arrival at that link, the first bit advances by one hop
latency per link, and the last byte cannot leave a link before the
slower of (that link's booking end, its own arrival upstream).  Time a
booking spends waiting for link capacity is *uplink queueing*; it is
accumulated per link and, when a tracer is attached, emitted as
``link_queue`` spans so the stall report can attribute it.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .costmodel import CostModel, DEFAULT_COST_MODEL
from .nic import Pipe


class FabricError(ValueError):
    """Malformed fabric graphs or routing requests."""


NODE_KINDS = ("host", "tor", "spine")


@dataclass(frozen=True)
class FabricNode:
    """One vertex of the fabric graph."""

    name: str
    kind: str  # "host" | "tor" | "spine"

    def __post_init__(self) -> None:
        if self.kind not in NODE_KINDS:
            raise FabricError(f"unknown node kind {self.kind!r}; "
                              f"have {NODE_KINDS}")


class FabricLink:
    """One directed capacity link of the fabric.

    Trunk links (switch-to-switch) own a :class:`Pipe` and genuinely
    contend; host access links exist for routing and accounting but are
    capacity-modelled by the NIC pipes (see the module docstring).
    """

    __slots__ = ("src", "dst", "bandwidth", "latency", "trunk", "pipe",
                 "bytes_carried", "queue_seconds", "transfers")

    def __init__(self, src: FabricNode, dst: FabricNode, bandwidth: float,
                 latency: float) -> None:
        if bandwidth <= 0:
            raise FabricError(f"link {src.name}->{dst.name} needs positive "
                              f"bandwidth, got {bandwidth}")
        if latency < 0:
            raise FabricError(f"link {src.name}->{dst.name} has negative "
                              f"latency {latency}")
        self.src = src
        self.dst = dst
        self.bandwidth = bandwidth
        self.latency = latency
        self.trunk = src.kind != "host" and dst.kind != "host"
        self.pipe = Pipe(bandwidth)
        self.bytes_carried = 0
        self.queue_seconds = 0.0
        self.transfers = 0

    @property
    def name(self) -> str:
        return f"{self.src.name}->{self.dst.name}"

    def busy_seconds(self) -> float:
        """Total booked wire time on this link (trunk links only)."""
        return sum(hi - lo for lo, hi in self.pipe._busy)

    def utilization(self, horizon: float) -> float:
        """Fraction of capacity used over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        return min(self.busy_seconds() / horizon, 1.0)

    def __repr__(self) -> str:
        return (f"FabricLink({self.name}, {self.bandwidth / 1e9:.1f}GB/s, "
                f"{self.latency * 1e6:.2f}us)")


@dataclass(frozen=True)
class PathTiming:
    """Timing of one transfer's passage across a fabric path."""

    #: when the first bit reaches the destination NIC's ingress
    first_bit: float
    #: when the last byte can reach the destination NIC's ingress
    last_byte: float
    #: summed propagation latency of every hop on the path
    latency: float
    #: total time spent queueing for trunk-link capacity
    queueing: float


class Fabric:
    """The cluster fabric graph plus its deterministic router."""

    def __init__(self, cost: Optional[CostModel] = None) -> None:
        self.cost = cost or DEFAULT_COST_MODEL
        self.nodes: Dict[str, FabricNode] = {}
        self.links: Dict[Tuple[str, str], FabricLink] = {}
        self._adjacency: Dict[str, List[str]] = {}
        #: (src, dst) -> chosen path as a tuple of links; lazily filled
        self._route_cache: Dict[Tuple[str, str], Tuple[FabricLink, ...]] = {}
        #: optional tracer; when set, uplink queueing is recorded as
        #: ``link_queue`` spans for the stall-attribution report
        self.tracer = None

    # -- construction ------------------------------------------------------------

    def add_node(self, name: str, kind: str) -> FabricNode:
        if name in self.nodes:
            raise FabricError(f"duplicate fabric node {name!r}")
        node = FabricNode(name=name, kind=kind)
        self.nodes[name] = node
        self._adjacency[name] = []
        return node

    def add_link(self, src: str, dst: str, bandwidth: float,
                 latency: float) -> FabricLink:
        """Add one directed link (call twice for a full-duplex cable)."""
        if src not in self.nodes or dst not in self.nodes:
            missing = src if src not in self.nodes else dst
            raise FabricError(f"link endpoint {missing!r} is not a node")
        if (src, dst) in self.links:
            raise FabricError(f"duplicate link {src}->{dst}")
        link = FabricLink(self.nodes[src], self.nodes[dst], bandwidth, latency)
        self.links[(src, dst)] = link
        self._adjacency[src].append(dst)
        self._route_cache.clear()
        return link

    def add_duplex(self, a: str, b: str, bandwidth: float,
                   latency: float) -> Tuple[FabricLink, FabricLink]:
        return (self.add_link(a, b, bandwidth, latency),
                self.add_link(b, a, bandwidth, latency))

    def hosts(self) -> List[str]:
        return [n.name for n in self.nodes.values() if n.kind == "host"]

    def trunk_links(self) -> List[FabricLink]:
        return [link for link in self.links.values() if link.trunk]

    # -- routing ------------------------------------------------------------------

    def equal_cost_paths(self, src: str,
                         dst: str) -> List[Tuple[FabricLink, ...]]:
        """Every shortest path from ``src`` to ``dst``, in stable order.

        BFS layering followed by a deterministic depth-first expansion
        over predecessor lists, so the enumeration order depends only
        on graph construction order — never on hashing or set order.
        """
        if src not in self.nodes or dst not in self.nodes:
            missing = src if src not in self.nodes else dst
            raise FabricError(f"no fabric node named {missing!r}")
        if src == dst:
            return []
        # BFS from src recording each node's shortest-path predecessors.
        depth: Dict[str, int] = {src: 0}
        preds: Dict[str, List[str]] = {}
        frontier = deque([src])
        while frontier:
            here = frontier.popleft()
            if here == dst:
                continue
            for neighbour in self._adjacency[here]:
                if neighbour not in depth:
                    depth[neighbour] = depth[here] + 1
                    preds[neighbour] = [here]
                    frontier.append(neighbour)
                elif depth[neighbour] == depth[here] + 1:
                    preds[neighbour].append(here)
        if dst not in depth:
            raise FabricError(f"no fabric path from {src!r} to {dst!r}")
        # Expand predecessor DAG into explicit paths (stable order).
        paths: List[Tuple[FabricLink, ...]] = []

        def expand(node: str, suffix: List[FabricLink]) -> None:
            if node == src:
                paths.append(tuple(reversed(suffix)))
                return
            for pred in preds[node]:
                expand(pred, suffix + [self.links[(pred, node)]])

        expand(dst, [])
        return paths

    def route(self, src: str, dst: str) -> Tuple[FabricLink, ...]:
        """The deterministic ECMP path for the (src, dst) host pair.

        All equal-cost shortest paths are enumerated once; the flow's
        path index is ``crc32(src|dst) % count`` — stable across runs
        and across Python processes (no ``hash()`` randomization).
        """
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        paths = self.equal_cost_paths(src, dst)
        if not paths:
            chosen: Tuple[FabricLink, ...] = ()
        else:
            index = zlib.crc32(f"{src}|{dst}".encode()) % len(paths)
            chosen = paths[index]
        self._route_cache[key] = chosen
        return chosen

    def path_latency(self, src: str, dst: str) -> Optional[float]:
        """Summed hop latency of the routed path, or None when the pair
        has no fabric path (same host, or hosts this fabric ignores)."""
        if src == dst or src not in self.nodes or dst not in self.nodes:
            return None
        links = self.route(src, dst)
        if not links:
            return None
        return sum(link.latency for link in links)

    # -- transfer timing ------------------------------------------------------------

    def traverse(self, src: str, dst: str, start: float, egress_end: float,
                 size: int) -> Optional[PathTiming]:
        """Charge one transfer's passage from src NIC egress to dst ingress.

        ``start``/``egress_end`` are the sender NIC's egress booking
        (first/last byte leaving the host).  Returns None when the pair
        has no fabric path to charge (same host, or hosts this fabric
        does not know), in which case the caller keeps the flat-topology
        timing.  Trunk links book real capacity; access links contribute
        latency only (their capacity *is* the NIC pipe).
        """
        if src == dst or src not in self.nodes or dst not in self.nodes:
            return None
        links = self.route(src, dst)
        if not links:
            return None
        total_latency = 0.0
        queueing = 0.0
        first = start
        ready = egress_end
        for link in links:
            link.bytes_carried += size
            link.transfers += 1
            if link.trunk:
                booked_start, booked_end = link.pipe.reserve(first, size)
                waited = booked_start - first
                if waited > 0:
                    queueing += waited
                    link.queue_seconds += waited
                    if self.tracer is not None:
                        self.tracer.record(
                            "link_queue", f"{size}B queued", "fabric",
                            f"link:{link.name}", first, booked_start,
                            args={"src": src, "dst": dst, "nbytes": size})
                first = booked_start + link.latency
                ready = max(booked_end, ready) + link.latency
            else:
                first += link.latency
                ready += link.latency
            total_latency += link.latency
        return PathTiming(first_bit=first, last_byte=ready,
                          latency=total_latency, queueing=queueing)

    # -- reporting -------------------------------------------------------------------

    def link_stats(self, horizon: Optional[float] = None) -> Dict[str, Dict]:
        """Per-trunk-link counters (bytes, queueing, utilization)."""
        out: Dict[str, Dict] = {}
        for link in self.trunk_links():
            stats = {
                "bytes_carried": link.bytes_carried,
                "transfers": link.transfers,
                "queue_seconds": link.queue_seconds,
                "busy_seconds": link.busy_seconds(),
            }
            if horizon is not None:
                stats["utilization"] = link.utilization(horizon)
            out[link.name] = stats
        return out

    def __repr__(self) -> str:
        kinds = {kind: sum(1 for n in self.nodes.values() if n.kind == kind)
                 for kind in NODE_KINDS}
        return (f"Fabric({kinds['host']} hosts, {kinds['tor']} ToRs, "
                f"{kinds['spine']} spines, {len(self.links)} links)")


class SwitchAggregator:
    """Bounded aggregation engine of one programmable switch.

    Models the scarce resource of NetReduce-style in-network reduction:
    a switch can hold only ``slots`` chunk-sized aggregation buffers at
    once.  A reduction *reserves* a slot for a chunk's whole residency
    (contributions streaming in, combine, result streaming out) and the
    plane spills chunks to the host-collective path when no slot is
    free — the backpressure the paper's switch prototype exerts via
    credits.
    """

    __slots__ = ("name", "slots", "busy", "peak_occupancy",
                 "chunks_aggregated", "bytes_aggregated", "spills")

    def __init__(self, name: str, slots: int) -> None:
        if slots < 1:
            raise FabricError(f"switch {name!r} needs at least one "
                              f"aggregation slot, got {slots}")
        self.name = name
        self.slots = slots
        self.busy = 0
        self.peak_occupancy = 0
        self.chunks_aggregated = 0
        self.bytes_aggregated = 0
        self.spills = 0

    def try_acquire(self) -> bool:
        if self.busy >= self.slots:
            self.spills += 1
            return False
        self.busy += 1
        if self.busy > self.peak_occupancy:
            self.peak_occupancy = self.busy
        return True

    def release(self) -> None:
        if self.busy <= 0:
            raise FabricError(f"switch {self.name!r} released an idle slot")
        self.busy -= 1

    def stats(self) -> Dict[str, int]:
        return {
            "slots": self.slots,
            "peak_occupancy": self.peak_occupancy,
            "chunks_aggregated": self.chunks_aggregated,
            "bytes_aggregated": self.bytes_aggregated,
            "spills": self.spills,
        }


class _GroupPlan:
    """Static layout of one in-network reduction group."""

    __slots__ = ("group_id", "member_hosts", "hosts_per_rack", "racks",
                 "tors", "member_rack", "deliver", "spines")

    def __init__(self, group_id: str, member_hosts: Sequence[str],
                 hosts_per_rack: int, racks: List[List[int]],
                 tors: List[str], spines: List[str], deliver) -> None:
        self.group_id = group_id
        self.member_hosts = list(member_hosts)
        self.hosts_per_rack = hosts_per_rack
        self.racks = racks
        self.tors = tors                    # tor name per rack index
        self.spines = spines                # spine names (striping pool)
        self.deliver = deliver
        self.member_rack = {}
        for rack_index, members in enumerate(racks):
            for m in members:
                self.member_rack[m] = rack_index

    def spine_for(self, chunk_index: int) -> str:
        index = zlib.crc32(
            f"{self.group_id}|{chunk_index}".encode()) % len(self.spines)
        return self.spines[index]

    def switch_names(self) -> List[str]:
        names = list(self.tors)
        if len(self.racks) > 1:
            names.extend(self.spines)
        return names


class _ChunkState:
    """In-flight aggregation state of one (round, chunk)."""

    __slots__ = ("arrivals", "holds")

    def __init__(self) -> None:
        #: rack index -> list of (member_index, payload, arrival_time)
        self.arrivals: Dict[int, List[Tuple[int, object, float]]] = {}
        #: switch names whose slot this chunk holds
        self.holds: List[str] = []


class AggregationPlane:
    """Switch-side model of NetReduce-style in-network reduction.

    Owns one :class:`SwitchAggregator` per ToR/spine and turns member
    chunk arrivals into a reduced result delivered back to every
    member:

    1. the sending protocol *reserves* a chunk — one slot on every ToR
       the group spans plus one on the striped spine; failure spills
       that chunk to the host-collective path (backpressure);
    2. each member's chunk arrival is announced via
       :meth:`chunk_arrival`; when a rack's last contribution lands,
       its partial is ready ``switch_agg_latency`` later;
    3. multi-rack groups book the ToR->spine trunk pipe for each rack
       partial, combine at the spine, and book the spine->ToR pipes for
       the multicast down; the group's ``deliver`` callback fires once
       per member with the time the result clears that member's ToR
       (the host access hop and ingress booking stay the caller's job,
       exactly as :meth:`Fabric.traverse` divides labour with the NIC).

    Numeric payloads are combined in member-index order within a rack
    and rack-index order across racks — the same order the host-tree
    fallback uses, so a spilled chunk is bit-identical to a switched
    one.
    """

    def __init__(self, sim, fabric: Fabric, cost: Optional[CostModel] = None,
                 metrics=None, fault_plane=None) -> None:
        self.sim = sim
        self.fabric = fabric
        self.cost = cost or fabric.cost
        self.metrics = metrics
        self.fault_plane = fault_plane
        self.aggregators: Dict[str, SwitchAggregator] = {}
        for node in fabric.nodes.values():
            if node.kind in ("tor", "spine"):
                self.aggregators[node.name] = SwitchAggregator(
                    node.name, self.cost.switch_agg_slots)
        self._groups: Dict[str, _GroupPlan] = {}
        self._chunks: Dict[Tuple[str, int, int], _ChunkState] = {}
        #: chunks denied a slot and spilled to the host path, per group
        self.spilled_chunks: Dict[str, int] = {}
        #: groups degraded to the host path by a switch failure
        self.degraded_groups: List[str] = []

    # -- group setup -------------------------------------------------------------

    def register_group(self, group_id: str, member_hosts: Sequence[str],
                       hosts_per_rack: int, deliver) -> None:
        """Declare a reduction group and its result callback.

        ``deliver(chunk_index=..., round_id=..., members=..., ready=...,
        payload=..., size=...)`` fires once per rack when the reduced
        chunk clears that rack's ToR: ``members`` is the list of member
        indices behind the ToR, ``ready`` the time the chunk is
        available at the ToR's downlink ports, and ``payload`` the
        combined numpy array (None when any contribution was virtual).
        """
        if group_id in self._groups:
            raise FabricError(f"duplicate reduction group {group_id!r}")
        for host in member_hosts:
            node = self.fabric.nodes.get(host)
            if node is None or node.kind != "host":
                raise FabricError(f"group member {host!r} is not a fabric "
                                  f"host")
        racks = rack_groups(len(member_hosts), hosts_per_rack)
        tors = []
        for members in racks:
            first = member_hosts[members[0]]
            tor = next((n for n in self.fabric._adjacency[first]
                        if self.fabric.nodes[n].kind == "tor"), None)
            if tor is None:
                raise FabricError(f"host {first!r} has no ToR uplink")
            tors.append(tor)
        spines = [n.name for n in self.fabric.nodes.values()
                  if n.kind == "spine"]
        if len(racks) > 1 and not spines:
            raise FabricError(f"group {group_id!r} spans {len(racks)} racks "
                              f"but the fabric has no spine tier")
        self._groups[group_id] = _GroupPlan(
            group_id, member_hosts, hosts_per_rack, racks, tors, spines,
            deliver)

    def healthy(self, group_id: str, now: float) -> bool:
        """Whether every switch the group relies on can aggregate now.

        A failed switch degrades the *whole group* to the host path
        (the protocol re-checks per round, so recovery windows heal).
        """
        plan = self._groups[group_id]
        if self.fault_plane is None:
            return True
        for name in plan.switch_names():
            if self.fault_plane.switch_failed(name, now):
                if group_id not in self.degraded_groups:
                    self.degraded_groups.append(group_id)
                return False
        return True

    # -- chunk lifecycle ----------------------------------------------------------

    def reserve_chunk(self, group_id: str, round_id: int, chunk_index: int,
                      size: int) -> bool:
        """Acquire aggregation slots for one chunk, all switches or none.

        Called before the members post the chunk; False means the
        switches are out of slots and this chunk must take the
        host-collective path (backpressure spill).
        """
        plan = self._groups[group_id]
        needed = list(plan.tors)
        if len(plan.racks) > 1:
            needed.append(plan.spine_for(chunk_index))
        acquired: List[str] = []
        for name in needed:
            if self.aggregators[name].try_acquire():
                acquired.append(name)
            else:
                for held in acquired:
                    self.aggregators[held].release()
                self.spilled_chunks[group_id] = (
                    self.spilled_chunks.get(group_id, 0) + 1)
                return False
        state = _ChunkState()
        state.holds = acquired
        self._chunks[(group_id, round_id, chunk_index)] = state
        for name in needed:
            agg = self.aggregators[name]
            agg.chunks_aggregated += 1
            agg.bytes_aggregated += size
        return True

    def chunk_arrival(self, group_id: str, round_id: int, chunk_index: int,
                      member_index: int, size: int, payload,
                      now: float) -> None:
        """One member's contribution reached its ToR at ``now``."""
        plan = self._groups[group_id]
        key = (group_id, round_id, chunk_index)
        state = self._chunks.get(key)
        if state is None:
            raise FabricError(f"chunk {key!r} arrived without a reservation")
        rack = plan.member_rack[member_index]
        state.arrivals.setdefault(rack, []).append(
            (member_index, payload, now))
        total = sum(len(v) for v in state.arrivals.values())
        if total == len(plan.member_hosts):
            del self._chunks[key]
            self._complete_chunk(plan, round_id, chunk_index, size, state)

    def _complete_chunk(self, plan: _GroupPlan, round_id: int,
                        chunk_index: int, size: int,
                        state: _ChunkState) -> None:
        cost = self.cost
        sim = self.sim
        # Rack partials: member-index order, ready one combine latency
        # after the rack's last contribution.
        partials: List[Tuple[int, object, float]] = []
        for rack_index in range(len(plan.racks)):
            entries = sorted(state.arrivals[rack_index])
            payload = self._combine([e[1] for e in entries])
            ready = max(e[2] for e in entries) + cost.switch_agg_latency
            partials.append((rack_index, payload, ready))

        if len(plan.racks) == 1:
            rack_index, payload, ready = partials[0]
            self._release_at(state.holds, ready)
            plan.deliver(chunk_index=chunk_index, round_id=round_id,
                         members=plan.racks[0], ready=ready,
                         payload=payload, size=size)
            return

        # Up: each rack partial crosses its ToR->spine trunk link.  The
        # ToR's aggregation slot frees as soon as the partial has left
        # it — the down-leg multicast streams through the egress ports
        # without touching accumulator memory.
        spine = plan.spine_for(chunk_index)
        arrivals: List[Tuple[int, object, float]] = []
        for rack_index, payload, ready in partials:
            link = self.fabric.links[(plan.tors[rack_index], spine)]
            start, end = self._book_trunk(link, ready, size)
            arrivals.append((rack_index, payload, end + link.latency))
            self._record(link, size, start, end + link.latency)
            self._release_one_at(plan.tors[rack_index], end, state)
        combined = self._combine([p for _, p, _ in sorted(arrivals)])
        result_ready = (max(t for _, _, t in arrivals)
                        + cost.switch_agg_latency)

        # Down: the spine multicasts the result over every spine->ToR
        # trunk; a rack's members see it once it clears their ToR.
        spine_free = result_ready
        for rack_index in range(len(plan.racks)):
            link = self.fabric.links[(spine, plan.tors[rack_index])]
            start, end = self._book_trunk(link, result_ready, size)
            at_tor = end + link.latency
            self._record(link, size, start, at_tor)
            spine_free = max(spine_free, end)
            plan.deliver(chunk_index=chunk_index, round_id=round_id,
                         members=plan.racks[rack_index], ready=at_tor,
                         payload=combined, size=size)
        self._release_one_at(spine, spine_free, state)

    # -- helpers ------------------------------------------------------------------

    def _book_trunk(self, link: FabricLink, earliest: float,
                    size: int) -> Tuple[float, float]:
        start, end = link.pipe.reserve(earliest, size)
        link.bytes_carried += size
        link.transfers += 1
        waited = start - earliest
        if waited > 0:
            link.queue_seconds += waited
            if self.fabric.tracer is not None:
                self.fabric.tracer.record(
                    "link_queue", f"{size}B queued", "fabric",
                    f"link:{link.name}", earliest, start,
                    args={"src": link.src.name, "dst": link.dst.name,
                          "nbytes": size})
        return start, end

    def _record(self, link: FabricLink, size: int, start: float,
                end: float) -> None:
        if self.metrics is not None:
            self.metrics.record_transfer(
                "RDMA_WRITE", link.src.name, link.dst.name, size,
                start, end, role="in-network-trunk")

    @staticmethod
    def _combine(payloads: List[object]):
        """Element-wise sum, None when any contribution is virtual."""
        if any(p is None for p in payloads):
            return None
        result = payloads[0].copy()
        for payload in payloads[1:]:
            result += payload
        return result

    def _release_at(self, names: List[str], when: float) -> None:
        # A lossy-fabric retransmit can complete a chunk *after* other
        # racks' partials already cleared their switch: their slots
        # were free in the past, so a late discovery releases now.
        when = max(when, self.sim.now)
        for name in list(names):
            self.sim.call_at(when, self.aggregators[name].release)

    def _release_one_at(self, name: str, when: float,
                        state: _ChunkState) -> None:
        if name in state.holds:
            state.holds.remove(name)
            self.sim.call_at(max(when, self.sim.now),
                             self.aggregators[name].release)

    # -- reporting ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-able per-switch and per-group aggregation counters."""
        return {
            "switches": {name: agg.stats()
                         for name, agg in sorted(self.aggregators.items())},
            "spilled_chunks": dict(self.spilled_chunks),
            "degraded_groups": list(self.degraded_groups),
        }


def rack_of(host_index: int, hosts_per_rack: int) -> int:
    """Rack index of the ``host_index``-th host (fill racks in order)."""
    if hosts_per_rack < 1:
        raise FabricError("hosts_per_rack must be at least 1")
    return host_index // hosts_per_rack


def rack_groups(num_hosts: int, hosts_per_rack: int) -> List[List[int]]:
    """Host indices grouped by rack, e.g. ``[[0,1],[2,3]]``."""
    if num_hosts < 1:
        raise FabricError("need at least one host")
    groups: List[List[int]] = []
    for i in range(num_hosts):
        rack = rack_of(i, hosts_per_rack)
        if rack == len(groups):
            groups.append([])
        groups[rack].append(i)
    return groups


def build_fat_tree(num_hosts: int, hosts_per_rack: int,
                   oversubscription: float = 1.0,
                   num_spines: Optional[int] = None,
                   cost: Optional[CostModel] = None,
                   name_prefix: str = "server") -> Fabric:
    """A two-tier leaf/spine fabric (the folded-Clos "fat tree").

    Every host gets a full-rate access link to its rack's ToR; each ToR
    connects to every spine.  The rack's aggregate uplink capacity is
    ``hosts_per_rack * host_bandwidth / oversubscription``, split
    evenly across the spines — so ``oversubscription=4`` means four
    hosts' worth of traffic contend for one host's worth of uplink, the
    classic cost-reduced datacenter shape.  Hop latencies split the
    cost model's one-way ``rdma_base_latency`` in half per hop, so an
    intra-rack transfer (2 hops) costs exactly the flat topology's
    latency and an inter-rack one (4 hops) costs twice that.
    """
    cost = cost or DEFAULT_COST_MODEL
    if num_hosts < 1:
        raise FabricError("need at least one host")
    if hosts_per_rack < 1:
        raise FabricError("hosts_per_rack must be at least 1")
    if oversubscription < 1.0:
        raise FabricError(f"oversubscription must be >= 1, "
                          f"got {oversubscription}")
    num_racks = (num_hosts + hosts_per_rack - 1) // hosts_per_rack
    if num_spines is None:
        num_spines = max(1, min(4, num_racks // 2)) if num_racks > 1 else 1
    if num_spines < 1:
        raise FabricError("need at least one spine")

    fabric = Fabric(cost=cost)
    host_bw = cost.rdma_bandwidth
    hop_latency = cost.rdma_base_latency / 2.0
    uplink_bw = hosts_per_rack * host_bw / (oversubscription * num_spines)

    for s in range(num_spines):
        fabric.add_node(f"spine{s}", "spine")
    for r in range(num_racks):
        tor = f"tor{r}"
        fabric.add_node(tor, "tor")
        for s in range(num_spines):
            fabric.add_duplex(tor, f"spine{s}", uplink_bw, hop_latency)
    for i in range(num_hosts):
        host = f"{name_prefix}{i}"
        fabric.add_node(host, "host")
        fabric.add_duplex(host, f"tor{rack_of(i, hosts_per_rack)}",
                          host_bw, hop_latency)
    return fabric
