"""Graph-based cluster fabric: hosts, ToR/spine switches, capacity links.

The flat :class:`~repro.simnet.topology.Cluster` models the network as
one full-bisection switch: every NIC's egress and ingress pipes are the
only contention points.  That is faithful for the paper's 8-server
testbed but cannot express the dominant effect at production scale —
**oversubscribed uplinks**.  This module adds an explicit fabric graph:

* typed :class:`FabricNode` s (``host``, ``tor``, ``spine``);
* directed :class:`FabricLink` s, each with its own bandwidth-sharing
  :class:`~repro.simnet.nic.Pipe` and per-hop propagation latency;
* deterministic ECMP routing: all equal-cost shortest paths between a
  host pair are enumerated once, and one is picked by a stable hash of
  the (src, dst) pair — the same flow always takes the same path, and
  two runs of the same configuration replay bit-identically;
* :func:`build_fat_tree` — a two-tier leaf/spine (folded-Clos) builder
  parameterized by racks, hosts per rack, and oversubscription ratio.

Division of labour with the NIC
-------------------------------
The first and last hop of every path (``host -> tor`` and
``tor -> host``) are the NIC's access links; their serialization and
fan-in contention are already modelled by the NIC egress/ingress pipes
(or the priority wire schedulers), so :meth:`Fabric.traverse` charges
only their *latency* and reserves capacity exclusively on the **trunk**
links between switches.  Consequently a transfer between two hosts on
the same ToR costs exactly what the flat topology charges (the trunk
portion of its path is empty), and a cluster constructed without a
fabric is bit-identical to one that never imported this module.

Contention model
----------------
A transfer of ``S`` bytes cut-throughs the path: each trunk link books
``S / bandwidth`` seconds of capacity starting no earlier than the
first bit's arrival at that link, the first bit advances by one hop
latency per link, and the last byte cannot leave a link before the
slower of (that link's booking end, its own arrival upstream).  Time a
booking spends waiting for link capacity is *uplink queueing*; it is
accumulated per link and, when a tracer is attached, emitted as
``link_queue`` spans so the stall report can attribute it.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .costmodel import CostModel, DEFAULT_COST_MODEL
from .nic import Pipe


class FabricError(ValueError):
    """Malformed fabric graphs or routing requests."""


NODE_KINDS = ("host", "tor", "spine")


@dataclass(frozen=True)
class FabricNode:
    """One vertex of the fabric graph."""

    name: str
    kind: str  # "host" | "tor" | "spine"

    def __post_init__(self) -> None:
        if self.kind not in NODE_KINDS:
            raise FabricError(f"unknown node kind {self.kind!r}; "
                              f"have {NODE_KINDS}")


class FabricLink:
    """One directed capacity link of the fabric.

    Trunk links (switch-to-switch) own a :class:`Pipe` and genuinely
    contend; host access links exist for routing and accounting but are
    capacity-modelled by the NIC pipes (see the module docstring).
    """

    __slots__ = ("src", "dst", "bandwidth", "latency", "trunk", "pipe",
                 "bytes_carried", "queue_seconds", "transfers")

    def __init__(self, src: FabricNode, dst: FabricNode, bandwidth: float,
                 latency: float) -> None:
        if bandwidth <= 0:
            raise FabricError(f"link {src.name}->{dst.name} needs positive "
                              f"bandwidth, got {bandwidth}")
        if latency < 0:
            raise FabricError(f"link {src.name}->{dst.name} has negative "
                              f"latency {latency}")
        self.src = src
        self.dst = dst
        self.bandwidth = bandwidth
        self.latency = latency
        self.trunk = src.kind != "host" and dst.kind != "host"
        self.pipe = Pipe(bandwidth)
        self.bytes_carried = 0
        self.queue_seconds = 0.0
        self.transfers = 0

    @property
    def name(self) -> str:
        return f"{self.src.name}->{self.dst.name}"

    def busy_seconds(self) -> float:
        """Total booked wire time on this link (trunk links only)."""
        return sum(hi - lo for lo, hi in self.pipe._busy)

    def utilization(self, horizon: float) -> float:
        """Fraction of capacity used over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        return min(self.busy_seconds() / horizon, 1.0)

    def __repr__(self) -> str:
        return (f"FabricLink({self.name}, {self.bandwidth / 1e9:.1f}GB/s, "
                f"{self.latency * 1e6:.2f}us)")


@dataclass(frozen=True)
class PathTiming:
    """Timing of one transfer's passage across a fabric path."""

    #: when the first bit reaches the destination NIC's ingress
    first_bit: float
    #: when the last byte can reach the destination NIC's ingress
    last_byte: float
    #: summed propagation latency of every hop on the path
    latency: float
    #: total time spent queueing for trunk-link capacity
    queueing: float


class Fabric:
    """The cluster fabric graph plus its deterministic router."""

    def __init__(self, cost: Optional[CostModel] = None) -> None:
        self.cost = cost or DEFAULT_COST_MODEL
        self.nodes: Dict[str, FabricNode] = {}
        self.links: Dict[Tuple[str, str], FabricLink] = {}
        self._adjacency: Dict[str, List[str]] = {}
        #: (src, dst) -> chosen path as a tuple of links; lazily filled
        self._route_cache: Dict[Tuple[str, str], Tuple[FabricLink, ...]] = {}
        #: optional tracer; when set, uplink queueing is recorded as
        #: ``link_queue`` spans for the stall-attribution report
        self.tracer = None

    # -- construction ------------------------------------------------------------

    def add_node(self, name: str, kind: str) -> FabricNode:
        if name in self.nodes:
            raise FabricError(f"duplicate fabric node {name!r}")
        node = FabricNode(name=name, kind=kind)
        self.nodes[name] = node
        self._adjacency[name] = []
        return node

    def add_link(self, src: str, dst: str, bandwidth: float,
                 latency: float) -> FabricLink:
        """Add one directed link (call twice for a full-duplex cable)."""
        if src not in self.nodes or dst not in self.nodes:
            missing = src if src not in self.nodes else dst
            raise FabricError(f"link endpoint {missing!r} is not a node")
        if (src, dst) in self.links:
            raise FabricError(f"duplicate link {src}->{dst}")
        link = FabricLink(self.nodes[src], self.nodes[dst], bandwidth, latency)
        self.links[(src, dst)] = link
        self._adjacency[src].append(dst)
        self._route_cache.clear()
        return link

    def add_duplex(self, a: str, b: str, bandwidth: float,
                   latency: float) -> Tuple[FabricLink, FabricLink]:
        return (self.add_link(a, b, bandwidth, latency),
                self.add_link(b, a, bandwidth, latency))

    def hosts(self) -> List[str]:
        return [n.name for n in self.nodes.values() if n.kind == "host"]

    def trunk_links(self) -> List[FabricLink]:
        return [link for link in self.links.values() if link.trunk]

    # -- routing ------------------------------------------------------------------

    def equal_cost_paths(self, src: str,
                         dst: str) -> List[Tuple[FabricLink, ...]]:
        """Every shortest path from ``src`` to ``dst``, in stable order.

        BFS layering followed by a deterministic depth-first expansion
        over predecessor lists, so the enumeration order depends only
        on graph construction order — never on hashing or set order.
        """
        if src not in self.nodes or dst not in self.nodes:
            missing = src if src not in self.nodes else dst
            raise FabricError(f"no fabric node named {missing!r}")
        if src == dst:
            return []
        # BFS from src recording each node's shortest-path predecessors.
        depth: Dict[str, int] = {src: 0}
        preds: Dict[str, List[str]] = {}
        frontier = deque([src])
        while frontier:
            here = frontier.popleft()
            if here == dst:
                continue
            for neighbour in self._adjacency[here]:
                if neighbour not in depth:
                    depth[neighbour] = depth[here] + 1
                    preds[neighbour] = [here]
                    frontier.append(neighbour)
                elif depth[neighbour] == depth[here] + 1:
                    preds[neighbour].append(here)
        if dst not in depth:
            raise FabricError(f"no fabric path from {src!r} to {dst!r}")
        # Expand predecessor DAG into explicit paths (stable order).
        paths: List[Tuple[FabricLink, ...]] = []

        def expand(node: str, suffix: List[FabricLink]) -> None:
            if node == src:
                paths.append(tuple(reversed(suffix)))
                return
            for pred in preds[node]:
                expand(pred, suffix + [self.links[(pred, node)]])

        expand(dst, [])
        return paths

    def route(self, src: str, dst: str) -> Tuple[FabricLink, ...]:
        """The deterministic ECMP path for the (src, dst) host pair.

        All equal-cost shortest paths are enumerated once; the flow's
        path index is ``crc32(src|dst) % count`` — stable across runs
        and across Python processes (no ``hash()`` randomization).
        """
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        paths = self.equal_cost_paths(src, dst)
        if not paths:
            chosen: Tuple[FabricLink, ...] = ()
        else:
            index = zlib.crc32(f"{src}|{dst}".encode()) % len(paths)
            chosen = paths[index]
        self._route_cache[key] = chosen
        return chosen

    def path_latency(self, src: str, dst: str) -> Optional[float]:
        """Summed hop latency of the routed path, or None when the pair
        has no fabric path (same host, or hosts this fabric ignores)."""
        if src == dst or src not in self.nodes or dst not in self.nodes:
            return None
        links = self.route(src, dst)
        if not links:
            return None
        return sum(link.latency for link in links)

    # -- transfer timing ------------------------------------------------------------

    def traverse(self, src: str, dst: str, start: float, egress_end: float,
                 size: int) -> Optional[PathTiming]:
        """Charge one transfer's passage from src NIC egress to dst ingress.

        ``start``/``egress_end`` are the sender NIC's egress booking
        (first/last byte leaving the host).  Returns None when the pair
        has no fabric path to charge (same host, or hosts this fabric
        does not know), in which case the caller keeps the flat-topology
        timing.  Trunk links book real capacity; access links contribute
        latency only (their capacity *is* the NIC pipe).
        """
        if src == dst or src not in self.nodes or dst not in self.nodes:
            return None
        links = self.route(src, dst)
        if not links:
            return None
        total_latency = 0.0
        queueing = 0.0
        first = start
        ready = egress_end
        for link in links:
            link.bytes_carried += size
            link.transfers += 1
            if link.trunk:
                booked_start, booked_end = link.pipe.reserve(first, size)
                waited = booked_start - first
                if waited > 0:
                    queueing += waited
                    link.queue_seconds += waited
                    if self.tracer is not None:
                        self.tracer.record(
                            "link_queue", f"{size}B queued", "fabric",
                            f"link:{link.name}", first, booked_start,
                            args={"src": src, "dst": dst, "nbytes": size})
                first = booked_start + link.latency
                ready = max(booked_end, ready) + link.latency
            else:
                first += link.latency
                ready += link.latency
            total_latency += link.latency
        return PathTiming(first_bit=first, last_byte=ready,
                          latency=total_latency, queueing=queueing)

    # -- reporting -------------------------------------------------------------------

    def link_stats(self, horizon: Optional[float] = None) -> Dict[str, Dict]:
        """Per-trunk-link counters (bytes, queueing, utilization)."""
        out: Dict[str, Dict] = {}
        for link in self.trunk_links():
            stats = {
                "bytes_carried": link.bytes_carried,
                "transfers": link.transfers,
                "queue_seconds": link.queue_seconds,
                "busy_seconds": link.busy_seconds(),
            }
            if horizon is not None:
                stats["utilization"] = link.utilization(horizon)
            out[link.name] = stats
        return out

    def __repr__(self) -> str:
        kinds = {kind: sum(1 for n in self.nodes.values() if n.kind == kind)
                 for kind in NODE_KINDS}
        return (f"Fabric({kinds['host']} hosts, {kinds['tor']} ToRs, "
                f"{kinds['spine']} spines, {len(self.links)} links)")


def rack_of(host_index: int, hosts_per_rack: int) -> int:
    """Rack index of the ``host_index``-th host (fill racks in order)."""
    if hosts_per_rack < 1:
        raise FabricError("hosts_per_rack must be at least 1")
    return host_index // hosts_per_rack


def rack_groups(num_hosts: int, hosts_per_rack: int) -> List[List[int]]:
    """Host indices grouped by rack, e.g. ``[[0,1],[2,3]]``."""
    if num_hosts < 1:
        raise FabricError("need at least one host")
    groups: List[List[int]] = []
    for i in range(num_hosts):
        rack = rack_of(i, hosts_per_rack)
        if rack == len(groups):
            groups.append([])
        groups[rack].append(i)
    return groups


def build_fat_tree(num_hosts: int, hosts_per_rack: int,
                   oversubscription: float = 1.0,
                   num_spines: Optional[int] = None,
                   cost: Optional[CostModel] = None,
                   name_prefix: str = "server") -> Fabric:
    """A two-tier leaf/spine fabric (the folded-Clos "fat tree").

    Every host gets a full-rate access link to its rack's ToR; each ToR
    connects to every spine.  The rack's aggregate uplink capacity is
    ``hosts_per_rack * host_bandwidth / oversubscription``, split
    evenly across the spines — so ``oversubscription=4`` means four
    hosts' worth of traffic contend for one host's worth of uplink, the
    classic cost-reduced datacenter shape.  Hop latencies split the
    cost model's one-way ``rdma_base_latency`` in half per hop, so an
    intra-rack transfer (2 hops) costs exactly the flat topology's
    latency and an inter-rack one (4 hops) costs twice that.
    """
    cost = cost or DEFAULT_COST_MODEL
    if num_hosts < 1:
        raise FabricError("need at least one host")
    if hosts_per_rack < 1:
        raise FabricError("hosts_per_rack must be at least 1")
    if oversubscription < 1.0:
        raise FabricError(f"oversubscription must be >= 1, "
                          f"got {oversubscription}")
    num_racks = (num_hosts + hosts_per_rack - 1) // hosts_per_rack
    if num_spines is None:
        num_spines = max(1, min(4, num_racks // 2)) if num_racks > 1 else 1
    if num_spines < 1:
        raise FabricError("need at least one spine")

    fabric = Fabric(cost=cost)
    host_bw = cost.rdma_bandwidth
    hop_latency = cost.rdma_base_latency / 2.0
    uplink_bw = hosts_per_rack * host_bw / (oversubscription * num_spines)

    for s in range(num_spines):
        fabric.add_node(f"spine{s}", "spine")
    for r in range(num_racks):
        tor = f"tor{r}"
        fabric.add_node(tor, "tor")
        for s in range(num_spines):
            fabric.add_duplex(tor, f"spine{s}", uplink_bw, hop_latency)
    for i in range(num_hosts):
        host = f"{name_prefix}{i}"
        fabric.add_node(host, "host")
        fabric.add_duplex(host, f"tor{rack_of(i, hosts_per_rack)}",
                          host_bw, hop_latency)
    return fabric
