"""Gradient bucketization/fusion for collective reduction.

Figure 7 of the paper shows the tensor-size distribution is dominated
by small tensors (>50% of variable tensors are under 10KB) while a few
large matrices hold almost all the bytes.  Running one allreduce per
variable would pay the per-transfer toll (verb posting, flag polling,
scheduling) hundreds of times per step for tensors that are mostly
tiny, so the collectives subsystem coalesces gradients into
**fusion buffers**: consecutive gradients (in backward, i.e.
gradient-ready, order) are packed into flat buffers of at most
``fusion_bytes`` and each buffer is reduced as one collective.

A single gradient larger than the fusion budget cannot be split here
(the chunking inside the collective handles slicing); it *spills* into
a bucket of its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..models.spec import VariableSpec


MB = 1024 * 1024

#: default fusion-buffer capacity; roughly PyTorch-DDP's 25MB bucket
#: rounded to a power of two, large enough that per-transfer overheads
#: amortize and small enough that reduction overlaps backward compute
DEFAULT_FUSION_BYTES = 32 * MB


@dataclass(frozen=True)
class GradientBucket:
    """One fusion buffer: an ordered slice of the model's gradients."""

    index: int
    variables: Tuple[VariableSpec, ...]

    @property
    def num_elements(self) -> int:
        return sum(v.num_elements for v in self.variables)

    @property
    def nbytes(self) -> int:
        return sum(v.nbytes for v in self.variables)

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def priority(self) -> int:
        """Wire-scheduling urgency of this bucket's allreduce.

        Buckets are packed in backward (gradient-ready) order, so a
        *later* bucket holds *earlier* layers' gradients — the ones the
        next forward pass consumes first (TicTac/ByteScheduler's
        consumer-need ordering).  The bucket index therefore is the
        priority: the last-flushed bucket preempts the long tail of the
        first bucket's bytes still on the wire.
        """
        return self.index


def plan_buckets(variables: Sequence[VariableSpec],
                 fusion_bytes: int = DEFAULT_FUSION_BYTES
                 ) -> List[GradientBucket]:
    """Greedy first-fit-in-order packing of gradients into buckets.

    Order is preserved (callers pass gradients in backward emission
    order so a bucket becomes reducible as soon as its last gradient
    materializes).  A variable whose own size exceeds ``fusion_bytes``
    overflows any buffer and therefore spills into a dedicated bucket.
    """
    if fusion_bytes <= 0:
        raise ValueError("fusion_bytes must be positive")
    buckets: List[GradientBucket] = []
    current: List[VariableSpec] = []
    current_bytes = 0

    def close() -> None:
        nonlocal current, current_bytes
        if current:
            buckets.append(GradientBucket(index=len(buckets),
                                          variables=tuple(current)))
            current, current_bytes = [], 0

    for var in variables:
        if var.nbytes > fusion_bytes:
            # Spill: oversized gradient gets its own bucket.
            close()
            buckets.append(GradientBucket(index=len(buckets),
                                          variables=(var,)))
            continue
        if current_bytes + var.nbytes > fusion_bytes:
            close()
        current.append(var)
        current_bytes += var.nbytes
    close()
    return buckets


def chunk_ranges(num_elements: int, num_chunks: int
                 ) -> List[Tuple[int, int]]:
    """Split ``num_elements`` into ``num_chunks`` (begin, size) ranges.

    Sizes differ by at most one element, so worker counts that do not
    divide the tensor size are handled without padding: the first
    ``num_elements % num_chunks`` chunks carry the extra element.
    """
    if num_chunks < 1:
        raise ValueError("need at least one chunk")
    if num_elements < num_chunks:
        raise ValueError(
            f"cannot split {num_elements} elements into {num_chunks} "
            "non-empty chunks")
    base, extra = divmod(num_elements, num_chunks)
    ranges: List[Tuple[int, int]] = []
    begin = 0
    for c in range(num_chunks):
        size = base + (1 if c < extra else 0)
        ranges.append((begin, size))
        begin += size
    return ranges
