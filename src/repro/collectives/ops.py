"""Operator definitions for the collective-communication subsystem.

Four fusion/chunking operators back the collective graph fragments:

* ``FusionPack``   — coalesce k gradient tensors into one flat fusion
  buffer (a device-local packing kernel, charged at the elementwise
  rate like every other device kernel in the cost model);
* ``ChunkSlice``   — a contiguous 1-D slice of a fusion buffer (a view
  in a real implementation: the NIC reads straight out of the buffer,
  so only dispatch overhead is charged);
* ``ChunkConcat``  — reassemble reduced chunks into a full buffer (in a
  real ring the incoming chunks land in place inside the fusion
  buffer, so again only dispatch overhead);
* ``FusionUnpack`` — split a reduced fusion buffer back into
  per-variable gradients (the unpacking copy, symmetric to pack).

All four have dense ``compute`` implementations so small graphs verify
numerically, and static shape inference so the RDMA analyzer places
every chunk transfer on the zero-copy static protocol (§3.2).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph.node import GraphError
from ..graph.ops import register
from ..graph.shapes import Shape


def _set(node, shapes, dtypes) -> None:
    node.output_shapes = [Shape(s) if not isinstance(s, Shape) else s
                          for s in shapes]
    node.output_dtypes = list(dtypes)
    node.static_shape = all(s.is_fully_defined for s in node.output_shapes)


def _flat_elements(node) -> int:
    total = 0
    for shape in node.output_shapes:
        for dim in shape.dims:
            if dim is None:
                return 0
        total += shape.num_elements()
    return total


def _pack_compute(node, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [np.concatenate([np.asarray(a).ravel() for a in inputs])]


def _pack_cost(node, cm) -> float:
    # A device-local coalescing kernel, same rate as other elementwise
    # device ops (memcpy_bandwidth would model a *host* copy and put a
    # 5x-slower staging pass on the worker's critical path).
    return cm.op_overhead + _flat_elements(node) / cm.gpu_elementwise


@register("FusionPack", compute=_pack_compute, cost=_pack_cost)
def _infer_fusion_pack(node, in_shapes, in_dtypes):
    if not in_shapes:
        raise GraphError(f"{node.name}: FusionPack needs at least one input")
    total = 0
    for shape in in_shapes:
        if not shape.is_fully_defined:
            raise GraphError(
                f"{node.name}: FusionPack requires static shapes "
                f"(got {shape}); dynamic tensors cannot share a "
                "statically-placed fusion buffer")
        total += shape.num_elements()
    _set(node, [Shape((total,))], [in_dtypes[0]])


def _slice_compute(node, inputs: List[np.ndarray]) -> List[np.ndarray]:
    begin, size = node.attrs["begin"], node.attrs["size"]
    return [np.asarray(inputs[0])[begin:begin + size]]


@register("ChunkSlice", cost=lambda node, cm: cm.op_overhead,
          compute=_slice_compute)
def _infer_chunk_slice(node, in_shapes, in_dtypes):
    begin, size = node.attrs["begin"], node.attrs["size"]
    if begin < 0 or size <= 0:
        raise GraphError(f"{node.name}: bad chunk range "
                         f"[{begin}, {begin + size})")
    shape = in_shapes[0]
    if shape.rank != 1:
        raise GraphError(f"{node.name}: ChunkSlice needs a flat buffer, "
                         f"got rank {shape.rank}")
    if shape.is_fully_defined and begin + size > shape.num_elements():
        raise GraphError(
            f"{node.name}: chunk [{begin}, {begin + size}) outside "
            f"buffer of {shape.num_elements()} elements")
    _set(node, [Shape((size,))], [in_dtypes[0]])


def _concat_compute(node, inputs: List[np.ndarray]) -> List[np.ndarray]:
    return [np.concatenate([np.asarray(a).ravel() for a in inputs])]


@register("ChunkConcat", cost=lambda node, cm: cm.op_overhead,
          compute=_concat_compute)
def _infer_chunk_concat(node, in_shapes, in_dtypes):
    total = 0
    for shape in in_shapes:
        if shape.rank != 1:
            raise GraphError(f"{node.name}: ChunkConcat needs flat chunks")
        if not shape.is_fully_defined:
            raise GraphError(f"{node.name}: ChunkConcat needs static chunks")
        total += shape.num_elements()
    _set(node, [Shape((total,))], [in_dtypes[0]])


def _unpack_compute(node, inputs: List[np.ndarray]) -> List[np.ndarray]:
    flat = np.asarray(inputs[0]).ravel()
    outputs = []
    offset = 0
    for _, shape, _ in node.attrs["layout"]:
        count = shape.num_elements()
        outputs.append(flat[offset:offset + count].reshape(shape.as_tuple()))
        offset += count
    return outputs


def _unpack_cost(node, cm) -> float:
    return cm.op_overhead + _flat_elements(node) / cm.gpu_elementwise


@register("FusionUnpack", compute=_unpack_compute, cost=_unpack_cost)
def _infer_fusion_unpack(node, in_shapes, in_dtypes):
    layout = node.attrs.get("layout")
    if not layout:
        raise GraphError(f"{node.name}: FusionUnpack needs a layout")
    total = sum(shape.num_elements() for _, shape, _ in layout)
    buffer_shape = in_shapes[0]
    if buffer_shape.is_fully_defined and buffer_shape.num_elements() != total:
        raise GraphError(
            f"{node.name}: layout covers {total} elements but the fusion "
            f"buffer holds {buffer_shape.num_elements()}")
    _set(node, [shape for _, shape, _ in layout],
         [dtype for _, _, dtype in layout])
