"""In-network (switch-aggregated) allreduce a la NetReduce.

The rack-aware hierarchical schedule still moves ``2·M·(H-1)/H`` bytes
per worker at the access links because *hosts* do all the arithmetic.
If the ToR and spine switches can reduce gradient chunks as they pass
(NetReduce's RDMA-compatible programmable-switch design, PAPERS.md),
each worker only has to send its own buffer *up* once and receive the
reduced buffer *down* once: per-worker wire volume drops from the
ring-family ``2·M·(N-1)/N`` toward the information-theoretic ``M`` in
each direction, and the dependency chain collapses from ``O(H + R)``
steps to a single streamed round trip.

Graph shape
-----------
Unlike the ring/hierarchical fragments, the collective emits **no
cross-device edges**: each worker gets one ``InNetworkReduce`` node
whose input is its packed fusion buffer and whose output is the reduced
buffer.  The executor hands the node to the comm runtime (like
``_Send``/``_Recv``), which streams the buffer toward the worker's ToR
in aggregation-slot-sized chunks tagged ``in-network-aggregate`` and
polls a flag byte on a preallocated receive region for the multicast
result — the same zero-copy static-placement discipline as every other
transfer.  The switch-side combine, trunk booking, backpressure spill
and failure fallback live in
:class:`repro.simnet.fabric.AggregationPlane` and
:mod:`repro.core.innetwork`.

The collective requires a fat-tree fabric; on a flat topology the
runner falls back to the hierarchical host collective (there is no
switch to aggregate in).
"""

from __future__ import annotations

from typing import List, Sequence

from ..graph.builder import GraphBuilder
from ..graph.node import GraphError, NodeOutput
from ..graph.ops import register
from ..graph.shapes import Shape
from .fragments import _check_inputs


def _infer_set(node, shapes, dtypes) -> None:
    node.output_shapes = [Shape(s) if not isinstance(s, Shape) else s
                          for s in shapes]
    node.output_dtypes = list(dtypes)
    node.static_shape = all(s.is_fully_defined for s in node.output_shapes)


@register("InNetworkReduce", cost=lambda node, cm: cm.op_overhead)
def _infer_innetwork_reduce(node, in_shapes, in_dtypes):
    shape = in_shapes[0]
    if shape.rank != 1 or not shape.is_fully_defined:
        raise GraphError(f"{node.name}: InNetworkReduce needs a static "
                         f"flat fusion buffer, got {shape}")
    for key in ("group", "member", "num_members", "hosts_per_rack"):
        if key not in node.attrs:
            raise GraphError(f"{node.name}: InNetworkReduce missing "
                             f"attr {key!r}")
    _infer_set(node, [shape], [in_dtypes[0]])


def innetwork_allreduce(builder: GraphBuilder,
                        inputs: Sequence[NodeOutput],
                        devices: Sequence[str],
                        hosts_per_rack: int,
                        name: str = "innet") -> List[NodeOutput]:
    """Switch-aggregated allreduce over one flat fusion buffer.

    Emits one ``InNetworkReduce`` node per worker; ``name`` doubles as
    the reduction-group id the comm runtime and the aggregation plane
    rendezvous on, so it must be unique per collective in the graph.
    Workers map to racks in index order, ``hosts_per_rack`` at a time,
    matching :func:`repro.simnet.fabric.rack_of`.
    """
    n = len(devices)
    _check_inputs(builder, inputs, devices)
    if hosts_per_rack < 1:
        raise ValueError(f"hosts_per_rack must be >= 1, got {hosts_per_rack}")
    if n == 1:
        return list(inputs)
    return [builder.add_op(
        "InNetworkReduce", [inputs[i]],
        attrs={"group": name, "member": i, "num_members": n,
               "hosts_per_rack": hosts_per_rack},
        name=f"{name}/w{i}/innet", device=devices[i]) for i in range(n)]


# -- analytic wire-volume predictions ----------------------------------------------


def innetwork_wire_bytes(nbytes: int, num_workers: int) -> float:
    """Mean payload bytes each worker puts on the wire per allreduce.

    One full buffer up to the ToR — the multicast result back down is
    ingress, charged to the switch, so the per-worker *egress* volume
    is exactly ``M`` (~2x less than the ring family's asymptotic
    ``2·M``).
    """
    if num_workers <= 1:
        return 0.0
    return float(nbytes)


def innetwork_uplink_bytes(nbytes: int, num_racks: int) -> float:
    """Analytic per-rack trunk payload: one partial up, one result down.

    Constant in the rack count — the switch hierarchy turns the
    inter-rack exchange into a single ``M``-byte partial per direction,
    versus the hierarchical host collective's ``2·M·(R-1)/R``.
    """
    if num_racks <= 1:
        return 0.0
    return 2.0 * nbytes
