"""Collective algorithms emitted as dataflow-graph fragments.

Each builder function takes one flat fusion buffer per worker (a
``NodeOutput`` tagged with that worker's device) and appends the nodes
of a bandwidth-optimal collective to the graph.  Cross-worker chunk
movement is expressed as ordinary data edges between devices: the
partitioner replaces each with a ``_Send``/``_Recv`` pair, and because
every chunk shape is static, the RDMA analyzer places the transfer on
the zero-copy static protocol — preallocated receive region, one-sided
WRITE, tail-flag completion (§3.2).  The collectives therefore inherit
the whole device layer (QP striping, polling-async receives, arena
registration) without any new transfer machinery.

Implemented primitives:

* :func:`ring_reduce_scatter`  — N-1 steps; worker *i* ends up owning
  the fully reduced chunk ``(i+1) % N``;
* :func:`ring_all_gather`      — N-1 forwarding steps around the ring;
* :func:`ring_allreduce`       — reduce-scatter + all-gather + in-place
  reassembly: ``2·B·(N-1)/N`` bytes on the wire per worker;
* :func:`halving_doubling_allreduce` — recursive vector halving with
  distance doubling (Rabenseifner), ``2·log2(P)`` steps for the
  power-of-two core ``P``; non-power-of-two worker counts fold the
  ``N - P`` extras onto partners before and after the core exchange.

A single worker degenerates to a no-op: the input buffers are returned
unchanged and no transfer nodes are emitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..graph.builder import GraphBuilder
from ..graph.node import NodeOutput
from ..graph.ops import infer_shapes
from ..graph.partition import transfer_key
from .bucketing import chunk_ranges
from . import ops as _collective_ops  # noqa: F401  (registers the ops)


def _mark_collective_edge(builder: GraphBuilder, value: NodeOutput,
                          dst_device: str) -> None:
    """Pre-label a cross-device edge as collective-chunk traffic.

    The partitioner will replace this edge with a ``_Send``/``_Recv``
    pair; recording its rendezvous key in ``Graph.collective_edges``
    lets the RDMA binding layer tag the transfer's protocol role (and
    trace spans) as a collective hop rather than a generic tensor move.
    """
    if (value.node.device or "device0") == dst_device:
        return
    edges = getattr(builder.graph, "collective_edges", None)
    if edges is None:
        edges = builder.graph.collective_edges = set()
    edges.add(transfer_key(value.node.name, value.index, dst_device))


def tag_fragment_priority(builder: GraphBuilder, first_node_index: int,
                          priority: int) -> None:
    """Stamp a scheduling priority on a just-emitted graph fragment.

    Applies ``priority`` to every node added since ``first_node_index``
    (a ``len(builder.graph)`` snapshot taken before emitting the
    fragment).  The partitioner copies the attr onto the ``_Send``/
    ``_Recv`` pairs of the fragment's cut edges, where the RDMA binding
    hands it to the wire scheduler — so one call here prioritizes a
    whole collective's chunk traffic end to end.  Nodes that already
    carry an explicit priority keep it.
    """
    for node in list(builder.graph)[first_node_index:]:
        node.attrs.setdefault("priority", priority)


@dataclass(frozen=True)
class ChunkRef:
    """A reduced chunk held by one worker after reduce-scatter."""

    chunk: int           # chunk index within the fusion buffer
    begin: int           # element offset of the chunk
    size: int            # element count of the chunk
    value: NodeOutput    # the reduced chunk tensor (on the owner's device)


def _check_inputs(builder: GraphBuilder, inputs: Sequence[NodeOutput],
                  devices: Sequence[str]) -> int:
    if len(inputs) != len(devices):
        raise ValueError(f"{len(inputs)} inputs for {len(devices)} devices")
    if not inputs:
        raise ValueError("collective needs at least one participant")
    # Shape inference normally runs at finalize(); chunking needs the
    # buffer extents now, so infer over the graph-so-far on demand.
    if any(not x.node.output_shapes for x in inputs):
        infer_shapes(builder.graph)
    shapes = {tuple(x.shape.as_tuple()) for x in inputs}
    if len(shapes) != 1:
        raise ValueError(f"mismatched participant shapes: {sorted(shapes)}")
    shape = inputs[0].shape
    if shape.rank != 1 or not shape.is_fully_defined:
        raise ValueError(
            f"collectives operate on static flat buffers, got {shape}")
    return shape.num_elements()


def ring_reduce_scatter(builder: GraphBuilder,
                        inputs: Sequence[NodeOutput],
                        devices: Sequence[str],
                        name: str = "rs") -> List[ChunkRef]:
    """Reduce-scatter around the ring; returns each worker's owned chunk.

    Step ``s`` has worker ``i`` send its running sum of chunk
    ``(i - s) mod N`` to worker ``i+1`` while receiving chunk
    ``(i - s - 1) mod N`` from worker ``i-1`` and folding it into its
    local slice; after ``N-1`` steps worker ``i`` holds the complete
    sum of chunk ``(i + 1) mod N``.
    """
    n = len(devices)
    num_elements = _check_inputs(builder, inputs, devices)
    if n == 1:
        return [ChunkRef(chunk=0, begin=0, size=num_elements,
                         value=inputs[0])]
    ranges = chunk_ranges(num_elements, n)

    slices: Dict[Tuple[int, int], NodeOutput] = {}

    def local_slice(i: int, c: int) -> NodeOutput:
        if (i, c) not in slices:
            begin, size = ranges[c]
            slices[(i, c)] = builder.add_op(
                "ChunkSlice", [inputs[i]],
                attrs={"begin": begin, "size": size},
                name=f"{name}/w{i}/slice{c}", device=devices[i])
        return slices[(i, c)]

    # acc[i][c]: worker i's running sum of chunk c (absent -> its slice)
    acc: List[Dict[int, NodeOutput]] = [{} for _ in range(n)]
    for step in range(n - 1):
        updates = []
        for i in range(n):
            src = (i - 1) % n
            c = (i - step - 1) % n
            incoming = acc[src].get(c)
            if incoming is None:
                incoming = local_slice(src, c)
            _mark_collective_edge(builder, incoming, devices[i])
            folded = builder.add_op(
                "Add", [incoming, local_slice(i, c)],
                name=f"{name}/w{i}/red{step}", device=devices[i])
            updates.append((i, c, folded))
        for i, c, folded in updates:
            acc[i][c] = folded

    out = []
    for i in range(n):
        c = (i + 1) % n
        begin, size = ranges[c]
        out.append(ChunkRef(chunk=c, begin=begin, size=size,
                            value=acc[i][c]))
    return out


def _forwarding_all_gather(builder: GraphBuilder,
                           owned: Sequence[Tuple[int, NodeOutput]],
                           devices: Sequence[str],
                           name: str) -> List[Dict[int, NodeOutput]]:
    """The N-1 forwarding rounds shared by both all-gather entry points.

    ``owned[i]`` is worker i's contribution ``(slot, value)``; slots
    must be distinct.  Returns per-worker ``slot -> value`` maps where
    the value sits on that worker's device.
    """
    n = len(devices)
    gathered: List[Dict[int, NodeOutput]] = [
        {slot: value} for slot, value in owned]
    last: List[Tuple[int, NodeOutput]] = list(owned)
    for step in range(n - 1):
        incoming = []
        for i in range(n):
            src = (i - 1) % n
            slot, value = last[src]
            _mark_collective_edge(builder, value, devices[i])
            landed = builder.add_op(
                "Identity", [value],
                name=f"{name}/w{i}/fwd{step}", device=devices[i])
            incoming.append((i, slot, landed))
        for i, slot, landed in incoming:
            gathered[i][slot] = landed
        last = [(slot, landed) for _, slot, landed in incoming]
    return gathered


def ring_all_gather(builder: GraphBuilder,
                    inputs: Sequence[NodeOutput],
                    devices: Sequence[str],
                    name: str = "ag") -> List[List[NodeOutput]]:
    """All-gather: every worker ends with every worker's tensor.

    ``result[i][j]`` is worker j's contribution materialized on worker
    i's device.  Contributions may have distinct shapes: all-gather
    only moves tensors, it never reduces them.
    """
    if len(inputs) != len(devices):
        raise ValueError(f"{len(inputs)} inputs for {len(devices)} devices")
    if not inputs:
        raise ValueError("collective needs at least one participant")
    if len(devices) == 1:
        return [[inputs[0]]]
    gathered = _forwarding_all_gather(
        builder, list(enumerate(inputs)), devices, name)
    return [[gathered[i][j] for j in range(len(devices))]
            for i in range(len(devices))]


def ring_allreduce(builder: GraphBuilder,
                   inputs: Sequence[NodeOutput],
                   devices: Sequence[str],
                   name: str = "ring") -> List[NodeOutput]:
    """Bandwidth-optimal ring allreduce over one flat fusion buffer."""
    n = len(devices)
    _check_inputs(builder, inputs, devices)
    if n == 1:
        return list(inputs)
    owned = ring_reduce_scatter(builder, inputs, devices,
                                name=f"{name}/rs")
    gathered = _forwarding_all_gather(
        builder, [(ref.chunk, ref.value) for ref in owned], devices,
        name=f"{name}/ag")
    return [builder.add_op(
        "ChunkConcat", [gathered[i][c] for c in range(n)],
        name=f"{name}/w{i}/out", device=devices[i]) for i in range(n)]


def halving_doubling_allreduce(builder: GraphBuilder,
                               inputs: Sequence[NodeOutput],
                               devices: Sequence[str],
                               name: str = "hd") -> List[NodeOutput]:
    """Recursive halving-doubling allreduce (Rabenseifner's algorithm).

    Reduce-scatter by recursive vector halving with distance doubling
    (partners ``p ^ 2^k`` exchange opposite halves of their shrinking
    segment and fold), then all-gather by vector doubling with distance
    halving.  ``N`` that is not a power of two folds the ``N - P``
    extra workers onto partners (full-buffer pre-reduce and post-copy),
    the standard pre/post phase.
    """
    n = len(devices)
    num_elements = _check_inputs(builder, inputs, devices)
    if n == 1:
        return list(inputs)
    core = 1 << (n.bit_length() - 1)
    extras = n - core
    if num_elements < core:
        raise ValueError(
            f"buffer of {num_elements} elements too small for a "
            f"{core}-way halving-doubling exchange")

    values: List[NodeOutput] = list(inputs[:core])
    # Pre-phase: extra worker core+j folds its whole buffer onto worker j.
    for j in range(extras):
        _mark_collective_edge(builder, inputs[core + j], devices[j])
        values[j] = builder.add_op(
            "Add", [inputs[core + j], values[j]],
            name=f"{name}/w{j}/fold", device=devices[j])

    rounds = core.bit_length() - 1
    # seg[p]: (lo, hi) element range of worker p's current segment
    seg: List[Tuple[int, int]] = [(0, num_elements)] * core

    def segment_slice(p: int, begin: int, size: int,
                      label: str) -> NodeOutput:
        lo, hi = seg[p]
        if begin == lo and size == hi - lo:
            return values[p]
        return builder.add_op(
            "ChunkSlice", [values[p]],
            attrs={"begin": begin - lo, "size": size},
            name=f"{name}/w{p}/{label}", device=devices[p])

    for k in range(rounds):
        halves: Dict[int, Tuple[Tuple[int, int], NodeOutput]] = {}
        for p in range(core):
            lo, hi = seg[p]
            mid = lo + (hi - lo) // 2
            partner = p ^ (1 << k)
            keep = (lo, mid) if p < partner else (mid, hi)
            send = (mid, hi) if p < partner else (lo, mid)
            halves[p] = (keep, send)
        new_values = []
        for p in range(core):
            partner = p ^ (1 << k)
            keep, _ = halves[p]
            _, partner_send = halves[partner]
            if partner_send != keep:  # pragma: no cover - invariant
                raise AssertionError("halving-doubling segment mismatch")
            incoming = segment_slice(partner, keep[0], keep[1] - keep[0],
                                     f"half{k}")
            _mark_collective_edge(builder, incoming, devices[p])
            local = segment_slice(p, keep[0], keep[1] - keep[0],
                                  f"keep{k}")
            new_values.append(builder.add_op(
                "Add", [incoming, local],
                name=f"{name}/w{p}/red{k}", device=devices[p]))
        for p in range(core):
            seg[p] = halves[p][0]
            values[p] = new_values[p]

    # All-gather: reverse the rounds, doubling segments back to full.
    for k in reversed(range(rounds)):
        staged = []
        for p in range(core):
            partner = p ^ (1 << k)
            _mark_collective_edge(builder, values[partner], devices[p])
            incoming = builder.add_op(
                "Identity", [values[partner]],
                name=f"{name}/w{p}/gath{k}", device=devices[p])
            lo, hi = seg[p]
            plo, phi = seg[partner]
            parts = ([values[p], incoming] if lo < plo
                     else [incoming, values[p]])
            staged.append((min(lo, plo), max(hi, phi), builder.add_op(
                "ChunkConcat", parts,
                name=f"{name}/w{p}/join{k}", device=devices[p])))
        for p, (lo, hi, joined) in enumerate(staged):
            seg[p] = (lo, hi)
            values[p] = joined

    # Post-phase: folded partners push the full result back out.
    outputs = list(values)
    for j in range(extras):
        _mark_collective_edge(builder, values[j], devices[core + j])
        outputs.append(builder.add_op(
            "Identity", [values[j]],
            name=f"{name}/w{core + j}/unfold", device=devices[core + j]))
    return outputs


# -- analytic wire-volume predictions ----------------------------------------------


def ring_allreduce_wire_bytes(nbytes: int, num_workers: int) -> float:
    """Mean payload bytes each worker puts on the wire per allreduce."""
    if num_workers <= 1:
        return 0.0
    return 2.0 * nbytes * (num_workers - 1) / num_workers


def halving_doubling_wire_bytes(nbytes: int, num_workers: int) -> float:
    """Mean per-worker wire bytes, including non-power-of-two folding."""
    if num_workers <= 1:
        return 0.0
    core = 1 << (num_workers.bit_length() - 1)
    if core == num_workers:
        return 2.0 * nbytes * (core - 1) / core
    extras = num_workers - core
    total = 2.0 * nbytes * (core - 1) + 2.0 * nbytes * extras
    return total / num_workers
