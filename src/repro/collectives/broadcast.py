"""Broadcast schedules for one-to-many weight distribution.

The allreduce fragments in this package reduce *gradients* between
workers; the serving plane needs the reverse flow — one trainer
pushing an identical parameter snapshot to every replica.  Two
schedules are provided as pure data (lists of hops), which the
publication plane (:mod:`repro.core.publication`) executes with
one-sided writes:

* ``direct``  — the trainer writes the snapshot to each replica
  itself.  Egress cost at the root is ``replicas * model_bytes``; the
  replicas receive in parallel, so with R replicas the root's NIC is
  the bottleneck.
* ``chain``   — a pipelined store-and-forward chain (root -> r0 -> r1
  -> ...).  Every link moves ``model_bytes`` exactly once, so the root
  egress drops to ``model_bytes`` and, pipelined at item granularity,
  the end-to-end time approaches one snapshot transfer plus one item
  per extra hop — the classic bandwidth-optimal broadcast for large
  payloads.

A hop ``(src, dst)`` uses rank -1 for the root (trainer) and
``0..R-1`` for replicas; per-item pipelining is the executor's job,
the schedule only fixes the topology.
"""

from __future__ import annotations

from typing import List, Tuple


BROADCAST_MODES = ("direct", "chain")


def broadcast_hops(num_replicas: int, mode: str = "direct"
                   ) -> List[Tuple[int, int]]:
    """The (src_rank, dst_rank) links a broadcast uses; root is -1."""
    if num_replicas < 1:
        raise ValueError(f"need at least one replica, got {num_replicas}")
    if mode == "direct":
        return [(-1, r) for r in range(num_replicas)]
    if mode == "chain":
        return [(r - 1, r) for r in range(num_replicas)]
    raise ValueError(f"unknown broadcast mode {mode!r}; "
                     f"have {BROADCAST_MODES}")


def upstream_of(num_replicas: int, mode: str, rank: int) -> int:
    """The rank a replica receives the snapshot from (-1 = trainer)."""
    for src, dst in broadcast_hops(num_replicas, mode):
        if dst == rank:
            return src
    raise ValueError(f"rank {rank} not in a {num_replicas}-replica schedule")


def downstream_of(num_replicas: int, mode: str, rank: int) -> List[int]:
    """The ranks a node forwards the snapshot to (root passes -1)."""
    return [dst for src, dst in broadcast_hops(num_replicas, mode)
            if src == rank]


def root_egress_bytes(num_replicas: int, mode: str,
                      model_bytes: int) -> int:
    """Bytes the trainer's NIC sends per publish under a schedule."""
    return model_bytes * sum(1 for src, _ in
                             broadcast_hops(num_replicas, mode) if src == -1)
