"""Rack-aware hierarchical allreduce for oversubscribed fabrics.

A flat ring over ``N`` workers spread across ``R`` racks crosses the
rack boundary on ``R`` of its edges, and each of those edges carries
the full ``2·M·(N-1)/N`` ring volume as one long chain of ``2·(N-1)``
dependent steps.  On a fat tree the crossing steps run at uplink
(not access-link) bandwidth, and at scale the chain length itself
dominates.  The hierarchical schedule reduces inside each rack first,
crosses the fabric once with all rack members in parallel, and
broadcasts back down — the classic three-phase decomposition:

1. **intra-rack reduce-scatter** — a ring over the rack's ``H``
   members at full access-link rate; member ``j`` ends up owning the
   rack-wide sum of chunk ``(j+1) % H``;
2. **inter-rack allreduce, one per chunk position** — member ``j`` of
   every rack runs a ring (or halving-doubling) with its counterparts
   in the other racks over just its owned chunk.  All ``H`` position
   collectives proceed in parallel, so a rack's full uplink aggregate
   is in play, and the rack as a whole exchanges
   ``2·M·(R-1)/R`` bytes over the trunk — exactly the volume a single
   rack leader exchanging the rack sum would send, but without
   serializing it through one host's NIC;
3. **intra-rack all-gather** — the standard ``H-1`` forwarding rounds
   leave every member with the full globally reduced buffer.

Per worker that is ``2·M·(H-1)/H`` bytes at access rate plus
``2·(M/H)·(R-1)/R`` over the uplinks, with a dependency chain of
``≈ 2·H + 2·R - 4`` steps versus the flat ring's ``2·(N-1)``.

Degenerate shapes fall back to the flat collectives: one rack runs a
plain intra-rack ring, one-host racks run the inter-rack collective
over all workers directly, and a single worker is a no-op — so the
builder never emits a hop the topology does not need.

Reduction order differs from the flat ring (per-rack partial sums are
combined before crossing racks), so floating-point results can differ
in the last ulp; with integer-valued gradients both schedules are
exact and bit-identical, which is how the equivalence tests pin them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..graph.builder import GraphBuilder
from ..graph.node import NodeOutput
from .fragments import (_check_inputs, _forwarding_all_gather,
                        halving_doubling_allreduce,
                        halving_doubling_wire_bytes, ring_allreduce,
                        ring_allreduce_wire_bytes, ring_reduce_scatter)

#: inter-rack (cross-fabric) collectives selectable by name
INTER_RACK_ALGORITHMS = ("ring", "halving-doubling")


def _rack_groups(n: int, hosts_per_rack: int) -> List[List[int]]:
    if hosts_per_rack < 1:
        raise ValueError(f"hosts_per_rack must be >= 1, got {hosts_per_rack}")
    return [list(range(lo, min(lo + hosts_per_rack, n)))
            for lo in range(0, n, hosts_per_rack)]


def _inter_collective(inter_algorithm: str):
    if inter_algorithm not in INTER_RACK_ALGORITHMS:
        raise ValueError(f"unknown inter-rack algorithm "
                         f"{inter_algorithm!r}; have {INTER_RACK_ALGORITHMS}")
    return (ring_allreduce if inter_algorithm == "ring"
            else halving_doubling_allreduce)


def hierarchical_allreduce(builder: GraphBuilder,
                           inputs: Sequence[NodeOutput],
                           devices: Sequence[str],
                           hosts_per_rack: int,
                           inter_algorithm: str = "ring",
                           name: str = "hier") -> List[NodeOutput]:
    """Rack-hierarchical allreduce over one flat fusion buffer.

    Workers are assigned to racks in index order, ``hosts_per_rack`` at
    a time (the same fill order as :func:`repro.simnet.fabric.rack_of`,
    so graph placement and physical placement agree).  Multi-rack
    shapes must tile evenly — the inter-rack phase pairs member ``j``
    of every rack, so every rack needs a member ``j``.  Returns the
    reduced buffer on every worker.
    """
    n = len(devices)
    _check_inputs(builder, inputs, devices)
    inter = _inter_collective(inter_algorithm)
    if n == 1:
        return list(inputs)
    groups = _rack_groups(n, hosts_per_rack)
    if len(groups) == 1:
        # Single rack: the intra-rack ring is the whole reduction.
        return ring_allreduce(builder, inputs, devices, name=name)
    if hosts_per_rack == 1:
        # One host per rack: every worker fronts its rack; go flat.
        return inter(builder, inputs, devices, name=name)
    if n % hosts_per_rack != 0:
        raise ValueError(
            f"hierarchical allreduce needs racks of equal size; "
            f"{n} workers do not tile into racks of {hosts_per_rack}")

    # Phase 1: per-rack reduce-scatter at full access-link rate.
    rack_owned = [
        ring_reduce_scatter(builder, [inputs[i] for i in group],
                            [devices[i] for i in group],
                            name=f"{name}/r{r}/rs")
        for r, group in enumerate(groups)]

    # Phase 2: for each member position, allreduce that position's
    # owned chunk across the racks.  The H position collectives are
    # independent, so they overlap and spread across the uplinks.
    h = hosts_per_rack
    reduced_chunks: List[List[NodeOutput]] = [[None] * h  # type: ignore
                                              for _ in groups]
    for j in range(h):
        position_values = [rack_owned[r][j].value
                           for r in range(len(groups))]
        position_devices = [devices[group[j]] for group in groups]
        reduced = inter(builder, position_values, position_devices,
                        name=f"{name}/inter{j}")
        for r in range(len(groups)):
            reduced_chunks[r][j] = reduced[r]

    # Phase 3: per-rack all-gather of the globally reduced chunks.
    outputs: List[Optional[NodeOutput]] = [None] * n
    for r, group in enumerate(groups):
        member_owned = [(rack_owned[r][j].chunk, reduced_chunks[r][j])
                        for j in range(h)]
        gathered = _forwarding_all_gather(
            builder, member_owned, [devices[i] for i in group],
            name=f"{name}/r{r}/ag")
        for j, i in enumerate(group):
            outputs[i] = builder.add_op(
                "ChunkConcat", [gathered[j][c] for c in range(h)],
                name=f"{name}/r{r}/w{j}/out", device=devices[i])
    assert all(out is not None for out in outputs)
    return outputs  # type: ignore[return-value]


def hierarchical_wire_bytes(nbytes: int, num_workers: int,
                            hosts_per_rack: int,
                            inter_algorithm: str = "ring") -> float:
    """Mean payload bytes each worker puts on the wire per allreduce.

    Mirrors the builder's phase structure (including its degenerate
    fallbacks) so the prediction matches the emitted graph exactly:
    ``2·M·(H-1)/H`` for the intra-rack rings plus a ``1/H`` share of
    the inter-rack collective's per-participant volume.
    """
    n = num_workers
    if n <= 1:
        return 0.0
    inter_predict = (ring_allreduce_wire_bytes if inter_algorithm == "ring"
                     else halving_doubling_wire_bytes)
    groups = _rack_groups(n, hosts_per_rack)
    if len(groups) == 1:
        return ring_allreduce_wire_bytes(nbytes, n)
    if hosts_per_rack == 1:
        return inter_predict(nbytes, n)
    if n % hosts_per_rack != 0:
        raise ValueError(
            f"hierarchical allreduce needs racks of equal size; "
            f"{n} workers do not tile into racks of {hosts_per_rack}")
    h = hosts_per_rack
    num_racks = len(groups)
    intra = 2.0 * nbytes * (h - 1) / h
    inter = inter_predict(nbytes, num_racks) / h
    return intra + inter


def rack_uplink_bytes(nbytes: int, num_racks: int) -> float:
    """Analytic per-rack trunk payload of the inter-rack ring phase.

    Each rack's members together exchange ``2·M·(R-1)/R`` bytes with
    the other racks during phase 2 — the only phase that crosses racks,
    and the same volume a designated rack leader exchanging the full
    rack sum would send.
    """
    if num_racks <= 1:
        return 0.0
    return 2.0 * nbytes * (num_racks - 1) / num_racks
