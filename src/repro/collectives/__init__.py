"""Collective communication over the RDMA device layer.

Bandwidth-optimal worker-to-worker collectives (ring reduce-scatter /
all-gather / allreduce and recursive halving-doubling allreduce)
expressed as dataflow-graph fragments whose chunk transfers ride the
zero-copy static-placement protocol of the core RDMA layer, plus the
gradient bucketization/fusion policy that coalesces the paper's
many-small-tensor workloads (Figure 7) into a few large transfers.
"""

from . import ops  # noqa: F401  (registers the fusion/chunk operators)
from .broadcast import (BROADCAST_MODES, broadcast_hops,
                        downstream_of, root_egress_bytes, upstream_of)
from .bucketing import (DEFAULT_FUSION_BYTES, GradientBucket, chunk_ranges,
                        plan_buckets)
from .fragments import (ChunkRef, halving_doubling_allreduce,
                        halving_doubling_wire_bytes, ring_all_gather,
                        ring_allreduce, ring_allreduce_wire_bytes,
                        ring_reduce_scatter)
from .hierarchical import (INTER_RACK_ALGORITHMS, hierarchical_allreduce,
                           hierarchical_wire_bytes, rack_uplink_bytes)
from .innetwork import (innetwork_allreduce, innetwork_uplink_bytes,
                        innetwork_wire_bytes)

__all__ = [
    "BROADCAST_MODES", "ChunkRef", "DEFAULT_FUSION_BYTES", "GradientBucket", "chunk_ranges",
    "INTER_RACK_ALGORITHMS",
    "halving_doubling_allreduce", "halving_doubling_wire_bytes",
    "hierarchical_allreduce", "hierarchical_wire_bytes",
    "rack_uplink_bytes",
    "innetwork_allreduce", "innetwork_uplink_bytes", "innetwork_wire_bytes",
    "plan_buckets", "ring_all_gather", "ring_allreduce",
    "ring_allreduce_wire_bytes", "ring_reduce_scatter",
    "broadcast_hops", "downstream_of", "root_egress_bytes", "upstream_of",
]
