"""Open-loop load generation for the serving plane.

Clients issue requests on a seeded arrival process (Poisson by
default) *independently of completions* — an overloaded system keeps
receiving requests, which is what makes queueing delay and admission
control observable at all.  Each request is delivered to the router
over the simulated client-facing transport (kernel TCP by default;
an RDMA ingest path is modeled for clients inside the fabric).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..simnet.arrivals import make_gaps
from ..simnet.simulator import Simulator


#: per-request payload sizes: a few KB of input features in, a small
#: prediction out — serving traffic is latency-, not bandwidth-bound
DEFAULT_REQUEST_BYTES = 4 * 1024
DEFAULT_RESPONSE_BYTES = 512


@dataclass
class Request:
    """One inference request's lifetime, all times in sim seconds."""

    req_id: int
    #: when the client issued it (latency is measured from here)
    created: float
    nbytes: int = DEFAULT_REQUEST_BYTES
    resp_nbytes: int = DEFAULT_RESPONSE_BYTES
    #: when the router admitted it (post client->router transport)
    admitted: Optional[float] = None
    #: when its response left the router back toward the client
    completed: Optional[float] = None
    #: admission control turned it away
    shed: bool = False
    #: times the router had to re-dispatch it (replica death)
    redispatches: int = 0

    @property
    def latency(self) -> Optional[float]:
        if self.completed is None:
            return None
        return self.completed - self.created


class LoadGenerator:
    """Seeded open-loop client population feeding one router.

    ``transport`` models the client leg: ``"tcp"`` charges the kernel
    receive path and books the router's TCP ingress pipe (clients live
    outside the RDMA fabric, the paper's front-end case); ``"rdma"``
    charges a one-sided write's latency only (clients co-located on
    the fabric).
    """

    def __init__(self, sim: Simulator, router, *, qps: float, count: int,
                 seed: int = 0, arrival: str = "poisson",
                 transport: str = "tcp",
                 request_bytes: int = DEFAULT_REQUEST_BYTES,
                 response_bytes: int = DEFAULT_RESPONSE_BYTES) -> None:
        if transport not in ("tcp", "rdma"):
            raise ValueError(f"unknown client transport {transport!r}")
        self.sim = sim
        self.router = router
        self.qps = qps
        self.count = count
        self.seed = seed
        self.arrival = arrival
        self.transport = transport
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.requests: List[Request] = []
        self.done = sim.event()

    def run(self) -> Generator:
        """Process: emit ``count`` requests, then trigger :attr:`done`."""
        rng = random.Random(self.seed)
        gaps = make_gaps(self.arrival, rng, self.qps)
        pending = []
        for req_id in range(self.count):
            yield (next(gaps))
            request = Request(req_id=req_id, created=self.sim.now,
                              nbytes=self.request_bytes,
                              resp_nbytes=self.response_bytes)
            self.requests.append(request)
            # Open loop: delivery runs as its own process so a slow
            # ingest path never delays the next arrival.
            pending.append(self.sim.spawn(self._deliver(request),
                                          name=f"ingest-{req_id}"))
        yield self.sim.all_of(pending)
        if not self.done.triggered:
            self.done.succeed()

    def _deliver(self, request: Request) -> Generator:
        host = self.router.host
        cost = host.cost
        if self.transport == "tcp":
            # Kernel path into the router: wire time through the
            # router's shared TCP ingress pipe, then the syscall+copy
            # receive cost on a router CPU lane.
            ready = self.sim.now + cost.tcp_wire_time(request.nbytes)
            end = host.tcp.ingress.reserve_after(self.sim.now,
                                                 request.nbytes, ready)
            yield (end - self.sim.now)
            yield from host.cpu.run(cost.tcp_recv_time(request.nbytes))
        else:
            # Fabric-resident client: one-sided write into a router
            # ring buffer; no kernel, no router CPU on the data path.
            yield (cost.rdma_write_time(request.nbytes))
        request.admitted = self.sim.now
        self.router.submit(request)
