"""End-to-end serving benchmark: one deployment, one result row.

Builds a ``2 + replicas``-host cluster — ``hosts[0]`` the router (and
TCP ingest point for clients), ``hosts[1]`` the trainer, the rest one
replica each — wires the request plane (load generator -> admission ->
dynamic batcher -> dispatch) and the weight-publication plane
(trainer -> double-buffered arenas) over RDMA devices, optionally
co-locates background training traffic, and drives the whole thing
until every request reached a terminal state (completed, shed, or
failed).

The SLO comparison this exists for: with ``priority_sched=True`` the
cost model runs the priority quantum wire scheduler, so
serving-tagged transfers (priority 100) preempt multi-megabyte
training writes at quantum boundaries; with ``priority_sched=False``
the same traffic runs FIFO and inference tails absorb whole bulk
bookings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Generator, List, Optional, Tuple

from ..core.device import DeviceError, Direction, RdmaDevice
from ..core.publication import build_publication, park_until
from ..core.recovery import RecoveryManager, RetryPolicy
from ..models.spec import ModelSpec
from ..observability.anomaly import slo_burn_alerts
from ..observability.registry import Histogram, MetricsRegistry
from ..simnet.costmodel import (DEFAULT_COST_MODEL,
                                DEFAULT_WIRE_QUANTUM_BYTES, MB)
from ..simnet.faults import FaultInjector
from ..simnet.simulator import Simulator
from ..simnet.topology import Cluster, Endpoint
from ..simnet.verbs import ROLE_TRAIN_SYNC, TRAIN_SYNC_PRIORITY
from .batcher import DynamicBatcher
from .frontend import Router
from .load import (DEFAULT_REQUEST_BYTES, DEFAULT_RESPONSE_BYTES,
                   LoadGenerator)
from .replica import Replica


#: base port for the per-host serving RDMA devices
_SERVING_PORT = 7300


@dataclass
class ServingResult:
    """Everything one serving run measured, JSON-ready."""

    model: str
    replicas: int
    qps: float
    max_batch: int
    batch_timeout: float
    slo_ms: float
    arrival: str
    seed: int
    priority_sched: bool
    background_training: bool
    broadcast: str
    fault_spec: Optional[str]
    total: int
    completed: int
    shed: int
    failed: int
    makespan: float
    throughput_rps: float
    slo_attainment: float
    latency: Dict[str, float]
    mean_batch_size: float
    publishes: int
    swaps: int
    torn_serves: int
    staleness: Dict[str, float] = field(default_factory=dict)
    replica_deaths: int = 0
    observability: Dict = field(default_factory=dict)
    #: SLO burn-rate alerts (structured Incident dicts, sim-timestamped)
    incidents: List[Dict] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "model": self.model, "replicas": self.replicas,
            "qps": self.qps, "max_batch": self.max_batch,
            "batch_timeout": self.batch_timeout, "slo_ms": self.slo_ms,
            "arrival": self.arrival, "seed": self.seed,
            "priority_sched": self.priority_sched,
            "background_training": self.background_training,
            "broadcast": self.broadcast, "fault_spec": self.fault_spec,
            "total": self.total, "completed": self.completed,
            "shed": self.shed, "failed": self.failed,
            "makespan": self.makespan,
            "throughput_rps": self.throughput_rps,
            "slo_attainment": self.slo_attainment,
            "latency": self.latency,
            "mean_batch_size": self.mean_batch_size,
            "publishes": self.publishes, "swaps": self.swaps,
            "torn_serves": self.torn_serves, "staleness": self.staleness,
            "replica_deaths": self.replica_deaths,
            "incidents": self.incidents,
        }


def run_serving_benchmark(
        spec: ModelSpec, *, replicas: int = 2, qps: float = 1200.0,
        max_batch: int = 8, batch_timeout: float = 2e-3,
        slo_ms: float = 25.0, requests: int = 400, seed: int = 0,
        arrival: str = "poisson", transport: str = "tcp",
        priority_sched: bool = True, background_training: bool = False,
        background_bytes: int = 32 * MB, publish: bool = True,
        publish_interval: float = 25e-3, broadcast: str = "direct",
        fault_spec: Optional[str] = None, fault_seed: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        admission_limit: int = 128, dispatch_timeout: float = 0.1,
        request_bytes: int = DEFAULT_REQUEST_BYTES,
        response_bytes: int = DEFAULT_RESPONSE_BYTES,
        kill_replica: Optional[Tuple[int, float]] = None,
        time_limit: float = 600.0) -> ServingResult:
    """Run one serving deployment to completion; returns its result.

    ``kill_replica=(rank, at)`` crashes one replica mid-run to
    exercise the router's timeout detection and rerouting.  A fault
    spec arms the chaos plane *and* routes every publication verb
    through the recovery layer, the combination the torn-read chaos
    sweep asserts against.
    """
    cost = DEFAULT_COST_MODEL
    if priority_sched:
        cost = replace(cost, wire_quantum_bytes=DEFAULT_WIRE_QUANTUM_BYTES)
    cluster = Cluster(2 + replicas, cost=cost, name_prefix="serve")
    sim = cluster.sim
    if fault_spec:
        cluster.install_faults(
            FaultInjector.from_spec(fault_spec, seed=fault_seed))
    metrics = MetricsRegistry()

    devices = [RdmaDevice.create(host, 2, 2,
                                 Endpoint(host.name, _SERVING_PORT + i))
               for i, host in enumerate(cluster.hosts)]
    router_device, trainer_device = devices[0], devices[1]
    replica_devices = devices[2:]

    recovery = (RecoveryManager(sim, cost, policy=retry_policy)
                if fault_spec else None)
    publisher = None
    subscribers: List = [None] * replicas
    if publish:
        publisher, subscribers = build_publication(
            trainer_device, replica_devices, spec, mode=broadcast,
            recovery=recovery, metrics=metrics, qp_idx=0)

    replica_objs = [
        Replica(rank, cluster, device, spec, max_batch=max_batch,
                request_bytes=request_bytes, response_bytes=response_bytes,
                subscriber=subscribers[rank], metrics=metrics)
        for rank, device in enumerate(replica_devices)
    ]
    batcher = DynamicBatcher(sim, max_batch, batch_timeout, metrics=metrics)
    router = Router(router_device, batcher, max_batch=max_batch,
                    request_bytes=request_bytes,
                    response_bytes=response_bytes,
                    admission_limit=admission_limit,
                    dispatch_timeout=dispatch_timeout, metrics=metrics)
    for replica in replica_objs:
        router.attach_replica(replica)
    load = LoadGenerator(sim, router, qps=qps, count=requests, seed=seed,
                         arrival=arrival, transport=transport,
                         request_bytes=request_bytes,
                         response_bytes=response_bytes)

    background_stop = {"flag": False}
    if background_training:
        bg_src = trainer_device.allocate_mem_region(
            background_bytes, label="train-sync-src", dense=False)
        for rank, device in enumerate(replica_devices):
            sink = device.allocate_mem_region(
                background_bytes, label=f"train-sync-sink[{rank}]",
                dense=False)
            channel = trainer_device.get_channel(device.endpoint, 1)
            sim.spawn(_background_traffic(sim, channel, bg_src,
                                          sink.descriptor(),
                                          background_bytes,
                                          background_stop),
                      name=f"train-sync-{rank}")

    for subscriber in subscribers:
        if subscriber is not None:
            sim.spawn(subscriber.watch(), name=f"sub-{subscriber.rank}")
    for replica in replica_objs:
        sim.spawn(replica.serve(), name=f"serve-{replica.rank}")
    sim.spawn(batcher.run(), name="batcher")
    sim.spawn(router.dispatcher(), name="dispatcher")
    sim.spawn(router.response_poller(), name="resp-poller")
    if publisher is not None:
        sim.spawn(publisher.run(publish_interval), name="publisher")
    sim.spawn(load.run(), name="load")
    if kill_replica is not None:
        rank, at = kill_replica
        sim.spawn(_killer(sim, replica_objs[rank], at), name="killer")

    def main() -> Generator:
        yield load.done
        yield from park_until(sim, router.host,
                              lambda: router.drained(requests))

    sim.run_until_complete(sim.spawn(main(), name="serving-main"),
                           limit=time_limit)
    makespan = sim.now
    background_stop["flag"] = True
    if publisher is not None:
        publisher.stop()
    for subscriber in subscribers:
        if subscriber is not None:
            subscriber.stop()
    for replica in replica_objs:
        replica.stop()
    router.stop()

    hist = Histogram("serving.latency_s")
    for latency in router.latencies:
        hist.observe(latency)
    slo = slo_ms * 1e-3
    attained = sum(1 for latency in router.latencies if latency <= slo)
    incidents = [incident.to_dict() for incident in
                 slo_burn_alerts(router.latency_samples, slo)]
    batch_hist = metrics.histograms.get("serving.batch_size")
    staleness_hist = metrics.histograms.get("serving.staleness_versions")
    return ServingResult(
        model=spec.name, replicas=replicas, qps=qps, max_batch=max_batch,
        batch_timeout=batch_timeout, slo_ms=slo_ms, arrival=arrival,
        seed=seed, priority_sched=priority_sched,
        background_training=background_training, broadcast=broadcast,
        fault_spec=fault_spec, total=requests,
        completed=router.completed, shed=router.shed, failed=router.failed,
        makespan=makespan,
        throughput_rps=(router.completed / makespan if makespan > 0
                        else 0.0),
        slo_attainment=(attained / len(router.latencies)
                        if router.latencies else 0.0),
        latency=hist.to_dict(),
        mean_batch_size=batch_hist.mean if batch_hist is not None else 0.0,
        publishes=publisher.publishes if publisher is not None else 0,
        swaps=sum(s.swaps for s in subscribers if s is not None),
        torn_serves=sum(r.torn_serves for r in replica_objs),
        staleness=(staleness_hist.to_dict()
                   if staleness_hist is not None else {}),
        replica_deaths=router.replica_deaths,
        observability=metrics.to_dict(),
        incidents=incidents)


def _background_traffic(sim: Simulator, channel, src, sink_remote,
                        chunk_bytes: int, stop: Dict[str, bool]) -> Generator:
    """Process: saturate one trainer->replica lane with bulk writes.

    Models gradient-synchronization traffic sharing the wire with the
    serving plane: back-to-back multi-megabyte writes at training
    priority.  Injected faults on this role are absorbed (training has
    its own recovery story; here it only exists to contend).
    """
    while not stop["flag"]:
        try:
            yield channel.memcpy_event(
                src.addr, src, sink_remote.addr, sink_remote, chunk_bytes,
                Direction.LOCAL_TO_REMOTE, role=ROLE_TRAIN_SYNC,
                priority=TRAIN_SYNC_PRIORITY)
        except DeviceError:
            pass
        yield (50e-6)


def _killer(sim: Simulator, replica: Replica, at: float) -> Generator:
    yield (at)
    replica.fail()
