"""A model-serving replica: forward-only executor behind an RDMA slot.

Each replica owns two router-writable regions (static placement — the
router writes request payloads and batch metadata with one-sided
verbs, no replica CPU on the receive path) and a long-lived
single-device session whose graph is one forward pass.  The session
is built once and reused for every batch: variables stay resident in
the publication arenas (the executor's compute cost is what we model,
the weights feed it via the zero-copy version swap), so serving a
batch is poll flag -> decode -> forward -> write response.

Wire protocol (all little-endian, flag byte last so a torn commit can
never arm it):

* meta slot (16 B, router -> replica): ``batch_id u32 | count u16 |
  nbytes u32 | pad | epoch-flag u8`` — posted *after* the payload
  write on the same QP, so FIFO commit order makes the armed flag
  imply the payload landed;
* response record (8 B, replica -> router): ``batch_id u32 |
  count u16 | pad | epoch-flag u8``, again posted after the response
  payload on the same QP.
"""

from __future__ import annotations

import struct
from typing import Generator, Optional

from ..core.device import Direction, RdmaDevice
from ..core.publication import WeightSubscriber, park_until
from ..graph.builder import GraphBuilder
from ..graph.session import Session
from ..graph.transfer_api import NullComm
from ..core.transfer import FLAG_CLEAR, _next_epoch
from ..models.spec import ModelSpec
from ..simnet.verbs import ROLE_SERVING_RESPONSE, SERVING_PRIORITY


META_STRUCT = struct.Struct("<IHI")
META_SIZE = 16
META_FLAG_OFFSET = META_SIZE - 1

RESP_STRUCT = struct.Struct("<IH")
RESP_RECORD_SIZE = 8
RESP_FLAG_OFFSET = RESP_RECORD_SIZE - 1

#: fraction of a full training step one forward pass costs; backward
#: is roughly as expensive as forward, so inference runs at half the
#: per-sample time of Table 2
FORWARD_FRACTION = 0.5


def forward_time(spec: ModelSpec, batch_size: int) -> float:
    """Simulated forward-pass time for one batch on a replica GPU."""
    return spec.compute_time(batch_size) * FORWARD_FRACTION


class Replica:
    """One serving replica: RDMA request slots + a reusable session."""

    def __init__(self, rank: int, cluster, device: RdmaDevice,
                 spec: ModelSpec, *, max_batch: int,
                 request_bytes: int, response_bytes: int,
                 subscriber: Optional[WeightSubscriber] = None,
                 metrics=None) -> None:
        self.rank = rank
        self.device = device
        self.host = device.host
        self.sim = self.host.sim
        self.spec = spec
        self.subscriber = subscriber
        self.metrics = metrics
        self.response_bytes = response_bytes
        # Router-writable request slots (descriptors go to the router
        # at attach time, the setup path is out-of-band RPC).
        self.meta_region = device.allocate_mem_region(
            META_SIZE, label=f"serve-meta[{rank}]", dense=True)
        self.input_region = device.allocate_mem_region(
            max(max_batch * request_bytes, 1),
            label=f"serve-input[{rank}]", dense=False)
        # Local staging the response write reads from (virtual: only
        # timing moves, plus 64-byte edge windows).
        self.resp_src = device.allocate_mem_region(
            max(max_batch * response_bytes, 1),
            label=f"serve-resp-src[{rank}]", dense=False)
        # Filled in by Router.attach_replica().
        self.resp_channel = None
        self.resp_remote = None
        self._resp_epoch = 0
        self._meta_expect = 1
        self._stopped = False
        self.crashed = False
        self.batches_served = 0
        self.requests_served = 0
        self.torn_serves = 0
        self._build_session(cluster, max_batch)

    def _build_session(self, cluster, max_batch: int) -> None:
        device_name = f"replica{self.rank}"
        builder = GraphBuilder(f"serve-{self.spec.name}-{self.rank}",
                               default_device=device_name)
        compute = builder.synthetic_compute(
            time=forward_time(self.spec, max_batch), name="forward")
        self._compute_node = compute.node
        self.session = Session(cluster, builder.finalize(),
                               {device_name: self.host}, comm=NullComm())

    # -- wiring (called by the router) -------------------------------------------

    def connect_router(self, resp_channel, resp_remote) -> None:
        """Give the replica its response path back to the router."""
        self.resp_channel = resp_channel
        self.resp_remote = resp_remote

    @property
    def ready(self) -> bool:
        """Readiness probe: has a weight snapshot to serve from.

        Deliberately does *not* reflect crashes — the router learns
        about a dead replica only the honest way, from dispatch
        timeouts (the same end-to-end evidence the recovery layer
        uses), never by peeking at remote state.
        """
        if self.subscriber is not None:
            return self.subscriber.ready
        return True

    # -- lifecycle ----------------------------------------------------------------

    def stop(self) -> None:
        self._stopped = True
        self.host.notify_memory_commit()

    def fail(self) -> None:
        """Kill the replica (crash injection for rerouting tests).

        The serve loop stops consuming its meta slot; the router's
        dispatch timeout then detects the death and reroutes.
        """
        self.crashed = True
        self.stop()

    # -- the serve loop -----------------------------------------------------------

    def serve(self) -> Generator:
        """Process: consume batches from the meta slot until stopped."""
        cost = self.host.cost
        while not self._stopped:
            yield from park_until(
                self.sim, self.host,
                lambda: self._stopped or self._meta_armed())
            if self._stopped:
                return
            batch_id, count, nbytes = META_STRUCT.unpack(
                self.meta_region.read(0, META_STRUCT.size))
            self.meta_region.write(FLAG_CLEAR, META_FLAG_OFFSET)
            self._meta_expect = _next_epoch(self._meta_expect)
            # Decode + per-batch activation allocation on a CPU lane.
            yield from self.host.cpu.run(cost.sched_dispatch
                                         + cost.malloc_time(nbytes))
            if self.subscriber is not None and self.subscriber.ready:
                # The zero-copy torn-read assertion: every stamp in the
                # active arena must match the active version.
                if not self.subscriber.snapshot_consistent():
                    self.torn_serves += 1
                    if self.metrics is not None:
                        self.metrics.counter("serving.torn_serves").add(1)
            # Forward pass: batch-scaled compute through the reusable
            # session (attrs are read at execution time).
            self._compute_node.attrs["time"] = forward_time(self.spec, count)
            yield self.session.iteration_process()
            self.batches_served += 1
            self.requests_served += count
            if self._stopped or self.resp_channel is None:
                return
            yield from self._respond(batch_id, count)

    def _meta_armed(self) -> bool:
        return self.meta_region.read_byte(META_FLAG_OFFSET) == self._meta_expect

    def _respond(self, batch_id: int, count: int) -> Generator:
        resp_nbytes = count * self.response_bytes
        # Payload first, record+flag second, same QP: FIFO commit order
        # is the correctness argument, exactly like the request side.
        self.resp_channel.memcpy(
            self.resp_src.addr, self.resp_src,
            self.resp_remote.addr + RESP_RECORD_SIZE, self.resp_remote,
            resp_nbytes, Direction.LOCAL_TO_REMOTE,
            role=ROLE_SERVING_RESPONSE, priority=SERVING_PRIORITY)
        self._resp_epoch = _next_epoch(self._resp_epoch)
        record = (RESP_STRUCT.pack(batch_id, count)
                  + b"\x00" * (RESP_FLAG_OFFSET - RESP_STRUCT.size)
                  + bytes([self._resp_epoch]))
        yield self.resp_channel.memcpy_event(
            0, None, self.resp_remote.addr, self.resp_remote, len(record),
            Direction.LOCAL_TO_REMOTE, inline_data=record,
            role=ROLE_SERVING_RESPONSE, priority=SERVING_PRIORITY)
