"""Token-level LLM serving: KV-budgeted continuous batching.

Transformer inference has two phases with opposite cost shapes:
*prefill* ingests the whole prompt at once (priced by prompt length)
and *decode* generates one token per iteration for every running
request (priced by batch width).  The fixed close-on-size/timeout
batcher from the CNN serving plane wastes decode slots — a batch runs
at the width of its longest member, and new arrivals wait for the
whole batch to finish.  This module adds the vLLM-style alternative:

* **continuous mode** — an iteration-level decode loop.  Each step the
  replica admits new requests into the running batch (prefill,
  KV-budget permitting), decodes one token for everyone, and retires
  finished requests immediately, freeing their KV cache for the next
  admission.  Budget pressure preempts a request (its cache is
  evicted; it re-prefills prompt + generated tokens on re-admission).
* **static mode** — the PR 5 fixed batcher semantics applied to
  tokens: batches close on size/timeout, prefill and decode run at
  the padded batch width, and every request returns when the whole
  batch finishes.  This is the baseline `llmserve` measures against.

TTFT (time to first token) and TPOT (time per output token) flow
through the existing streaming histograms in the metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, List, Optional, Tuple

import collections

from ..models.transformer import TransformerSpec
from ..observability.registry import MetricsRegistry
from ..simnet.simulator import Simulator
from .batcher import DynamicBatcher
from .kvcache import KVCache, KVTracker


LLM_MODES = ("continuous", "static")

#: new prefills admitted per decode iteration (continuous mode); keeps
#: one prompt from starving the running batch of decode steps
MAX_PREFILLS_PER_STEP = 2


@dataclass
class LLMRequest:
    """One generation request's lifetime, all times in sim seconds."""

    req_id: int
    created: float
    prompt_tokens: int
    max_new_tokens: int
    #: when the frontend admitted it (post transport)
    admitted: Optional[float] = None
    #: when its first output token was produced (end of prefill)
    first_token: Optional[float] = None
    completed: Optional[float] = None
    shed: bool = False
    #: output tokens produced so far (survives preemption)
    generated: int = 0
    #: times this request's KV cache was evicted under budget pressure
    preemptions: int = 0
    replica: Optional[int] = None

    @property
    def terminal(self) -> bool:
        return self.shed or self.completed is not None

    @property
    def ttft(self) -> Optional[float]:
        if self.first_token is None:
            return None
        return self.first_token - self.created

    @property
    def latency(self) -> Optional[float]:
        if self.completed is None:
            return None
        return self.completed - self.created

    @property
    def tpot(self) -> Optional[float]:
        """Mean seconds per output token after the first."""
        if self.completed is None or self.generated < 2:
            return None
        return (self.completed - self.first_token) / (self.generated - 1)


class LLMReplica:
    """One replica's token engine: KV cache + a decode loop."""

    def __init__(self, rank: int, sim: Simulator, spec: TransformerSpec, *,
                 kv_budget_bytes: int, max_width: int = 16,
                 mode: str = "continuous", max_batch: int = 8,
                 batch_timeout: float = 2e-3,
                 metrics: Optional[MetricsRegistry] = None,
                 frontend: Optional["LLMFrontend"] = None) -> None:
        if mode not in LLM_MODES:
            raise ValueError(f"unknown llm mode {mode!r}; have {LLM_MODES}")
        if max_width < 1:
            raise ValueError("max_width must be at least 1")
        self.rank = rank
        self.sim = sim
        self.spec = spec
        self.mode = mode
        self.max_width = max_width
        self.cache = KVCache(kv_budget_bytes)
        self.metrics = metrics
        self.frontend = frontend
        self.queue: Deque[LLMRequest] = collections.deque()
        self.running: List[Tuple[LLMRequest, KVTracker]] = []
        self.batcher = (DynamicBatcher(sim, max_batch, batch_timeout,
                                       metrics=metrics)
                        if mode == "static" else None)
        self._arrival = None
        self._stopped = False
        self.prefills = 0
        self.decode_steps = 0
        self.decode_tokens = 0
        self.completed = 0
        self.kv_shed = 0

    # -- request intake ----------------------------------------------------

    @property
    def load(self) -> int:
        """Queued + running requests (the frontend's balance figure)."""
        return len(self.queue) + len(self.running) + (
            len(self.batcher) if self.batcher is not None else 0)

    def submit(self, request: LLMRequest) -> None:
        request.replica = self.rank
        if self.batcher is not None:
            self.batcher.add(request)
            return
        self.queue.append(request)
        if self._arrival is not None and not self._arrival.triggered:
            self._arrival.succeed()

    def stop(self) -> None:
        self._stopped = True
        if self.batcher is not None:
            self.batcher.stop()
        if self._arrival is not None and not self._arrival.triggered:
            self._arrival.succeed()

    def engine(self) -> Generator:
        if self.mode == "static":
            return self._static_engine()
        return self._continuous_engine()

    # -- continuous mode ---------------------------------------------------

    def _wait_arrival(self) -> Generator:
        self._arrival = self.sim.event()
        yield self._arrival
        self._arrival = None

    def _finish(self, request: LLMRequest, tracker: KVTracker) -> None:
        request.completed = self.sim.now
        self.cache.release(tracker)
        self.completed += 1
        if self.metrics is not None:
            self.metrics.histogram("llm.tpot_s").observe(
                request.tpot if request.tpot is not None else 0.0)
            self.metrics.histogram("llm.latency_s").observe(request.latency)
        if self.frontend is not None:
            self.frontend.done(request)

    def _shed(self, request: LLMRequest) -> None:
        request.shed = True
        self.kv_shed += 1
        if self.frontend is not None:
            self.frontend.done(request)

    def _admit_one(self) -> Generator:
        """Process: prefill the queue head into the running batch.

        The tracker reserves prompt + already-generated tokens (a
        preempted request rebuilds its evicted cache) plus the first
        new token the prefill emits.
        """
        request = self.queue.popleft()
        context = request.prompt_tokens + request.generated
        tracker = KVTracker(request.req_id, self.spec.kv_bytes_per_token,
                            tokens=context + 1)
        if not self.cache.admit(tracker):
            if not self.running and self.cache.outstanding == 0:
                # Can never fit, even on an idle replica: shed rather
                # than deadlock the drain.
                self._shed(request)
            else:
                self.queue.appendleft(request)
            return
        yield self.spec.prefill_time(context)
        self.prefills += 1
        request.generated += 1
        if request.first_token is None:
            request.first_token = self.sim.now
            if self.metrics is not None:
                self.metrics.histogram("llm.ttft_s").observe(request.ttft)
        if request.generated >= request.max_new_tokens:
            self._finish(request, tracker)
            return
        self.running.append((request, tracker))

    def _continuous_engine(self) -> Generator:
        """Process: the iteration-level batching loop."""
        while True:
            if not self.queue and not self.running:
                if self._stopped:
                    return
                yield from self._wait_arrival()
                continue
            # Join phase: admit up to MAX_PREFILLS_PER_STEP waiting
            # requests, stopping at the width cap or the KV budget.
            admitted = 0
            while (self.queue and len(self.running) < self.max_width
                   and admitted < MAX_PREFILLS_PER_STEP):
                before = len(self.running) + self.completed + self.kv_shed
                yield from self._admit_one()
                if len(self.running) + self.completed + self.kv_shed \
                        == before:
                    break  # head didn't fit; stop admitting this round
                admitted += 1
            if not self.running:
                continue
            # Decode phase: one token for the whole running batch.
            width = len(self.running)
            yield self.spec.decode_step_time(width)
            self.decode_steps += 1
            self.decode_tokens += width
            if self.metrics is not None:
                self.metrics.histogram("llm.decode_width").observe(width)
            still: List[Tuple[LLMRequest, KVTracker]] = []
            for request, tracker in self.running:
                request.generated += 1
                if request.generated >= request.max_new_tokens:
                    self._finish(request, tracker)
                elif not self.cache.grow(tracker):
                    # Budget pressure: evict and resume later — the
                    # re-prefill rebuilds prompt + generated tokens.
                    self.cache.evict(tracker)
                    request.preemptions += 1
                    self.queue.appendleft(request)
                else:
                    still.append((request, tracker))
            self.running = still

    # -- static mode (the PR 5 fixed-batcher baseline) ---------------------

    def _static_engine(self) -> Generator:
        """Process: serve closed batches at padded width.

        Mirrors classic batched inference: the batch prefills
        together (padded to its longest prompt), decodes at constant
        width until its longest generation finishes, and only then
        returns — no joins, no early exits.
        """
        while True:
            if self._stopped and not len(self.batcher) \
                    and not len(self.batcher.batches):
                return
            batch = yield self.batcher.batches.get()
            pending: Deque[LLMRequest] = collections.deque(batch)
            while pending:
                # Take the KV-feasible prefix; batches whose combined
                # worst-case cache exceeds the budget run in chunks.
                chunk: List[Tuple[LLMRequest, KVTracker]] = []
                while pending and len(chunk) < self.max_width:
                    request = pending[0]
                    worst = request.prompt_tokens + request.max_new_tokens
                    tracker = KVTracker(request.req_id,
                                        self.spec.kv_bytes_per_token,
                                        tokens=worst)
                    if not self.cache.admit(tracker):
                        if not chunk and self.cache.outstanding == 0:
                            pending.popleft()
                            self._shed(request)
                            continue
                        break
                    pending.popleft()
                    chunk.append((request, tracker))
                if not chunk:
                    continue
                yield from self._serve_static_chunk(chunk)

    def _serve_static_chunk(
            self, chunk: List[Tuple[LLMRequest, KVTracker]]) -> Generator:
        width = len(chunk)
        longest_prompt = max(r.prompt_tokens for r, _ in chunk)
        # Padded prefill: every slot pays the longest prompt, and the
        # pass runs at batch width.
        yield (self.spec.prefill_time(longest_prompt)
               * max(1.0, width / self.spec.width_saturation))
        self.prefills += width
        now = self.sim.now
        for request, _ in chunk:
            request.generated = 1
            if request.first_token is None:
                request.first_token = now
                if self.metrics is not None:
                    self.metrics.histogram("llm.ttft_s").observe(
                        request.ttft)
        steps = max(r.max_new_tokens for r, _ in chunk) - 1
        for _ in range(steps):
            yield self.spec.decode_step_time(width)
            self.decode_steps += 1
            if self.metrics is not None:
                self.metrics.histogram("llm.decode_width").observe(width)
            for request, _ in chunk:
                if request.generated < request.max_new_tokens:
                    request.generated += 1
                    self.decode_tokens += 1
        # The whole batch returns together (and its KV frees together).
        for request, tracker in chunk:
            self._finish(request, tracker)


class LLMFrontend:
    """Admission + least-loaded dispatch over the LLM replicas."""

    def __init__(self, replicas: List[LLMReplica],
                 admission_limit: int = 128,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.replicas = replicas
        self.admission_limit = admission_limit
        self.metrics = metrics
        self.in_system = 0
        self.submitted = 0
        self.shed = 0
        self.finished: List[LLMRequest] = []
        for replica in replicas:
            replica.frontend = self

    def submit(self, request: LLMRequest, now: float) -> None:
        self.submitted += 1
        if self.in_system >= self.admission_limit:
            request.shed = True
            self.shed += 1
            self.finished.append(request)
            return
        request.admitted = now
        self.in_system += 1
        target = min(self.replicas, key=lambda r: r.load)
        target.submit(request)

    def done(self, request: LLMRequest) -> None:
        """Replica callback: a request reached a terminal state."""
        self.in_system -= 1
        if request.shed:
            self.shed += 1
        self.finished.append(request)

    def drained(self, total: int) -> bool:
        return len(self.finished) >= total


@dataclass
class LLMServingResult:
    """One LLM serving run, JSON-ready."""

    model: str
    mode: str
    replicas: int
    qps: float
    seed: int
    arrival: str
    kv_budget_bytes: int
    max_width: int
    max_batch: int
    batch_timeout: float
    total: int
    completed: int
    shed: int
    preemptions: int
    makespan: float
    prefills: int
    decode_steps: int
    decode_tokens: int
    mean_width: float
    ttft: Dict[str, float]
    tpot: Dict[str, float]
    latency: Dict[str, float]
    kv: Dict[str, int] = field(default_factory=dict)
    #: bytes still pinned after drain — any non-zero value is a leak
    kv_leaked_bytes: int = 0

    @property
    def decode_tokens_per_s(self) -> float:
        return self.decode_tokens / self.makespan if self.makespan else 0.0

    def to_dict(self) -> Dict:
        return {
            "model": self.model, "mode": self.mode,
            "replicas": self.replicas, "qps": self.qps, "seed": self.seed,
            "arrival": self.arrival,
            "kv_budget_bytes": self.kv_budget_bytes,
            "max_width": self.max_width, "max_batch": self.max_batch,
            "batch_timeout": self.batch_timeout,
            "total": self.total, "completed": self.completed,
            "shed": self.shed, "preemptions": self.preemptions,
            "makespan": self.makespan, "prefills": self.prefills,
            "decode_steps": self.decode_steps,
            "decode_tokens": self.decode_tokens,
            "decode_tokens_per_s": self.decode_tokens_per_s,
            "mean_width": self.mean_width,
            "ttft": self.ttft, "tpot": self.tpot, "latency": self.latency,
            "kv": self.kv, "kv_leaked_bytes": self.kv_leaked_bytes,
        }
