"""Per-request KV-cache accounting for transformer serving.

Each in-flight request pins ``kv_bytes_per_token * tokens`` of replica
memory — a tensor that *grows every decode step*, the dynamic
allocation the paper's §3.3 machinery exists for.  A
:class:`KVTracker` sizes one request's cache token by token; a
:class:`KVCache` enforces the replica's byte budget: admission reserves
the prompt's footprint, each decode step grows it by one token, and
budget pressure preempts (evicts) a running request, whose cache is
rebuilt from its tokens on re-admission.

The shape follows the Helix cluster simulator's KVTracker/KVCache
(SNIPPETS.md snippet 3), reduced to what the continuous-batching loop
needs: exact byte accounting with leak detection, not paged blocks.
"""

from __future__ import annotations

from typing import Dict


class KVTracker:
    """One request's KV-cache footprint, sized token by token."""

    __slots__ = ("req_id", "bytes_per_token", "tokens")

    def __init__(self, req_id: int, bytes_per_token: int,
                 tokens: int = 0) -> None:
        if bytes_per_token < 1:
            raise ValueError("bytes_per_token must be positive")
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        self.req_id = req_id
        self.bytes_per_token = bytes_per_token
        self.tokens = tokens

    @property
    def nbytes(self) -> int:
        return self.tokens * self.bytes_per_token

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"KVTracker(req={self.req_id}, tokens={self.tokens}, "
                f"bytes={self.nbytes})")


class KVCache:
    """A replica's KV arena: a byte budget over live trackers.

    Counters make the two invariants checkable from outside: every
    admitted byte is released (``used == 0`` after drain, else it
    leaked), and ``used`` never exceeds ``budget_bytes``.
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes < 1:
            raise ValueError("budget must be positive")
        self.budget_bytes = budget_bytes
        self.used = 0
        self.peak = 0
        self.trackers: Dict[int, KVTracker] = {}
        self.admissions = 0
        self.denials = 0
        self.evictions = 0
        self.grown_tokens = 0

    @property
    def free_bytes(self) -> int:
        return self.budget_bytes - self.used

    @property
    def outstanding(self) -> int:
        """Live trackers — non-zero after drain means a leak."""
        return len(self.trackers)

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes

    def admit(self, tracker: KVTracker) -> bool:
        """Reserve a tracker's current footprint; False if over budget."""
        if tracker.req_id in self.trackers:
            raise ValueError(f"request {tracker.req_id} already admitted")
        if not self.fits(tracker.nbytes):
            self.denials += 1
            return False
        self.trackers[tracker.req_id] = tracker
        self.used += tracker.nbytes
        self.peak = max(self.peak, self.used)
        self.admissions += 1
        return True

    def grow(self, tracker: KVTracker, tokens: int = 1) -> bool:
        """Extend a live tracker by ``tokens``; False if over budget."""
        if tracker.req_id not in self.trackers:
            raise ValueError(f"request {tracker.req_id} not admitted")
        need = tokens * tracker.bytes_per_token
        if not self.fits(need):
            return False
        tracker.tokens += tokens
        self.used += need
        self.peak = max(self.peak, self.used)
        self.grown_tokens += tokens
        return True

    def release(self, tracker: KVTracker) -> None:
        """Free a finished request's cache."""
        if self.trackers.pop(tracker.req_id, None) is None:
            raise ValueError(f"request {tracker.req_id} not admitted")
        self.used -= tracker.nbytes
        assert self.used >= 0, "KV accounting went negative"

    def evict(self, tracker: KVTracker) -> None:
        """Free a *running* request's cache under budget pressure."""
        self.release(tracker)
        self.evictions += 1

    def stats(self) -> Dict[str, int]:
        return {
            "budget_bytes": self.budget_bytes,
            "used_bytes": self.used,
            "peak_bytes": self.peak,
            "outstanding": self.outstanding,
            "admissions": self.admissions,
            "denials": self.denials,
            "evictions": self.evictions,
            "grown_tokens": self.grown_tokens,
        }
