"""Dynamic batching: the max-batch-size / batching-timeout tradeoff.

Requests queue at the router; a batch closes when it reaches
``max_batch`` requests or ``timeout`` seconds after its *first*
request, whichever comes first.  Larger batches amortize the forward
pass (GPU compute is flat below the saturation batch), the timeout
bounds the queueing delay a lonely request can suffer — the classic
serving knob pair this subsystem exists to measure.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..simnet.simulator import Simulator, Store


class DynamicBatcher:
    """Size-or-timeout batch closing over a FIFO request queue.

    ``add()`` may be called from any process; closed batches come out
    of :attr:`batches` (a :class:`~repro.simnet.simulator.Store`) in
    closing order.  ``max_batch=1`` with ``timeout=0`` degenerates to
    per-request dispatch — the no-batching baseline.
    """

    def __init__(self, sim: Simulator, max_batch: int,
                 timeout: float, metrics=None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if timeout < 0:
            raise ValueError("timeout must be non-negative")
        self.sim = sim
        self.max_batch = max_batch
        self.timeout = timeout
        self.metrics = metrics
        self.batches: Store = Store(sim)
        self._pending: List = []
        self._arrival: Optional = None
        self._stopped = False

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, request) -> None:
        """Enqueue one request (called by the router's admission path)."""
        self._pending.append(request)
        if self.metrics is not None:
            self.metrics.gauge("serving.batcher_depth").set(
                len(self._pending))
        if self._arrival is not None and not self._arrival.triggered:
            self._arrival.succeed()

    def stop(self) -> None:
        self._stopped = True
        if self._arrival is not None and not self._arrival.triggered:
            self._arrival.succeed()

    def _wait_arrival(self, deadline: Optional[float] = None) -> Generator:
        """Process: sleep until add() fires or the deadline passes."""
        self._arrival = self.sim.event()
        waits = [self._arrival]
        if deadline is not None:
            waits.append(self.sim.timeout(max(0.0, deadline - self.sim.now)))
        yield self.sim.any_of(waits)
        self._arrival = None

    def run(self) -> Generator:
        """Process: close batches until stopped."""
        while not self._stopped:
            while not self._pending and not self._stopped:
                yield from self._wait_arrival()
            if self._stopped:
                break
            deadline = self.sim.now + self.timeout
            batch: List = []
            while len(batch) < self.max_batch:
                take = min(self.max_batch - len(batch), len(self._pending))
                batch.extend(self._pending[:take])
                del self._pending[:take]
                if len(batch) >= self.max_batch or self.sim.now >= deadline:
                    break
                if not self._pending:
                    yield from self._wait_arrival(deadline)
                    if self._stopped:
                        break
                    if not self._pending and self.sim.now >= deadline:
                        break
            if self.metrics is not None:
                self.metrics.gauge("serving.batcher_depth").set(
                    len(self._pending))
                self.metrics.histogram("serving.batch_size").observe(
                    len(batch))
            if batch:
                self.batches.put(batch)
        # Flush whatever is queued so a drain-then-stop sees every
        # request either batched or still pending at shutdown.
        if self._pending:
            self.batches.put(self._pending[:])
            self._pending.clear()
