"""Harness-level knobs for the inference serving plane.

Mirrors the :class:`repro.distributed.runner.CommConfig` idiom: the
CLI writes one process-global config (``--replicas``, ``--qps``,
``--max-batch``, ``--batch-timeout``, ``--slo-ms``) and the serving
experiment reads it back, so sweeps vary the serving shape without
code edits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..collectives.broadcast import BROADCAST_MODES
from ..simnet.arrivals import ARRIVAL_KINDS


@dataclass(frozen=True)
class ServingConfig:
    """Shape of one simulated serving deployment."""

    #: model replicas behind the router (each on its own host)
    replicas: int = 2
    #: open-loop offered load, requests per (simulated) second
    qps: float = 1200.0
    #: dynamic batcher: close a batch at this many requests ...
    max_batch: int = 8
    #: ... or this many seconds after its first request, whichever
    #: comes first
    batch_timeout: float = 2e-3
    #: latency objective used for SLO-attainment accounting (ms)
    slo_ms: float = 25.0
    #: arrival process of the load generator (see
    #: :data:`repro.simnet.arrivals.ARRIVAL_KINDS`)
    arrival: str = "poisson"
    #: admission control: shed new requests once this many are in the
    #: system (queued + dispatched)
    admission_limit: int = 128
    #: weight-broadcast schedule ("direct" or "chain")
    broadcast: str = "direct"
    #: per-replica KV-cache byte budget for LLM serving (MB);
    #: admission reserves the prompt's footprint against it
    kv_budget_mb: float = 2048.0
    #: continuous batching: running-batch width cap per replica
    max_width: int = 16


_SERVING_CONFIG = ServingConfig()


def serving_config() -> ServingConfig:
    """The currently configured serving-plane knobs."""
    return _SERVING_CONFIG


def configure_serving(replicas: Optional[int] = None,
                      qps: Optional[float] = None,
                      max_batch: Optional[int] = None,
                      batch_timeout: Optional[float] = None,
                      slo_ms: Optional[float] = None,
                      arrival: Optional[str] = None,
                      admission_limit: Optional[int] = None,
                      broadcast: Optional[str] = None,
                      kv_budget_mb: Optional[float] = None,
                      max_width: Optional[int] = None) -> ServingConfig:
    """Override selected serving knobs; returns the new config."""
    global _SERVING_CONFIG
    changes = {}
    if replicas is not None:
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        changes["replicas"] = replicas
    if qps is not None:
        if qps <= 0:
            raise ValueError("qps must be positive")
        changes["qps"] = qps
    if max_batch is not None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        changes["max_batch"] = max_batch
    if batch_timeout is not None:
        if batch_timeout < 0:
            raise ValueError("batch_timeout must be non-negative")
        changes["batch_timeout"] = batch_timeout
    if slo_ms is not None:
        if slo_ms <= 0:
            raise ValueError("slo_ms must be positive")
        changes["slo_ms"] = slo_ms
    if arrival is not None:
        if arrival not in ARRIVAL_KINDS:
            raise ValueError(f"unknown arrival kind {arrival!r}; "
                             f"have {ARRIVAL_KINDS}")
        changes["arrival"] = arrival
    if admission_limit is not None:
        if admission_limit < 1:
            raise ValueError("admission_limit must be at least 1")
        changes["admission_limit"] = admission_limit
    if broadcast is not None:
        if broadcast not in BROADCAST_MODES:
            raise ValueError(f"unknown broadcast mode {broadcast!r}; "
                             f"have {BROADCAST_MODES}")
        changes["broadcast"] = broadcast
    if kv_budget_mb is not None:
        if kv_budget_mb <= 0:
            raise ValueError("kv_budget_mb must be positive")
        changes["kv_budget_mb"] = kv_budget_mb
    if max_width is not None:
        if max_width < 1:
            raise ValueError("max_width must be at least 1")
        changes["max_width"] = max_width
    _SERVING_CONFIG = replace(_SERVING_CONFIG, **changes)
    return _SERVING_CONFIG


def reset_serving_config() -> None:
    """Restore the built-in serving defaults."""
    global _SERVING_CONFIG
    _SERVING_CONFIG = ServingConfig()
