"""The serving frontend: admission control, dispatch, health, reroute.

The router is the only component that talks to clients.  It admits
requests (shedding beyond a queue limit), batches them dynamically,
and dispatches each batch to an idle replica with two one-sided
writes — the batched payload, then the 16-byte meta record whose
epoch flag commits the batch (same-QP FIFO makes the flag imply the
payload).  Responses come back the same way in reverse; a per-replica
response slot on the router is polled by one poller process.

Health is timeout-based, the same end-to-end evidence the recovery
layer uses: a dispatch that produces no response within
``dispatch_timeout`` is a strike, two strikes mark the replica dead
and its in-flight batch is rerouted through the batcher to the
survivors.  Late responses from a presumed-dead replica are ignored
by batch-id mismatch, so a slow replica can rejoin the pool
harmlessly (it simply stops being dispatched to).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ..core.device import DeviceError, Direction, RdmaDevice
from ..core.publication import park_until
from ..core.transfer import FLAG_CLEAR, _next_epoch
from ..simnet.verbs import ROLE_SERVING_REQUEST, SERVING_PRIORITY
from .batcher import DynamicBatcher
from .load import Request
from .replica import (META_FLAG_OFFSET, META_SIZE, META_STRUCT,
                      RESP_FLAG_OFFSET, RESP_RECORD_SIZE, RESP_STRUCT,
                      Replica)


class _ReplicaLink:
    """Router-side state for one attached replica."""

    def __init__(self, replica: Replica, channel, resp_region) -> None:
        self.replica = replica
        self.channel = channel
        self.meta_remote = replica.meta_region.descriptor()
        self.input_remote = replica.input_region.descriptor()
        self.resp_region = resp_region
        self.meta_epoch = 0
        self.resp_expect = 1
        self.busy = False
        #: the router's own belief, earned from dispatch timeouts —
        #: never read off the (possibly crashed) replica itself
        self.alive = True
        self.strikes = 0

    @property
    def available(self) -> bool:
        return self.alive and not self.busy and self.replica.ready


class Router:
    """Admission + dynamic batching + SLO-tagged dispatch + health."""

    def __init__(self, device: RdmaDevice, batcher: DynamicBatcher, *,
                 max_batch: int, request_bytes: int, response_bytes: int,
                 admission_limit: int = 128, dispatch_timeout: float = 0.1,
                 max_strikes: int = 2, metrics=None) -> None:
        self.device = device
        self.host = device.host
        self.sim = self.host.sim
        self.batcher = batcher
        self.max_batch = max_batch
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.admission_limit = admission_limit
        self.dispatch_timeout = dispatch_timeout
        self.max_strikes = max_strikes
        self.metrics = metrics
        self.links: List[_ReplicaLink] = []
        # Payload staging the dispatch write reads from (virtual).
        self._payload_src = self.device.allocate_mem_region(
            max(max_batch * request_bytes, 1), label="dispatch-src",
            dense=False)
        self._outstanding: Dict[int, Tuple] = {}  # batch_id -> (event, link)
        self._next_batch_id = 1
        self._rr = 0
        self._freed: Optional = None
        self._stopped = False
        # Accounting for the drain condition and the result report.
        self.submitted = 0
        self.completed = 0
        self.shed = 0
        self.failed = 0
        self.in_system = 0
        self.latencies: List[float] = []
        #: (completion sim-time, latency) pairs — the burn-rate
        #: detector's windowed input (see observability.anomaly)
        self.latency_samples: List[Tuple[float, float]] = []
        self.replica_deaths = 0

    # -- wiring -------------------------------------------------------------------

    def attach_replica(self, replica: Replica) -> None:
        """Connect one replica: channels + slot descriptors, both ways."""
        channel = self.device.get_channel(replica.device.endpoint, 0)
        resp_region = self.device.allocate_mem_region(
            RESP_RECORD_SIZE + self.max_batch * self.response_bytes,
            label=f"resp-slot[{replica.rank}]", dense=True)
        link = _ReplicaLink(replica, channel, resp_region)
        self.links.append(link)
        replica.connect_router(
            resp_channel=replica.device.get_channel(self.device.endpoint, 0),
            resp_remote=resp_region.descriptor())

    @property
    def alive_replicas(self) -> int:
        return sum(1 for link in self.links if link.alive)

    # -- admission ----------------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Admit or shed one request (called by the load generator)."""
        self.submitted += 1
        if self.in_system >= self.admission_limit:
            request.shed = True
            self.shed += 1
            if self.metrics is not None:
                self.metrics.counter("serving.shed").add(1)
            return
        self.in_system += 1
        if self.metrics is not None:
            self.metrics.gauge("serving.in_system").set(self.in_system)
        self.batcher.add(request)

    def drained(self, total: int) -> bool:
        """Every submitted request reached a terminal state."""
        return (self.submitted >= total
                and self.completed + self.shed + self.failed >= total)

    # -- lifecycle ----------------------------------------------------------------

    def stop(self) -> None:
        self._stopped = True
        self.batcher.stop()
        self.batcher.batches.put(None)  # wake the dispatcher's get()
        if self._freed is not None and not self._freed.triggered:
            self._freed.succeed()
        self.host.notify_memory_commit()

    def _notify_freed(self) -> None:
        if self._freed is not None and not self._freed.triggered:
            self._freed.succeed()

    # -- dispatch -----------------------------------------------------------------

    def dispatcher(self) -> Generator:
        """Process: pull closed batches, place each on an idle replica."""
        while not self._stopped:
            batch = yield self.batcher.batches.get()
            if batch is None or self._stopped:
                return
            link = yield from self._acquire_link(batch)
            if link is None:
                continue  # batch failed (no replicas left)
            link.busy = True
            self.sim.spawn(self._dispatch(batch, link),
                           name=f"dispatch-r{link.replica.rank}")

    def _acquire_link(self, batch: List[Request]):
        """Process: wait for an available replica (round-robin pick).

        Returns None — after recording the batch as failed — once no
        replica is left alive (total-loss degraded mode).
        """
        while not self._stopped:
            if not any(link.alive for link in self.links):
                self.failed += len(batch)
                self.in_system -= len(batch)
                if self.metrics is not None:
                    self.metrics.counter("serving.failed").add(len(batch))
                return None
            candidates = [link for link in self.links if link.available]
            if candidates:
                link = candidates[self._rr % len(candidates)]
                self._rr += 1
                return link
            # Wake on a dispatch finishing, or poll: a replica can also
            # become available without freeing (its first weight
            # snapshot arriving), which only a timer notices.
            self._freed = self.sim.event()
            yield self.sim.any_of([self._freed, self.sim.timeout(200e-6)])
            self._freed = None
        return None

    def _dispatch(self, batch: List[Request], link: _ReplicaLink) -> Generator:
        """Process: one batch on one replica, with timeout health check."""
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        response = self.sim.event()
        self._outstanding[batch_id] = (response, link)
        total_nbytes = sum(request.nbytes for request in batch)
        ok = False
        try:
            # Payload, then meta+flag, same QP: the armed flag implies
            # the payload committed (FIFO), mirroring §3.2's protocol.
            link.channel.memcpy(
                self._payload_src.addr, self._payload_src,
                link.input_remote.addr, link.input_remote,
                max(total_nbytes, 1), Direction.LOCAL_TO_REMOTE,
                role=ROLE_SERVING_REQUEST, priority=SERVING_PRIORITY)
            link.meta_epoch = _next_epoch(link.meta_epoch)
            meta = (META_STRUCT.pack(batch_id, len(batch), total_nbytes)
                    + b"\x00" * (META_FLAG_OFFSET - META_STRUCT.size)
                    + bytes([link.meta_epoch]))
            link.channel.memcpy(
                0, None, link.meta_remote.addr, link.meta_remote,
                len(meta), Direction.LOCAL_TO_REMOTE, inline_data=meta,
                role=ROLE_SERVING_REQUEST, priority=SERVING_PRIORITY)
            yield self.sim.any_of(
                [response, self.sim.timeout(self.dispatch_timeout)])
            ok = response.triggered
        except DeviceError:
            ok = False  # broken QP counts as a strike, like a timeout
        self._outstanding.pop(batch_id, None)
        if ok:
            link.strikes = 0
            now = self.sim.now
            for request in batch:
                request.completed = now
                latency = request.latency
                self.latencies.append(latency)
                self.latency_samples.append((now, latency))
                if self.metrics is not None:
                    self.metrics.histogram("serving.latency_s").observe(
                        latency)
            self.completed += len(batch)
            self.in_system -= len(batch)
            if self.metrics is not None:
                self.metrics.gauge("serving.in_system").set(self.in_system)
        else:
            link.strikes += 1
            if link.strikes >= self.max_strikes and link.alive:
                link.alive = False
                self.replica_deaths += 1
                if self.metrics is not None:
                    self.metrics.counter("serving.replica_deaths").add(1)
            # Reroute through the batcher; the batch keeps its requests'
            # original arrival times, so rerouting cost shows up in the
            # latency distribution rather than vanishing.
            for request in batch:
                request.redispatches += 1
                self.batcher.add(request)
        link.busy = False
        self._notify_freed()

    # -- responses ----------------------------------------------------------------

    def response_poller(self) -> Generator:
        """Process: match armed response slots to outstanding batches."""
        while not self._stopped:
            yield from park_until(
                self.sim, self.host,
                lambda: self._stopped or self._armed_link() is not None)
            if self._stopped:
                return
            link = self._armed_link()
            if link is None:  # pragma: no cover - racing stop()
                continue
            batch_id, _count = RESP_STRUCT.unpack(
                link.resp_region.read(0, RESP_STRUCT.size))
            link.resp_region.write(FLAG_CLEAR, RESP_FLAG_OFFSET)
            link.resp_expect = _next_epoch(link.resp_expect)
            entry = self._outstanding.get(batch_id)
            if entry is not None:
                event, _link = entry
                if not event.triggered:
                    event.succeed()
            # else: late response from a rerouted batch — ignored.

    def _armed_link(self) -> Optional[_ReplicaLink]:
        for link in self.links:
            if link.resp_region.read_byte(RESP_FLAG_OFFSET) == link.resp_expect:
                return link
        return None
