"""Inference serving plane: zero-copy model serving over the RDMA
device layer.

Three planes on one simulated cluster:

* **request plane** — seeded open-loop load generation, admission
  control, dynamic batching (max-batch-size / batching-timeout), and
  replica dispatch with one-sided writes;
* **weight publication** — the trainer publishes versioned parameter
  snapshots into double-buffered replica arenas with the epoch-flag
  protocol (:mod:`repro.core.publication`), so replicas swap versions
  zero-copy and never serve a torn snapshot;
* **SLO-aware co-location** — serving transfers carry a high wire
  priority, so the priority quantum scheduler bounds inference tail
  latency while bulk training traffic saturates the same links.
"""

from .batcher import DynamicBatcher
from .benchmark import ServingResult, run_serving_benchmark
from .config import (ServingConfig, configure_serving,
                     reset_serving_config, serving_config)
from .frontend import Router
from .load import (DEFAULT_REQUEST_BYTES, DEFAULT_RESPONSE_BYTES,
                   LoadGenerator, Request)
from .replica import Replica, forward_time

__all__ = [
    "DEFAULT_REQUEST_BYTES", "DEFAULT_RESPONSE_BYTES", "DynamicBatcher",
    "LoadGenerator", "Replica", "Request", "Router", "ServingConfig",
    "ServingResult", "configure_serving", "forward_time",
    "reset_serving_config", "run_serving_benchmark", "serving_config",
]
