"""Graph partitioning: placement-driven split with Send/Recv insertion.

Mirrors TensorFlow's placement pass (paper §2.1, Figure 2): every node
carries a device tag; the partitioner splits the graph into one
subgraph per device and replaces each cross-device edge with a
``_Send`` node on the producer's device and a ``_Recv`` node on the
consumer's device, linked by a rendezvous key.  These marker nodes are
later bound to a concrete transfer mechanism (gRPC, RDMA static, RDMA
dynamic) by the session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .node import Graph, GraphError, Node, NodeOutput
from .ops import infer_shapes


def transfer_key(src_name: str, src_index: int, dst_device: str) -> str:
    """Rendezvous key of the cut edge ``src_name:src_index -> dst_device``.

    The single definition of the key format — collective builders use
    it to pre-label edges (``Graph.collective_edges``) that partitioning
    will later discover, so the two sides cannot drift apart.
    """
    return f"{src_name}:{src_index}->{dst_device}"


@dataclass(frozen=True)
class TransferEdge:
    """One cross-device tensor transfer discovered by partitioning."""

    key: str
    src_device: str
    dst_device: str
    src_node: str          # producer node name (in the source subgraph)
    send_node: str
    recv_node: str
    nbytes_static: Optional[int]   # known iff the shape is static
    static_shape: bool


@dataclass
class PartitionedGraph:
    """The result of partitioning: per-device subgraphs plus edges."""

    original: Graph
    subgraphs: Dict[str, Graph]
    transfers: List[TransferEdge] = field(default_factory=list)

    @property
    def devices(self) -> List[str]:
        return list(self.subgraphs)

    def transfers_into(self, device: str) -> List[TransferEdge]:
        return [t for t in self.transfers if t.dst_device == device]

    def transfers_out_of(self, device: str) -> List[TransferEdge]:
        return [t for t in self.transfers if t.src_device == device]


def partition(graph: Graph) -> PartitionedGraph:
    """Split ``graph`` by node.device; insert Send/Recv at cut edges.

    Shape inference must have run (``node.output_shapes`` populated);
    the inserted ``_Recv`` nodes inherit the producer's inferred shape
    and its static/dynamic classification — this is how the analyzer's
    static-shape knowledge reaches the transfer layer.
    """
    devices = sorted({node.device or "device0" for node in graph})
    subgraphs = {device: Graph(f"{graph.name}@{device}") for device in devices}
    result = PartitionedGraph(original=graph, subgraphs=subgraphs)

    placed: Dict[str, Node] = {}     # original node name -> new node
    recv_cache: Dict[Tuple[str, int, str], NodeOutput] = {}

    for node in graph.topological_order():
        device = node.device or "device0"
        subgraph = subgraphs[device]
        new_inputs: List[NodeOutput] = []
        for src in node.inputs:
            src_device = src.node.device or "device0"
            if src_device == device:
                new_inputs.append(placed[src.node.name].output(src.index))
                continue
            cache_key = (src.node.name, src.index, device)
            if cache_key not in recv_cache:
                recv_cache[cache_key] = _insert_transfer(
                    result, placed, src, src_device, device)
            new_inputs.append(recv_cache[cache_key])
        for ctrl in node.control_inputs:
            ctrl_device = ctrl.device or "device0"
            if ctrl_device != device:
                raise GraphError(
                    f"cross-device control edge {ctrl.name} -> {node.name} "
                    "is not supported; add a data dependency instead")
        new_node = subgraph.add_node(node.name, node.op_type, new_inputs,
                                     node.attrs, device=device)
        for ctrl in node.control_inputs:
            new_node.add_control_input(placed[ctrl.name])
        new_node.output_shapes = list(node.output_shapes)
        new_node.output_dtypes = list(node.output_dtypes)
        new_node.static_shape = node.static_shape
        placed[node.name] = new_node

    return result


def _insert_transfer(result: PartitionedGraph, placed: Dict[str, Node],
                     src: NodeOutput, src_device: str,
                     dst_device: str) -> NodeOutput:
    """Create the _Send/_Recv pair for one cut edge; returns recv output."""
    src_graph = result.subgraphs[src_device]
    dst_graph = result.subgraphs[dst_device]
    key = transfer_key(src.node.name, src.index, dst_device)

    producer = placed[src.node.name].output(src.index)
    send_name = src_graph.unique_name(f"send/{key}")
    send_attrs = {"key": key, "dst_device": dst_device}
    recv_attrs = {"key": key, "src_device": src_device}
    # Transfers inherit the producer's scheduling priority, so the wire
    # scheduler can favour sooner-needed tensors end to end.
    priority = src.node.attrs.get("priority")
    if priority is not None:
        send_attrs["priority"] = priority
        recv_attrs["priority"] = priority
    send = src_graph.add_node(send_name, "_Send", [producer],
                              attrs=send_attrs, device=src_device)
    send.output_shapes, send.output_dtypes = [], []
    send.static_shape = src.node.static_shape

    recv_name = dst_graph.unique_name(f"recv/{key}")
    shape = src.node.output_shapes[src.index]
    dtype = src.node.output_dtypes[src.index]
    recv_attrs.update(shape=shape, dtype=dtype)
    recv = dst_graph.add_node(recv_name, "_Recv", [], attrs=recv_attrs,
                              device=dst_device)
    recv.output_shapes = [shape]
    recv.output_dtypes = [dtype]
    recv.static_shape = src.node.static_shape and shape.is_fully_defined

    nbytes = None
    if shape.is_fully_defined:
        nbytes = shape.num_elements() * dtype.size
    result.transfers.append(TransferEdge(
        key=key, src_device=src_device, dst_device=dst_device,
        src_node=src.node.name, send_node=send_name, recv_node=recv_name,
        nbytes_static=nbytes if recv.static_shape else None,
        static_shape=recv.static_shape))
    return recv.output(0)
