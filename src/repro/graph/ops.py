"""Operator registry: shape inference, numpy compute, simulated cost.

Each operator type registers three aspects:

* ``infer``   — shape/dtype inference used by the analyzer's static
  pass (§3.4): given input shapes (possibly partial), produce output
  shapes.  Static shapes propagate; unknown dims stay unknown.
* ``compute`` — real numpy execution for dense tensors (used by the
  convergence applications and the examples).  Operators whose tensors
  are virtual (the big benchmark models) skip compute.
* ``cost``    — simulated execution time charged by the executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..simnet.costmodel import CostModel
from .dtypes import DType
from .node import GraphError, Node
from .shapes import Shape, as_shape, scalar


@dataclass
class OpDef:
    """Metadata and behaviour for one operator type."""

    name: str
    infer: Callable[[Node, List[Shape], List[DType]], None]
    compute: Optional[Callable[[Node, List[np.ndarray]], List[np.ndarray]]]
    cost: Callable[[Node, CostModel], float]
    stateful: bool = False


OPS: Dict[str, OpDef] = {}


def register(name: str, *, compute=None, cost=None, stateful=False):
    """Decorator over the shape-inference function for an op type."""
    def wrap(infer_fn):
        if name in OPS:
            raise GraphError(f"operator {name!r} already registered")
        OPS[name] = OpDef(name=name, infer=infer_fn, compute=compute,
                          cost=cost or _default_cost, stateful=stateful)
        return infer_fn
    return wrap


def get_op(name: str) -> OpDef:
    try:
        return OPS[name]
    except KeyError:
        raise GraphError(f"unknown operator type {name!r}")


def _set(node: Node, shapes: Sequence[Shape], dtypes: Sequence[DType]) -> None:
    node.output_shapes = [as_shape(s) for s in shapes]
    node.output_dtypes = list(dtypes)
    node.static_shape = all(s.is_fully_defined for s in node.output_shapes)


def _elements(shape: Shape) -> int:
    """Element count, treating unknown dims as 1 (for cost estimates)."""
    count = 1
    for dim in shape.dims:
        count *= dim if dim is not None else 1
    return count


def _default_cost(node: Node, cm: CostModel) -> float:
    total = sum(_elements(s) for s in node.output_shapes) or 1
    return cm.op_overhead + total / cm.gpu_elementwise


def _flops_cost(flops: float, cm: CostModel) -> float:
    return cm.op_overhead + flops / cm.gpu_flops


# --------------------------------------------------------------------------- sources

@register("Placeholder",
          compute=lambda node, inputs: [node.attrs["_feed"]])
def _infer_placeholder(node, in_shapes, in_dtypes):
    _set(node, [node.attrs["shape"]], [node.attrs["dtype"]])


@register("Const", compute=lambda node, inputs: [node.attrs["value"]])
def _infer_const(node, in_shapes, in_dtypes):
    value = node.attrs["value"]
    _set(node, [Shape(value.shape)], [DType.from_numpy(value.dtype)])


@register("Variable", stateful=True,
          compute=lambda node, inputs: [node.attrs["_storage"]])
def _infer_variable(node, in_shapes, in_dtypes):
    _set(node, [node.attrs["shape"]], [node.attrs["dtype"]])


# ------------------------------------------------------------------------- math

@register("MatMul",
          compute=lambda node, inputs: [inputs[0] @ inputs[1]],
          cost=lambda node, cm: _flops_cost(
              2.0 * _elements(node.output_shapes[0])
              * (node.inputs[0].shape[1] or 1), cm))
def _infer_matmul(node, in_shapes, in_dtypes):
    _set(node, [in_shapes[0].matmul(in_shapes[1])], [in_dtypes[0]])


def _infer_broadcast_binary(node, in_shapes, in_dtypes):
    _set(node, [in_shapes[0].broadcast(in_shapes[1])], [in_dtypes[0]])


register("Add", compute=lambda n, i: [i[0] + i[1]])(_infer_broadcast_binary)
OPS["Sub"] = OpDef("Sub", _infer_broadcast_binary,
                   lambda n, i: [i[0] - i[1]], _default_cost)
OPS["Mul"] = OpDef("Mul", _infer_broadcast_binary,
                   lambda n, i: [i[0] * i[1]], _default_cost)


def _infer_unary(node, in_shapes, in_dtypes):
    _set(node, [in_shapes[0]], [in_dtypes[0]])


OPS["Sigmoid"] = OpDef(
    "Sigmoid", _infer_unary,
    lambda n, i: [1.0 / (1.0 + np.exp(-i[0]))], _default_cost)
OPS["Tanh"] = OpDef("Tanh", _infer_unary,
                    lambda n, i: [np.tanh(i[0])], _default_cost)
OPS["Relu"] = OpDef("Relu", _infer_unary,
                    lambda n, i: [np.maximum(i[0], 0)], _default_cost)
OPS["Square"] = OpDef("Square", _infer_unary,
                      lambda n, i: [i[0] * i[0]], _default_cost)
OPS["Identity"] = OpDef("Identity", _infer_unary,
                        lambda n, i: [i[0]], _default_cost)
OPS["Softmax"] = OpDef(
    "Softmax", _infer_unary,
    lambda n, i: [_softmax(i[0])], _default_cost)


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=-1, keepdims=True)


def _infer_reduce(node, in_shapes, in_dtypes):
    axis = node.attrs.get("axis")
    shape = in_shapes[0]
    if axis is None:
        out = scalar()
    else:
        out = Shape([d for i, d in enumerate(shape.dims) if i != axis])
    _set(node, [out], [in_dtypes[0]])


OPS["ReduceMax"] = OpDef(
    "ReduceMax", _infer_reduce,
    lambda n, i: [np.max(i[0], axis=n.attrs.get("axis"))], _default_cost)
OPS["ReduceSum"] = OpDef(
    "ReduceSum", _infer_reduce,
    lambda n, i: [np.sum(i[0], axis=n.attrs.get("axis"))], _default_cost)
OPS["ReduceMean"] = OpDef(
    "ReduceMean", _infer_reduce,
    lambda n, i: [np.mean(i[0], axis=n.attrs.get("axis"))], _default_cost)


@register("Reshape", compute=lambda node, inputs: [
    inputs[0].reshape(node.attrs["shape"].as_tuple())])
def _infer_reshape(node, in_shapes, in_dtypes):
    _set(node, [node.attrs["shape"]], [in_dtypes[0]])


@register("Transpose",
          compute=lambda node, inputs: [np.ascontiguousarray(inputs[0].T)])
def _infer_transpose(node, in_shapes, in_dtypes):
    _set(node, [Shape(tuple(in_shapes[0].dims)[::-1])], [in_dtypes[0]])


# --------------------------------------------------------------------- training ops

@register("ApplyGradient", stateful=True,
          compute=lambda node, inputs: [inputs[0] - node.attrs["lr"] * inputs[1]],
          cost=lambda node, cm: cm.op_overhead
          + 3 * _elements(node.output_shapes[0]) / cm.gpu_elementwise)
def _infer_apply_gradient(node, in_shapes, in_dtypes):
    """inputs: (variable value, gradient) -> updated variable value."""
    _set(node, [in_shapes[0].merge(in_shapes[1])], [in_dtypes[0]])


@register("SoftmaxCrossEntropy",
          compute=lambda node, inputs: list(_softmax_xent(inputs[0], inputs[1])))
def _infer_softmax_xent(node, in_shapes, in_dtypes):
    """inputs: (logits [B,C], labels [B,C]) -> (loss scalar, dlogits [B,C])."""
    _set(node, [scalar(), in_shapes[0]], [in_dtypes[0], in_dtypes[0]])


def _softmax_xent(logits: np.ndarray, labels: np.ndarray):
    probs = _softmax(logits)
    batch = logits.shape[0]
    eps = 1e-12
    loss = -np.sum(labels * np.log(probs + eps)) / batch
    dlogits = (probs - labels) / batch
    return np.asarray(loss, dtype=logits.dtype), dlogits.astype(logits.dtype)


# --------------------------------------------------------------------- synthetic ops

@register("SyntheticCompute",
          cost=lambda node, cm: node.attrs["time"])
def _infer_synthetic(node, in_shapes, in_dtypes):
    """Charges a fixed simulated time; outputs per attrs['outputs']:
    a list of (dtype, Shape) for tensors it 'produces' (virtual)."""
    outputs = node.attrs.get("outputs", [(DType.float32, scalar())])
    _set(node, [shape for _, shape in outputs],
         [dtype for dtype, _ in outputs])


@register("NoOp", cost=lambda node, cm: cm.op_overhead)
def _infer_noop(node, in_shapes, in_dtypes):
    _set(node, [], [])


# ----------------------------------------------------------------- transfer markers

def _infer_transfer(node, in_shapes, in_dtypes):
    _set(node, [in_shapes[0]], [in_dtypes[0]])


# _Send consumes a tensor; produces nothing locally.
@register("_Send", cost=lambda node, cm: 0.0)
def _infer_send(node, in_shapes, in_dtypes):
    _set(node, [], [])


# _Recv produces the transferred tensor; shape from attrs.
@register("_Recv", cost=lambda node, cm: 0.0)
def _infer_recv(node, in_shapes, in_dtypes):
    _set(node, [node.attrs["shape"]], [node.attrs["dtype"]])


def infer_shapes(graph) -> None:
    """Run static shape inference over a whole graph (§3.4 step one).

    Walks in topological order, calling each op's ``infer`` with its
    input shapes; sets ``node.static_shape`` so the analyzer can split
    tensors into statically-placed vs dynamically-allocated.
    """
    for node in graph.topological_order():
        in_shapes = [src.shape for src in node.inputs]
        in_dtypes = [src.dtype for src in node.inputs]
        get_op(node.op_type).infer(node, in_shapes, in_dtypes)
