"""Variable checkpointing: save/restore session state to ``.npz``.

A training framework needs durable model state; this module snapshots
every dense variable of a session (wherever its partition lives) into
a single numpy archive and restores it into the same or a differently
partitioned session — e.g. train data-parallel on 8 simulated servers,
then restore into a single-device session for inspection.

Virtual variables (the size-only tensors of the large benchmark
models) carry no values and are recorded as shapes only; restoring
them validates shape/dtype without moving bytes.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, Optional

import numpy as np

from .executor import ExecutorError
from .session import Session
from .tensor import Tensor


_META_PREFIX = "__virtual__/"


class CheckpointError(RuntimeError):
    """Save/restore mismatches (unknown variable, shape conflict)."""


def variable_state(session: Session) -> Dict[str, Tensor]:
    """All variables across the session's executors, by name."""
    state: Dict[str, Tensor] = {}
    for executor in session.executors.values():
        for name, tensor in executor.variables.items():
            if name in state:
                raise CheckpointError(f"variable {name!r} appears on "
                                      "multiple partitions")
            state[name] = tensor
    return state


def save(session: Session, path: str,
         names: Optional[Iterable[str]] = None) -> int:
    """Write variables to ``path`` (.npz); returns the variable count."""
    state = variable_state(session)
    selected = dict(state) if names is None else {
        name: _lookup(state, name) for name in names}
    arrays: Dict[str, np.ndarray] = {}
    for name, tensor in selected.items():
        if tensor.is_dense:
            arrays[name] = tensor.array.copy()
        else:
            # Virtual variable: record dtype code + dims as metadata.
            arrays[_META_PREFIX + name] = np.array(
                [tensor.dtype.code, *tensor.shape.as_tuple()],
                dtype=np.int64)
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)
    return len(selected)


def restore(session: Session, path: str, strict: bool = True) -> int:
    """Load variables from ``path`` into the session's partitions.

    ``strict`` requires every archived variable to exist with matching
    shape/dtype; otherwise unknown names are skipped.  Returns the
    number of variables restored (dense) or validated (virtual).
    """
    state = variable_state(session)
    with np.load(path) as archive:
        count = 0
        for key in archive.files:
            virtual = key.startswith(_META_PREFIX)
            name = key[len(_META_PREFIX):] if virtual else key
            tensor = state.get(name)
            if tensor is None:
                if strict:
                    raise CheckpointError(
                        f"checkpoint has {name!r} but the session does not")
                continue
            if virtual:
                meta = archive[key]
                dims = tuple(int(d) for d in meta[1:])
                if tensor.shape.as_tuple() != dims:
                    raise CheckpointError(
                        f"{name!r}: checkpoint shape {dims} != "
                        f"session shape {tensor.shape}")
                count += 1
                continue
            values = archive[key]
            if values.shape != tensor.shape.as_tuple():
                raise CheckpointError(
                    f"{name!r}: checkpoint shape {values.shape} != "
                    f"session shape {tensor.shape}")
            if not tensor.is_dense:
                raise CheckpointError(
                    f"{name!r}: cannot restore values into a virtual "
                    "(size-only) variable")
            tensor.copy_from(values.astype(tensor.dtype.np))
            count += 1
    return count


def _lookup(state: Dict[str, Tensor], name: str) -> Tensor:
    try:
        return state[name]
    except KeyError:
        raise CheckpointError(f"unknown variable {name!r}")
