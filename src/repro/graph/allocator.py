"""Tensor allocators: the normal heap path and the RDMA arena path.

The paper's analyzer (§3.4) moves to-be-transferred tensors from the
normal allocator into an allocator backed by one big RDMA-registered
region ("preallocate a large enough memory buffer to register once"),
and instruments allocation so the allocation *site* (graph node +
per-execution allocation index) of every tensor buffer is known.

:class:`ArenaAllocator` implements a real first-fit free list with
coalescing over one backing :class:`~repro.simnet.memory.Buffer`, so
allocator invariants are testable.  :class:`HostAllocator` allocates
straight from the host address space.  Both report every allocation to
registered observers — the hook the dynamic tracer (§3.4) uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..simnet.memory import Buffer, MemoryError_
from ..simnet.topology import Host
from .dtypes import DType
from .shapes import Shape
from .tensor import Tensor, tensor_nbytes


#: (tensor, node_name, alloc_index) -> None
AllocationObserver = Callable[[Tensor, Optional[str], int], None]

ALIGNMENT = 64


def _align(size: int) -> int:
    return (size + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


class AllocatorError(RuntimeError):
    """Out of arena memory, double free, foreign pointer."""


class BaseAllocator:
    """Shared observer machinery for allocators."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._observers: List[AllocationObserver] = []
        self.allocation_count = 0

    def add_observer(self, observer: AllocationObserver) -> None:
        self._observers.append(observer)

    def remove_observer(self, observer: AllocationObserver) -> None:
        self._observers.remove(observer)

    def _notify(self, tensor: Tensor, node_name: Optional[str],
                alloc_index: int) -> None:
        self.allocation_count += 1
        for observer in self._observers:
            observer(tensor, node_name, alloc_index)

    def allocate_tensor(self, dtype: DType, shape: Shape,
                        node_name: Optional[str] = None,
                        alloc_index: int = 0) -> Tensor:
        raise NotImplementedError

    def free_tensor(self, tensor: Tensor) -> None:
        raise NotImplementedError


class HostAllocator(BaseAllocator):
    """The "normal" allocator: fresh buffers from the host heap."""

    def __init__(self, host: Host, name: str = "") -> None:
        super().__init__(name or f"heap:{host.name}")
        self.host = host
        self.bytes_live = 0

    def allocate_tensor(self, dtype: DType, shape: Shape,
                        node_name: Optional[str] = None,
                        alloc_index: int = 0,
                        dense: Optional[bool] = None) -> Tensor:
        nbytes = tensor_nbytes(dtype, shape)
        buf = self.host.allocate(max(nbytes, 1), label=node_name or "tensor",
                                 dense=dense)
        tensor = Tensor(dtype, shape, buf)
        self.bytes_live += nbytes
        self._notify(tensor, node_name, alloc_index)
        return tensor

    def free_tensor(self, tensor: Tensor) -> None:
        if tensor.buffer is None:
            raise AllocatorError("freeing an unmaterialized tensor")
        self.host.address_space.free(tensor.buffer)
        self.bytes_live -= tensor.nbytes


@dataclass
class _FreeBlock:
    offset: int
    size: int


class ArenaAllocator(BaseAllocator):
    """First-fit allocator with coalescing over one backing buffer.

    Used for the RDMA-registered arena: the buffer is registered with
    the NIC exactly once, and every tensor carved from it is
    RDMA-accessible with no further kernel interaction.
    """

    def __init__(self, backing: Buffer, name: str = "arena") -> None:
        super().__init__(name)
        self.backing = backing
        self._free: List[_FreeBlock] = [_FreeBlock(0, backing.size)]
        self._live: Dict[int, int] = {}  # offset -> aligned size
        self.bytes_live = 0
        self.peak_bytes = 0

    @property
    def capacity(self) -> int:
        return self.backing.size

    @property
    def free_bytes(self) -> int:
        return sum(block.size for block in self._free)

    # -- raw block interface -----------------------------------------------------------

    def allocate_block(self, nbytes: int) -> int:
        """Allocate ``nbytes`` (aligned); returns the arena offset."""
        if nbytes <= 0:
            raise AllocatorError(f"bad allocation size {nbytes}")
        needed = _align(nbytes)
        for i, block in enumerate(self._free):
            if block.size >= needed:
                offset = block.offset
                if block.size == needed:
                    self._free.pop(i)
                else:
                    block.offset += needed
                    block.size -= needed
                self._live[offset] = needed
                self.bytes_live += needed
                self.peak_bytes = max(self.peak_bytes, self.bytes_live)
                return offset
        raise AllocatorError(
            f"arena {self.name!r} exhausted: need {needed}, "
            f"free {self.free_bytes} (fragmented into {len(self._free)})")

    def free_block(self, offset: int) -> None:
        size = self._live.pop(offset, None)
        if size is None:
            raise AllocatorError(f"free of unallocated offset {offset}")
        self.bytes_live -= size
        # Insert sorted and coalesce with neighbours.
        block = _FreeBlock(offset, size)
        index = 0
        while index < len(self._free) and self._free[index].offset < offset:
            index += 1
        self._free.insert(index, block)
        self._coalesce(index)

    def _coalesce(self, index: int) -> None:
        # Merge with next.
        if index + 1 < len(self._free):
            cur, nxt = self._free[index], self._free[index + 1]
            if cur.offset + cur.size == nxt.offset:
                cur.size += nxt.size
                self._free.pop(index + 1)
        # Merge with previous.
        if index > 0:
            prev, cur = self._free[index - 1], self._free[index]
            if prev.offset + prev.size == cur.offset:
                prev.size += cur.size
                self._free.pop(index)

    # -- tensor interface -----------------------------------------------------------------

    def allocate_tensor(self, dtype: DType, shape: Shape,
                        node_name: Optional[str] = None,
                        alloc_index: int = 0) -> Tensor:
        nbytes = tensor_nbytes(dtype, shape)
        offset = self.allocate_block(max(nbytes, 1))
        tensor = Tensor(dtype, shape, self.backing, offset=offset)
        self._notify(tensor, node_name, alloc_index)
        return tensor

    def free_tensor(self, tensor: Tensor) -> None:
        if tensor.buffer is not self.backing:
            raise AllocatorError("tensor does not belong to this arena")
        self.free_block(tensor.offset)

    def check_invariants(self) -> None:
        """Assert no overlap and full accounting (used by tests)."""
        spans = sorted([(b.offset, b.size, "free") for b in self._free]
                       + [(o, s, "live") for o, s in self._live.items()])
        cursor = 0
        for offset, size, _kind in spans:
            if offset < cursor:
                raise AllocatorError("overlapping blocks detected")
            cursor = offset + size
        if cursor > self.capacity:
            raise AllocatorError("blocks exceed arena capacity")
        accounted = sum(s for _, s, _ in spans)
        if accounted != self.capacity:
            raise AllocatorError(
                f"accounting hole: {accounted} != {self.capacity}")
