"""A TensorFlow-like dataflow-graph runtime (paper §2.1, §4).

Graphs are built with :class:`GraphBuilder`, finalized (validated +
shape-inferred), partitioned across devices, and executed by
per-device :class:`Executor` instances under a :class:`Session`.
Cross-device tensor transfer is delegated to a pluggable
:class:`CommRuntime` (gRPC baselines or the paper's RDMA mechanisms).
"""

from . import nn_ops  # noqa: F401 - registers Conv2D/MaxPool2D/... operators
from .allocator import (AllocatorError, ArenaAllocator, BaseAllocator,
                        HostAllocator)
from .autodiff import GRADIENTS, gradients, minimize, register_gradient
from .builder import GraphBuilder
from .checkpoint import CheckpointError, restore, save, variable_state
from .dtypes import DType
from .executor import Executor, ExecutorError
from .node import Graph, GraphError, Node, NodeOutput
from .ops import OPS, OpDef, get_op, infer_shapes
from .partition import PartitionedGraph, TransferEdge, partition
from .session import RunStats, Session
from .shapes import Shape, ShapeError, as_shape, scalar, unknown
from .tensor import META_FLAG_SIZE, Tensor, TensorMeta, tensor_nbytes
from .transfer_api import CommRuntime, NullComm, Outcome

__all__ = [
    "AllocatorError", "ArenaAllocator", "BaseAllocator", "CommRuntime",
    "DType", "Executor", "ExecutorError", "GRADIENTS", "Graph",
    "GraphBuilder", "CheckpointError", "gradients", "minimize",
    "register_gradient", "restore", "save", "variable_state",
    "GraphError", "HostAllocator", "META_FLAG_SIZE", "Node", "NodeOutput",
    "NullComm", "OPS", "OpDef", "Outcome", "PartitionedGraph", "RunStats",
    "Session", "Shape", "ShapeError", "Tensor", "TensorMeta", "TransferEdge",
    "as_shape", "get_op", "infer_shapes", "partition", "scalar",
    "tensor_nbytes", "unknown",
]
