"""Session: binds a graph to a simulated cluster and runs iterations.

Mirrors TensorFlow's session (§4): the graph is finalized, partitioned
by device, each partition gets an executor on its host, the transfer
mechanism prepares (this is where the RDMA graph analyzer runs), and
then mini-batch iterations execute until done.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..observability.tracer import executor_track
from ..simnet.simulator import SimulationError
from ..simnet.topology import Cluster, Host
from .executor import Executor, ExecutorError
from .node import Graph
from .partition import PartitionedGraph, partition
from .tensor import Tensor
from .transfer_api import CommRuntime, NullComm


@dataclass
class RunStats:
    """Timing results of a session run."""

    iterations: int
    iteration_times: List[float] = field(default_factory=list)
    #: absolute simulated clock at each iteration's end — lets metrics
    #: consumers window on "after warm-up" without re-deriving offsets
    iteration_end_times: List[float] = field(default_factory=list)
    total_time: float = 0.0
    #: snapshot of the tracer's metrics registry (counters/histograms),
    #: populated when the cluster ran with tracing enabled
    observability: Optional[Dict] = None
    #: injected faults + recovery counters, populated only when the
    #: cluster ran with an armed fault plane
    faults: Optional[Dict] = None

    @property
    def mean_iteration_time(self) -> float:
        if not self.iteration_times:
            return 0.0
        return sum(self.iteration_times) / len(self.iteration_times)

    @property
    def steady_state_time(self) -> float:
        """Mean iteration time excluding the first (warm-up/tracing)."""
        tail = self.iteration_times[1:] or self.iteration_times
        if not tail:
            return 0.0
        return sum(tail) / len(tail)

    @property
    def throughput(self) -> float:
        """Iterations (mini-batches) per second, steady state."""
        steady = self.steady_state_time
        return 1.0 / steady if steady > 0 else float("inf")


class Session:
    """Owns executors for every partition of one (replicated) graph."""

    def __init__(self, cluster: Cluster, graph: Graph,
                 device_hosts: Dict[str, Host],
                 comm: Optional[CommRuntime] = None,
                 priority_sched: bool = False) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.graph = graph
        self.comm = comm or NullComm()
        self.partitioned: PartitionedGraph = partition(graph)
        missing = [d for d in self.partitioned.devices if d not in device_hosts]
        if missing:
            raise ExecutorError(f"no host mapping for devices {missing}")
        self.executors: Dict[str, Executor] = {
            device: Executor(device_hosts[device],
                             self.partitioned.subgraphs[device],
                             device, self.comm,
                             priority_sched=priority_sched)
            for device in self.partitioned.devices
        }
        # Mechanism setup (RDMA analyzer, RPC servers/channels, ...).
        self.comm.prepare(self)
        for executor in self.executors.values():
            executor.initialize_variables()
        #: iterations issued through :meth:`iteration_process` (detached
        #: mode); kept separate from :meth:`run`'s loop counter
        self._detached_iterations = 0

    # -- running -------------------------------------------------------------------------

    def run(self, iterations: int = 1,
            feeds: Optional[Dict[str, np.ndarray]] = None,
            feeds_fn: Optional[Callable[[int], Dict[str, np.ndarray]]] = None,
            time_limit: float = 3600.0) -> RunStats:
        """Execute ``iterations`` mini-batches; returns timing stats.

        ``feeds`` are static placeholder feeds; ``feeds_fn(iteration)``
        produces per-iteration feeds (e.g. fresh mini-batches).
        """
        stats = RunStats(iterations=iterations)
        start_total = self.sim.now
        for iteration in range(iterations):
            self.comm.on_iteration_start(self, iteration)
            iteration_feeds = dict(feeds or {})
            if feeds_fn is not None:
                iteration_feeds.update(feeds_fn(iteration))
            start = self.sim.now
            procs = [
                self.sim.spawn(executor.run_iteration(iteration_feeds),
                               name=f"exec-{device}-it{iteration}")
                for device, executor in self.executors.items()
            ]
            barrier = self.sim.all_of(procs)
            while not barrier.triggered:
                if not self.sim._queue:
                    raise SimulationError(
                        f"deadlock in iteration {iteration}")
                if self.sim._queue[0][0] > start_total + time_limit:
                    raise SimulationError(
                        f"time limit exceeded in iteration {iteration}")
                self.sim.step()
            _ = barrier.value  # surface executor exceptions
            stats.iteration_times.append(self.sim.now - start)
            stats.iteration_end_times.append(self.sim.now)
            if self.cluster.tracer is not None:
                self.cluster.tracer.mark_iteration(iteration, start,
                                                   self.sim.now)
                self._sample_telemetry(iteration, start, self.sim.now)
        stats.total_time = self.sim.now - start_total
        if self.cluster.tracer is not None:
            stats.observability = self.cluster.tracer.metrics.to_dict()
        plane = self.cluster.fault_plane
        if plane is not None and plane.armed:
            recovery = getattr(self.comm, "recovery_snapshot", lambda: None)
            stats.faults = {"injected": plane.snapshot(),
                            "recovery": recovery()}
        return stats

    def _sample_telemetry(self, iteration: int, start: float,
                          end: float) -> None:
        """Feed the per-iteration telemetry digest (O(hosts + links)).

        Called once per iteration when tracing is on; each sample is a
        single number per host / trunk link, so the streaming series
        stay fixed-memory however long the run.  Pure bookkeeping —
        never yields, so traced clocks stay bit-identical.
        """
        tracer = self.cluster.tracer
        telemetry = tracer.telemetry
        if telemetry is not None:
            telemetry.observe("iteration_time", end, end - start)
            for device, executor in self.executors.items():
                track = executor_track(device)
                bucket = tracer.breakdowns.get(
                    (executor.host.name, track, iteration))
                if bucket:
                    telemetry.observe_host("step_time", executor.host.name,
                                           end, sum(bucket.values()))
        fabric = self.cluster.fabric
        if fabric is not None and end > 0:
            for link in fabric.trunk_links():
                tracer.metrics.gauge(
                    f"link_utilization:{link.name}").sample(
                        end, link.utilization(end))

    def iteration_process(self, feeds: Optional[Dict[str, np.ndarray]] = None):
        """Spawn one iteration as an event without driving the simulator.

        :meth:`run` owns the event loop (it steps the simulator until
        its barrier fires), which makes a session the *only* activity
        in the cluster.  The serving plane instead runs many sessions
        plus routers, pollers and load generators on one simulator, so
        it needs the forward pass as a composable event: this spawns
        every executor's ``run_iteration`` and returns the ``AllOf``
        barrier, leaving the caller to ``yield`` it inside its own
        process.  The session is reused across calls — variables stay
        resident, allocations persist — which is exactly the
        long-lived-session reuse a model server relies on.
        """
        iteration = self._detached_iterations
        self._detached_iterations += 1
        self.comm.on_iteration_start(self, iteration)
        procs = [
            self.sim.spawn(executor.run_iteration(dict(feeds or {})),
                           name=f"exec-{device}-serve{iteration}")
            for device, executor in self.executors.items()
        ]
        return self.sim.all_of(procs)

    # -- inspection ------------------------------------------------------------------------

    def value(self, node_name: str, index: int = 0) -> Tensor:
        """Fetch an output tensor produced in the last iteration."""
        for executor in self.executors.values():
            if (node_name, index) in executor.values:
                return executor.values[(node_name, index)]
        raise ExecutorError(f"no value recorded for {node_name}:{index}")

    def numpy(self, node_name: str, index: int = 0) -> np.ndarray:
        """Fetch an output as a numpy array (dense tensors only)."""
        return self.value(node_name, index).array.copy()

    def variable(self, name: str) -> Tensor:
        for executor in self.executors.values():
            if name in executor.variables:
                return executor.variables[name]
        raise ExecutorError(f"unknown variable {name!r}")

    def executor_for(self, device: str) -> Executor:
        return self.executors[device]
