"""Dataflow-graph IR: nodes, edges, and the graph container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .dtypes import DType
from .shapes import Shape


class GraphError(ValueError):
    """Structural problems: cycles, duplicate names, missing inputs."""


@dataclass(frozen=True)
class NodeOutput:
    """A reference to one output slot of a node (an edge source)."""

    node: "Node"
    index: int = 0

    @property
    def shape(self) -> Shape:
        return self.node.output_shapes[self.index]

    @property
    def dtype(self) -> DType:
        return self.node.output_dtypes[self.index]

    def __repr__(self) -> str:
        return f"{self.node.name}:{self.index}"


class Node:
    """One operator instance in a graph."""

    def __init__(self, graph: "Graph", name: str, op_type: str,
                 inputs: Sequence[NodeOutput], attrs: Dict[str, Any],
                 device: Optional[str] = None) -> None:
        self.graph = graph
        self.name = name
        self.op_type = op_type
        self.inputs: List[NodeOutput] = list(inputs)
        self.control_inputs: List["Node"] = []
        self.attrs = dict(attrs)
        self.device = device
        # Filled by shape inference:
        self.output_shapes: List[Shape] = []
        self.output_dtypes: List[DType] = []
        #: whether every output shape was statically inferred (analyzer)
        self.static_shape: bool = False

    def output(self, index: int = 0) -> NodeOutput:
        return NodeOutput(self, index)

    def add_control_input(self, node: "Node") -> None:
        """Add an execution-order-only dependency (no data flows)."""
        if node is self:
            raise GraphError(f"{self.name} cannot depend on itself")
        self.control_inputs.append(node)

    @property
    def num_outputs(self) -> int:
        return len(self.output_shapes) or int(self.attrs.get("num_outputs", 1))

    def __repr__(self) -> str:
        return f"Node({self.name!r}, {self.op_type})"


class Graph:
    """A named collection of nodes with helper queries."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}

    # -- construction -------------------------------------------------------------

    def add_node(self, name: str, op_type: str,
                 inputs: Sequence[NodeOutput] = (),
                 attrs: Optional[Dict[str, Any]] = None,
                 device: Optional[str] = None) -> Node:
        if name in self._nodes:
            raise GraphError(f"duplicate node name {name!r}")
        for src in inputs:
            if src.node.graph is not self:
                raise GraphError(
                    f"input {src!r} belongs to a different graph")
        node = Node(self, name, op_type, inputs, attrs or {}, device)
        self._nodes[name] = node
        return node

    def unique_name(self, base: str) -> str:
        if base not in self._nodes:
            return base
        index = 1
        while f"{base}_{index}" in self._nodes:
            index += 1
        return f"{base}_{index}"

    # -- queries ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"no node named {name!r} in graph {self.name!r}")

    def nodes_of_type(self, op_type: str) -> List[Node]:
        return [n for n in self if n.op_type == op_type]

    def consumers(self, node: Node) -> List[Node]:
        """Nodes consuming any output of ``node`` (data edges only)."""
        return [n for n in self
                if any(src.node is node for src in n.inputs)]

    # -- ordering -----------------------------------------------------------------

    def dependency_map(self) -> Dict[str, set]:
        """node name -> set of dependency node names (data + control)."""
        deps: Dict[str, set] = {}
        for node in self:
            names = {src.node.name for src in node.inputs}
            names.update(c.name for c in node.control_inputs)
            deps[node.name] = names
        return deps

    def topological_order(self) -> List[Node]:
        """Kahn's algorithm over data + control edges; raises on cycle."""
        deps = self.dependency_map()
        dependents: Dict[str, List[str]] = {name: [] for name in self._nodes}
        for name, dep_names in deps.items():
            for dep in dep_names:
                dependents[dep].append(name)
        in_degree = {name: len(dep_names) for name, dep_names in deps.items()}
        from collections import deque
        ready = deque(name for name in self._nodes if in_degree[name] == 0)
        order: List[Node] = []
        while ready:
            name = ready.popleft()
            order.append(self._nodes[name])
            for dependent in dependents[name]:
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self._nodes):
            stuck = sorted(set(self._nodes) - {n.name for n in order})
            raise GraphError(f"cycle detected involving {stuck[:5]}")
        return order

    def validate(self) -> None:
        """Check structural sanity (acyclicity, input slot validity)."""
        self.topological_order()
        for node in self:
            for src in node.inputs:
                if src.node.name not in self._nodes:
                    raise GraphError(
                        f"{node.name} reads from foreign node {src.node.name}")
