"""Tensors: metadata plus (optionally materialized) storage.

A tensor is the unit of data flowing along graph edges and of
cross-server transfer.  Its storage is a :class:`~repro.simnet.memory.Buffer`
in some host's simulated address space:

* *dense* buffers expose the bytes as a zero-copy numpy view
  (:attr:`Tensor.array`), so computation writes directly into the very
  memory the NIC transfers — this is what makes the zero-copy claims
  testable end to end;
* *virtual* buffers carry only a size, used by the large benchmark
  models where content is irrelevant but timing is not.

:class:`TensorMeta` is the fixed-size metadata block of §3.3 (number
of dimensions, per-dimension sizes, element type, remote data address)
with a real wire encoding, used by the dynamic-allocation transfer
protocol.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..simnet.memory import Buffer, DenseBacking
from .dtypes import DType
from .shapes import Shape, as_shape


class Tensor:
    """A typed, shaped view over a simulated memory buffer."""

    __slots__ = ("dtype", "shape", "buffer", "offset")

    def __init__(self, dtype: DType, shape: Shape, buffer: Optional[Buffer],
                 offset: int = 0) -> None:
        self.dtype = dtype
        self.shape = as_shape(shape)
        self.buffer = buffer
        self.offset = offset
        if buffer is not None:
            if not self.shape.is_fully_defined:
                raise ValueError("materialized tensor needs a concrete shape")
            if offset + self.nbytes > buffer.size:
                raise ValueError(
                    f"tensor of {self.nbytes} bytes at offset {offset} "
                    f"does not fit buffer of {buffer.size}")

    # -- size --------------------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        return self.shape.num_elements() * self.dtype.size

    @property
    def addr(self) -> int:
        if self.buffer is None:
            raise ValueError("tensor has no storage")
        return self.buffer.addr + self.offset

    @property
    def is_materialized(self) -> bool:
        return self.buffer is not None

    @property
    def is_dense(self) -> bool:
        return (self.buffer is not None
                and isinstance(self.buffer.backing, DenseBacking))

    # -- value access -------------------------------------------------------------------

    @property
    def array(self) -> np.ndarray:
        """Zero-copy numpy view of the underlying bytes (dense only)."""
        if not self.is_dense:
            raise ValueError("array view requires dense storage")
        backing: DenseBacking = self.buffer.backing  # type: ignore[assignment]
        raw = backing.view(self.offset, self.nbytes)
        return raw.view(self.dtype.np).reshape(self.shape.as_tuple())

    def copy_from(self, values: np.ndarray) -> None:
        """Write numpy values into the tensor's storage."""
        values = np.asarray(values, dtype=self.dtype.np)
        if values.shape != self.shape.as_tuple():
            raise ValueError(f"shape mismatch: {values.shape} vs {self.shape}")
        self.array[...] = values

    def __repr__(self) -> str:
        where = "unmaterialized"
        if self.buffer is not None:
            kind = "dense" if self.is_dense else "virtual"
            where = f"{kind}@{self.buffer.host_name}:{self.addr:#x}"
        return f"Tensor({self.dtype.type_name}, {self.shape}, {where})"


def tensor_nbytes(dtype: DType, shape: Shape) -> int:
    """Size in bytes of a tensor with the given dtype and shape."""
    return shape.num_elements() * dtype.size


#: Metadata layout: dtype code (u8), ndims (u8), remote addr (u64),
#: remote rkey (u32), then ndims u32 dims, then a 1-byte flag slot.
_META_FIXED = struct.Struct("<BBQI")
META_FLAG_SIZE = 1


@dataclass(frozen=True)
class TensorMeta:
    """Fixed-size tensor metadata for the dynamic transfer protocol.

    Because a tensor's *rank* never changes across mini-batches even
    when its dimensions do (paper §3.3), the encoded size is constant
    per transferred tensor, so the receiver can preallocate the slot.
    """

    dtype: DType
    dims: Tuple[int, ...]
    remote_addr: int
    remote_rkey: int

    @property
    def shape(self) -> Shape:
        return Shape(self.dims)

    @property
    def data_nbytes(self) -> int:
        count = 1
        for dim in self.dims:
            count *= dim
        return count * self.dtype.size

    @staticmethod
    def encoded_size(ndims: int) -> int:
        """Wire size for a given rank, excluding the flag byte."""
        return _META_FIXED.size + 4 * ndims

    @staticmethod
    def slot_size(ndims: int) -> int:
        """Receive-slot size: encoding plus the tail flag byte."""
        return TensorMeta.encoded_size(ndims) + META_FLAG_SIZE

    def encode(self) -> bytes:
        head = _META_FIXED.pack(self.dtype.code, len(self.dims),
                                self.remote_addr, self.remote_rkey)
        return head + b"".join(struct.pack("<I", d) for d in self.dims)

    @classmethod
    def decode(cls, raw: bytes) -> "TensorMeta":
        if len(raw) < _META_FIXED.size:
            raise ValueError("metadata shorter than fixed header")
        code, ndims, addr, rkey = _META_FIXED.unpack(raw[:_META_FIXED.size])
        need = cls.encoded_size(ndims)
        if len(raw) < need:
            raise ValueError("metadata truncated")
        dims = struct.unpack(
            f"<{ndims}I", raw[_META_FIXED.size:need]) if ndims else ()
        return cls(dtype=DType.from_code(code), dims=tuple(dims),
                   remote_addr=addr, remote_rkey=rkey)
