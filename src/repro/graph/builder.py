"""Fluent graph-construction API (the user-facing layer, like tf.*)."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from .dtypes import DType
from .node import Graph, Node, NodeOutput
from .ops import infer_shapes
from .shapes import Shape, ShapeLike, as_shape


class GraphBuilder:
    """Builds a dataflow graph with auto-named nodes.

    The optional ``device`` argument on every method tags nodes for
    partitioning (e.g. ``"worker0"`` / ``"ps0"``); untagged nodes
    inherit the builder's ``default_device``.
    """

    def __init__(self, name: str = "graph", default_device: Optional[str] = None) -> None:
        self.graph = Graph(name)
        self.default_device = default_device

    # -- internals ------------------------------------------------------------------

    def _add(self, op_type: str, inputs: Sequence[NodeOutput] = (),
             attrs: Optional[dict] = None, name: Optional[str] = None,
             device: Optional[str] = None) -> NodeOutput:
        node_name = self.graph.unique_name(name or op_type.lower())
        node = self.graph.add_node(node_name, op_type, inputs, attrs or {},
                                   device=device or self.default_device)
        return node.output(0)

    def add_op(self, op_type: str, inputs: Sequence[NodeOutput] = (),
               attrs: Optional[dict] = None, name: Optional[str] = None,
               device: Optional[str] = None) -> NodeOutput:
        """Append a node of any registered operator type.

        The public escape hatch for extension subsystems (e.g. the
        collectives' fusion/chunk operators) that define their own ops
        via :func:`repro.graph.ops.register` without a dedicated
        builder method.  Returns output 0; reach further outputs
        through ``result.node.output(i)``.
        """
        return self._add(op_type, list(inputs), attrs=attrs, name=name,
                         device=device)

    # -- sources ---------------------------------------------------------------------

    def placeholder(self, shape: ShapeLike, dtype: DType = DType.float32,
                    name: Optional[str] = None,
                    device: Optional[str] = None) -> NodeOutput:
        return self._add("Placeholder", attrs={"shape": as_shape(shape),
                                               "dtype": dtype},
                         name=name or "input", device=device)

    def constant(self, value: Any, name: Optional[str] = None,
                 device: Optional[str] = None) -> NodeOutput:
        value = np.asarray(value, dtype=np.float32 if np.asarray(value).dtype
                           == np.float64 else None)
        return self._add("Const", attrs={"value": np.asarray(value)},
                         name=name or "const", device=device)

    def variable(self, shape: ShapeLike, dtype: DType = DType.float32,
                 name: Optional[str] = None, device: Optional[str] = None,
                 initializer: Optional[np.ndarray] = None) -> NodeOutput:
        attrs = {"shape": as_shape(shape), "dtype": dtype}
        if initializer is not None:
            attrs["initializer"] = np.asarray(initializer, dtype=dtype.np)
        return self._add("Variable", attrs=attrs, name=name or "variable",
                         device=device)

    # -- math -------------------------------------------------------------------------

    def matmul(self, a: NodeOutput, b: NodeOutput, name=None, device=None) -> NodeOutput:
        return self._add("MatMul", [a, b], name=name, device=device)

    def add(self, a: NodeOutput, b: NodeOutput, name=None, device=None) -> NodeOutput:
        return self._add("Add", [a, b], name=name, device=device)

    def sub(self, a: NodeOutput, b: NodeOutput, name=None, device=None) -> NodeOutput:
        return self._add("Sub", [a, b], name=name, device=device)

    def mul(self, a: NodeOutput, b: NodeOutput, name=None, device=None) -> NodeOutput:
        return self._add("Mul", [a, b], name=name, device=device)

    def sigmoid(self, x: NodeOutput, name=None, device=None) -> NodeOutput:
        return self._add("Sigmoid", [x], name=name, device=device)

    def tanh(self, x: NodeOutput, name=None, device=None) -> NodeOutput:
        return self._add("Tanh", [x], name=name, device=device)

    def relu(self, x: NodeOutput, name=None, device=None) -> NodeOutput:
        return self._add("Relu", [x], name=name, device=device)

    def square(self, x: NodeOutput, name=None, device=None) -> NodeOutput:
        return self._add("Square", [x], name=name, device=device)

    def identity(self, x: NodeOutput, name=None, device=None) -> NodeOutput:
        return self._add("Identity", [x], name=name, device=device)

    def softmax(self, x: NodeOutput, name=None, device=None) -> NodeOutput:
        return self._add("Softmax", [x], name=name, device=device)

    def reduce_max(self, x: NodeOutput, axis=None, name=None, device=None) -> NodeOutput:
        return self._add("ReduceMax", [x], attrs={"axis": axis}, name=name,
                         device=device)

    def reduce_sum(self, x: NodeOutput, axis=None, name=None, device=None) -> NodeOutput:
        return self._add("ReduceSum", [x], attrs={"axis": axis}, name=name,
                         device=device)

    def reduce_mean(self, x: NodeOutput, axis=None, name=None, device=None) -> NodeOutput:
        return self._add("ReduceMean", [x], attrs={"axis": axis}, name=name,
                         device=device)

    def reshape(self, x: NodeOutput, shape: ShapeLike, name=None, device=None) -> NodeOutput:
        return self._add("Reshape", [x], attrs={"shape": as_shape(shape)},
                         name=name, device=device)

    def transpose(self, x: NodeOutput, name=None, device=None) -> NodeOutput:
        return self._add("Transpose", [x], name=name, device=device)

    # -- neural-network layers (see nn_ops) ---------------------------------------

    def conv2d(self, x: NodeOutput, kernel: NodeOutput, stride: int = 1,
               padding: str = "same", name=None, device=None) -> NodeOutput:
        return self._add("Conv2D", [x, kernel],
                         attrs={"stride": stride, "padding": padding},
                         name=name, device=device)

    def max_pool(self, x: NodeOutput, window: int = 2,
                 stride: Optional[int] = None, name=None,
                 device=None) -> NodeOutput:
        return self._add("MaxPool2D", [x],
                         attrs={"window": window,
                                "stride": stride or window},
                         name=name, device=device)

    def avg_pool(self, x: NodeOutput, window: int = 2,
                 stride: Optional[int] = None, name=None,
                 device=None) -> NodeOutput:
        return self._add("AvgPool2D", [x],
                         attrs={"window": window,
                                "stride": stride or window},
                         name=name, device=device)

    def bias_add(self, x: NodeOutput, bias: NodeOutput, name=None,
                 device=None) -> NodeOutput:
        return self._add("BiasAdd", [x, bias], name=name, device=device)

    def batch_norm(self, x: NodeOutput, gamma: NodeOutput, beta: NodeOutput,
                   epsilon: float = 1e-5, name=None,
                   device=None) -> NodeOutput:
        return self._add("BatchNorm", [x, gamma, beta],
                         attrs={"epsilon": epsilon}, name=name,
                         device=device)

    def dropout(self, x: NodeOutput, rate: float = 0.5,
                training: bool = True, seed: int = 0, name=None,
                device=None) -> NodeOutput:
        return self._add("Dropout", [x],
                         attrs={"rate": rate, "training": training,
                                "seed": seed},
                         name=name, device=device)

    def flatten(self, x: NodeOutput, name=None, device=None) -> NodeOutput:
        return self._add("Flatten", [x], name=name, device=device)

    # -- training ---------------------------------------------------------------------

    def softmax_cross_entropy(self, logits: NodeOutput, labels: NodeOutput,
                              name=None, device=None) -> Tuple[NodeOutput, NodeOutput]:
        out = self._add("SoftmaxCrossEntropy", [logits, labels],
                        name=name or "xent", device=device)
        return out, out.node.output(1)

    def apply_gradient(self, variable: NodeOutput, gradient: NodeOutput,
                       lr: float, name=None, device=None) -> NodeOutput:
        if variable.node.op_type != "Variable":
            raise ValueError("apply_gradient needs a Variable output")
        return self._add("ApplyGradient", [variable, gradient],
                         attrs={"lr": lr, "variable": variable.node.name},
                         name=name or f"apply_{variable.node.name}",
                         device=device)

    # -- synthetic --------------------------------------------------------------------

    def synthetic_compute(self, time: float,
                          outputs: Optional[List[Tuple[DType, Shape]]] = None,
                          inputs: Sequence[NodeOutput] = (),
                          name=None, device=None) -> NodeOutput:
        """A node that charges a fixed simulated duration and emits
        virtual tensors of the given dtypes/shapes."""
        attrs = {"time": time}
        if outputs is not None:
            attrs["outputs"] = outputs
        return self._add("SyntheticCompute", list(inputs), attrs=attrs,
                         name=name, device=device)

    # -- finalization -----------------------------------------------------------------

    def finalize(self) -> Graph:
        """Validate and run static shape inference; returns the graph."""
        self.graph.validate()
        infer_shapes(self.graph)
        return self.graph
