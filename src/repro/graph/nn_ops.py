"""Convolutional and regularization operators (real numpy compute).

Extends the operator registry with the layers the paper's CNN
benchmarks are made of — Conv2D (via im2col), MaxPool2D, AvgPool2D,
BatchNorm, Dropout, Bias-add over channels — with real numpy forward
compute, shape inference that handles partially-known batch
dimensions, and FLOP-based simulated costs.

Layout is NHWC throughout (TensorFlow's default).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .dtypes import DType
from .node import GraphError, Node
from .ops import OPS, OpDef, _default_cost, _elements, _flops_cost, _set, register
from .shapes import Shape


def _out_dim(size: Optional[int], kernel: int, stride: int,
             padding: str) -> Optional[int]:
    if size is None:
        return None
    if padding == "same":
        return -(-size // stride)
    if padding == "valid":
        return (size - kernel) // stride + 1
    raise GraphError(f"bad padding {padding!r}")


def _pad_same(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    _, h, w, _ = x.shape
    out_h, out_w = -(-h // stride), -(-w // stride)
    pad_h = max(0, (out_h - 1) * stride + kh - h)
    pad_w = max(0, (out_w - 1) * stride + kw - w)
    return np.pad(x, ((0, 0), (pad_h // 2, pad_h - pad_h // 2),
                      (pad_w // 2, pad_w - pad_w // 2), (0, 0)))


def _im2col(x: np.ndarray, kh: int, kw: int,
            stride: int) -> Tuple[np.ndarray, int, int]:
    """Extract sliding patches -> (rows, out_h, out_w)."""
    batch, h, w, channels = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    shape = (batch, out_h, out_w, kh, kw, channels)
    strides = (x.strides[0], x.strides[1] * stride, x.strides[2] * stride,
               x.strides[1], x.strides[2], x.strides[3])
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    return patches.reshape(batch * out_h * out_w, kh * kw * channels), \
        out_h, out_w


def _conv2d_compute(node: Node, inputs: List[np.ndarray]) -> List[np.ndarray]:
    x, kernel = inputs
    stride = node.attrs.get("stride", 1)
    padding = node.attrs.get("padding", "same")
    kh, kw, _cin, cout = kernel.shape
    if padding == "same":
        x = _pad_same(x, kh, kw, stride)
    cols, out_h, out_w = _im2col(x, kh, kw, stride)
    out = cols @ kernel.reshape(-1, cout)
    return [out.reshape(x.shape[0], out_h, out_w, cout)]


@register("Conv2D", compute=_conv2d_compute,
          cost=lambda node, cm: _flops_cost(
              2.0 * _elements(node.output_shapes[0])
              * (node.inputs[1].shape[0] or 1)
              * (node.inputs[1].shape[1] or 1)
              * (node.inputs[1].shape[2] or 1), cm))
def _infer_conv2d(node, in_shapes, in_dtypes):
    """inputs: (x [B,H,W,Cin], kernel [kh,kw,Cin,Cout]) -> [B,H',W',Cout]."""
    x, kernel = in_shapes
    if x.rank != 4 or kernel.rank != 4:
        raise GraphError("Conv2D needs NHWC input and 4-D kernel")
    stride = node.attrs.get("stride", 1)
    padding = node.attrs.get("padding", "same")
    kh, kw, cin, cout = kernel.dims
    if cin is not None and x[3] is not None and cin != x[3]:
        raise GraphError(f"Conv2D channel mismatch: {x} vs {kernel}")
    _set(node, [Shape([x[0], _out_dim(x[1], kh or 1, stride, padding),
                       _out_dim(x[2], kw or 1, stride, padding), cout])],
         [in_dtypes[0]])


def _pool_compute(reducer):
    def compute(node: Node, inputs: List[np.ndarray]) -> List[np.ndarray]:
        x = inputs[0]
        k = node.attrs.get("window", 2)
        stride = node.attrs.get("stride", k)
        cols, out_h, out_w = _im2col(
            x.transpose(0, 3, 1, 2).reshape(
                x.shape[0] * x.shape[3], x.shape[1], x.shape[2], 1),
            k, k, stride)
        pooled = reducer(cols.reshape(-1, k * k), axis=1)
        out = pooled.reshape(x.shape[0], x.shape[3], out_h, out_w)
        return [out.transpose(0, 2, 3, 1).astype(x.dtype)]
    return compute


def _infer_pool(node, in_shapes, in_dtypes):
    x = in_shapes[0]
    if x.rank != 4:
        raise GraphError("pooling needs NHWC input")
    k = node.attrs.get("window", 2)
    stride = node.attrs.get("stride", k)
    _set(node, [Shape([x[0], _out_dim(x[1], k, stride, "valid"),
                       _out_dim(x[2], k, stride, "valid"), x[3]])],
         [in_dtypes[0]])


OPS["MaxPool2D"] = OpDef("MaxPool2D", _infer_pool,
                         _pool_compute(np.max), _default_cost)
OPS["AvgPool2D"] = OpDef("AvgPool2D", _infer_pool,
                         _pool_compute(np.mean), _default_cost)


def _bias_add_compute(node, inputs):
    return [inputs[0] + inputs[1]]


@register("BiasAdd", compute=_bias_add_compute)
def _infer_bias_add(node, in_shapes, in_dtypes):
    """inputs: (x [..., C], bias [C])."""
    x, bias = in_shapes
    if bias.rank != 1:
        raise GraphError("bias must be rank 1")
    if bias[0] is not None and x[-1] is not None and bias[0] != x[-1]:
        raise GraphError(f"bias of {bias} cannot add to {x}")
    _set(node, [x], [in_dtypes[0]])


def _batch_norm_compute(node, inputs):
    x, gamma, beta = inputs
    axes = tuple(range(x.ndim - 1))
    mean = x.mean(axis=axes, keepdims=True)
    var = x.var(axis=axes, keepdims=True)
    eps = node.attrs.get("epsilon", 1e-5)
    return [((x - mean) / np.sqrt(var + eps) * gamma + beta).astype(x.dtype)]


@register("BatchNorm", compute=_batch_norm_compute,
          cost=lambda node, cm: cm.op_overhead
          + 6 * _elements(node.output_shapes[0]) / cm.gpu_elementwise)
def _infer_batch_norm(node, in_shapes, in_dtypes):
    """inputs: (x [..., C], gamma [C], beta [C])."""
    _set(node, [in_shapes[0]], [in_dtypes[0]])


def _dropout_compute(node, inputs):
    x = inputs[0]
    rate = node.attrs.get("rate", 0.5)
    if not node.attrs.get("training", True):
        return [x]
    rng = np.random.default_rng(node.attrs.get("seed", 0))
    mask = (rng.random(x.shape) >= rate).astype(x.dtype)
    return [x * mask / max(1.0 - rate, 1e-9)]


@register("Dropout", compute=_dropout_compute)
def _infer_dropout(node, in_shapes, in_dtypes):
    rate = node.attrs.get("rate", 0.5)
    if not 0.0 <= rate < 1.0:
        raise GraphError(f"dropout rate {rate} out of [0, 1)")
    _set(node, [in_shapes[0]], [in_dtypes[0]])


def _flatten_compute(node, inputs):
    x = inputs[0]
    return [x.reshape(x.shape[0], -1)]


@register("Flatten", compute=_flatten_compute)
def _infer_flatten(node, in_shapes, in_dtypes):
    x = in_shapes[0]
    inner = 1
    for dim in x.dims[1:]:
        if dim is None:
            inner = None
            break
        inner *= dim
    _set(node, [Shape([x[0], inner])], [in_dtypes[0]])
