"""Shape algebra with partially-known dimensions.

The analyzer's static shape inference (§3.4) classifies every tensor
as statically shaped (all dimensions known at graph-construction time)
or dynamic.  :class:`Shape` models that: each dimension is an ``int``
or ``None`` (unknown).  Shapes are immutable.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union


DimLike = Optional[int]


class ShapeError(ValueError):
    """Incompatible or invalid shapes."""


class Shape:
    """An immutable tensor shape; dims may be unknown (None)."""

    __slots__ = ("dims",)

    def __init__(self, dims: Iterable[DimLike]) -> None:
        checked: List[DimLike] = []
        for dim in dims:
            if dim is None:
                checked.append(None)
            elif isinstance(dim, int) and not isinstance(dim, bool) and dim >= 0:
                checked.append(dim)
            else:
                raise ShapeError(f"bad dimension {dim!r}")
        object.__setattr__(self, "dims", tuple(checked))

    def __setattr__(self, name, value):
        raise AttributeError("Shape is immutable")

    # -- predicates -----------------------------------------------------------------

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def is_fully_defined(self) -> bool:
        return all(dim is not None for dim in self.dims)

    def num_elements(self) -> int:
        """Element count; raises if any dimension is unknown."""
        if not self.is_fully_defined:
            raise ShapeError(f"shape {self} is not fully defined")
        count = 1
        for dim in self.dims:
            count *= dim
        return count

    # -- algebra ----------------------------------------------------------------------

    def merge(self, other: "Shape") -> "Shape":
        """Combine two partial shapes; raises on conflict."""
        if self.rank != other.rank:
            raise ShapeError(f"rank mismatch: {self} vs {other}")
        merged: List[DimLike] = []
        for a, b in zip(self.dims, other.dims):
            if a is None:
                merged.append(b)
            elif b is None or a == b:
                merged.append(a)
            else:
                raise ShapeError(f"dimension conflict: {self} vs {other}")
        return Shape(merged)

    def compatible_with(self, other: "Shape") -> bool:
        try:
            self.merge(other)
            return True
        except ShapeError:
            return False

    def matmul(self, other: "Shape") -> "Shape":
        """Shape of a rank-2 matrix product self @ other."""
        if self.rank != 2 or other.rank != 2:
            raise ShapeError(f"matmul needs rank-2 shapes: {self} @ {other}")
        inner_a, inner_b = self.dims[1], other.dims[0]
        if inner_a is not None and inner_b is not None and inner_a != inner_b:
            raise ShapeError(f"matmul inner dims differ: {self} @ {other}")
        return Shape([self.dims[0], other.dims[1]])

    def broadcast(self, other: "Shape") -> "Shape":
        """Numpy-style broadcast of two shapes."""
        out: List[DimLike] = []
        a_dims = list(self.dims)[::-1]
        b_dims = list(other.dims)[::-1]
        for i in range(max(len(a_dims), len(b_dims))):
            a = a_dims[i] if i < len(a_dims) else 1
            b = b_dims[i] if i < len(b_dims) else 1
            if a == 1:
                out.append(b)
            elif b == 1 or b == a:
                out.append(a)
            elif a is None or b is None:
                out.append(None)
            else:
                raise ShapeError(f"cannot broadcast {self} with {other}")
        return Shape(out[::-1])

    def with_batch(self, batch: DimLike) -> "Shape":
        """Prepend a batch dimension."""
        return Shape((batch,) + self.dims)

    def concat_axis(self, other: "Shape", axis: int) -> "Shape":
        if self.rank != other.rank:
            raise ShapeError("concat rank mismatch")
        out: List[DimLike] = []
        for i, (a, b) in enumerate(zip(self.dims, other.dims)):
            if i == axis:
                out.append(None if (a is None or b is None) else a + b)
            else:
                if a is not None and b is not None and a != b:
                    raise ShapeError("concat non-axis dims differ")
                out.append(a if a is not None else b)
        return Shape(out)

    # -- conversions -------------------------------------------------------------------

    def as_tuple(self) -> Tuple[int, ...]:
        if not self.is_fully_defined:
            raise ShapeError(f"shape {self} has unknown dims")
        return tuple(self.dims)  # type: ignore[return-value]

    def __iter__(self):
        return iter(self.dims)

    def __len__(self) -> int:
        return len(self.dims)

    def __getitem__(self, index):
        return self.dims[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Shape):
            return self.dims == other.dims
        if isinstance(other, (tuple, list)):
            return self.dims == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.dims)

    def __repr__(self) -> str:
        inner = ", ".join("?" if d is None else str(d) for d in self.dims)
        return f"({inner})"


ShapeLike = Union[Shape, Sequence[DimLike]]


def as_shape(value: ShapeLike) -> Shape:
    """Coerce a sequence (or Shape) into a Shape."""
    if isinstance(value, Shape):
        return value
    return Shape(value)


def scalar() -> Shape:
    return Shape(())


def unknown(rank: int) -> Shape:
    """A shape with known rank but all dimensions unknown."""
    return Shape([None] * rank)
