"""Reverse-mode automatic differentiation over the dataflow graph.

Builds gradient sub-graphs out of existing operators (the way
TensorFlow's ``tf.gradients`` does), so users write only the forward
pass and call :func:`minimize` — the backward pass then flows through
the same partitioning/transfer machinery, which is exactly how
gradients end up crossing servers in the paper's training runs.

Coverage: the dense operators (MatMul, Add/Sub/Mul, BiasAdd, Sigmoid,
Tanh, Relu, Square, Identity, Reshape, Flatten, Transpose, ReduceSum,
ReduceMean, SoftmaxCrossEntropy).  Unsupported operators raise a
clear :class:`GraphError` rather than silently mis-training.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from .builder import GraphBuilder
from .node import GraphError, Node, NodeOutput
from .shapes import Shape


#: op_type -> fn(builder, node, grad_outputs) -> grads per data input
GRADIENTS: Dict[str, Callable] = {}


def register_gradient(op_type: str):
    def wrap(fn):
        GRADIENTS[op_type] = fn
        return fn
    return wrap


@register_gradient("MatMul")
def _grad_matmul(b: GraphBuilder, node: Node, grads: List[NodeOutput]):
    """d(a@b) -> (g @ b^T, a^T @ g)."""
    g = grads[0]
    a, w = node.inputs
    device = node.device
    return [b.matmul(g, b.transpose(w, device=device), device=device),
            b.matmul(b.transpose(a, device=device), g, device=device)]


@register_gradient("Add")
def _grad_add(b, node, grads):
    return [grads[0], _reduce_to_shape(b, grads[0], node.inputs[1], node)]


@register_gradient("Sub")
def _grad_sub(b, node, grads):
    g = grads[0]
    neg = b.mul(g, b.constant(np.float32(-1.0), device=node.device),
                device=node.device)
    return [g, _reduce_to_shape(b, neg, node.inputs[1], node)]


@register_gradient("Mul")
def _grad_mul(b, node, grads):
    g = grads[0]
    a, c = node.inputs
    return [b.mul(g, c, device=node.device),
            b.mul(g, a, device=node.device)]


@register_gradient("BiasAdd")
def _grad_bias_add(b, node, grads):
    g = grads[0]
    rank = node.output_shapes[0].rank
    bias_grad = g
    for _ in range(rank - 1):
        bias_grad = b.reduce_sum(bias_grad, axis=0, device=node.device)
    return [g, bias_grad]


def _reduce_to_shape(b, grad, target: NodeOutput, node: Node):
    """Sum a broadcast gradient back down to the target's shape."""
    grad_rank = grad.shape.rank
    target_rank = target.shape.rank
    reduced = grad
    for _ in range(grad_rank - target_rank):
        reduced = b.reduce_sum(reduced, axis=0, device=node.device)
    return reduced


@register_gradient("Sigmoid")
def _grad_sigmoid(b, node, grads):
    y = node.output(0)
    device = node.device
    one = b.constant(np.float32(1.0), device=device)
    return [b.mul(grads[0], b.mul(y, b.sub(one, y, device=device),
                                  device=device), device=device)]


@register_gradient("Tanh")
def _grad_tanh(b, node, grads):
    y = node.output(0)
    device = node.device
    one = b.constant(np.float32(1.0), device=device)
    return [b.mul(grads[0],
                  b.sub(one, b.mul(y, y, device=device), device=device),
                  device=device)]


@register_gradient("Relu")
def _grad_relu(b, node, grads):
    """g * 1[y > 0]; the mask is y's sign since y = max(x, 0)."""
    y = node.output(0)
    device = node.device
    mask = b._add("ReluMask", [y], device=device)
    return [b.mul(grads[0], mask, device=device)]


@register_gradient("Square")
def _grad_square(b, node, grads):
    x = node.inputs[0]
    device = node.device
    two = b.constant(np.float32(2.0), device=device)
    return [b.mul(grads[0], b.mul(two, x, device=device), device=device)]


@register_gradient("Identity")
def _grad_identity(b, node, grads):
    return [grads[0]]


@register_gradient("Reshape")
def _grad_reshape(b, node, grads):
    return [b.reshape(grads[0], node.inputs[0].shape, device=node.device)]


@register_gradient("Flatten")
def _grad_flatten(b, node, grads):
    return [b.reshape(grads[0], node.inputs[0].shape, device=node.device)]


@register_gradient("Transpose")
def _grad_transpose(b, node, grads):
    return [b.transpose(grads[0], device=node.device)]


@register_gradient("ReduceSum")
def _grad_reduce_sum(b, node, grads):
    return [_broadcast_back(b, node, grads[0], scale=1.0)]


@register_gradient("ReduceMean")
def _grad_reduce_mean(b, node, grads):
    shape = node.inputs[0].shape
    axis = node.attrs.get("axis")
    if axis is None:
        count = shape.num_elements()
    else:
        count = shape[axis]
    return [_broadcast_back(b, node, grads[0], scale=1.0 / count)]


def _broadcast_back(b, node, grad, scale: float):
    device = node.device
    input_shape = node.inputs[0].shape
    axis = node.attrs.get("axis")
    if axis is not None:
        # Re-insert the reduced axis as size 1 so broadcasting aligns.
        # (The incoming grad has the reduce's output shape, which was
        # inferred on the forward graph.)
        dims = list(node.output_shapes[0].dims)
        dims.insert(axis, 1)
        grad = b.reshape(grad, Shape(dims), device=device)
    ones = b._add("OnesLike", [node.inputs[0]], device=device)
    scaled = b.mul(grad, b.constant(np.float32(scale), device=device),
                   device=device)
    return b.mul(ones, scaled, device=device)


@register_gradient("SoftmaxCrossEntropy")
def _grad_softmax_xent(b, node, grads):
    """The op's second output *is* d(loss)/d(logits); scale by the
    incoming loss gradient.  Labels get no gradient."""
    dlogits = node.output(1)
    return [b.mul(dlogits, grads[0], device=node.device), None]


# Two helper ops the gradient builders need.
from .ops import OPS, OpDef, _default_cost, _set  # noqa: E402


def _infer_unary_passthrough(node, in_shapes, in_dtypes):
    _set(node, [in_shapes[0]], [in_dtypes[0]])


if "ReluMask" not in OPS:
    OPS["ReluMask"] = OpDef(
        "ReluMask", _infer_unary_passthrough,
        lambda n, i: [(i[0] > 0).astype(i[0].dtype)], _default_cost)
if "OnesLike" not in OPS:
    OPS["OnesLike"] = OpDef(
        "OnesLike", _infer_unary_passthrough,
        lambda n, i: [np.ones_like(i[0])], _default_cost)


def gradients(builder: GraphBuilder, loss: NodeOutput,
              targets: List[NodeOutput]) -> List[Optional[NodeOutput]]:
    """Build the backward graph: d(loss)/d(target) for each target.

    ``loss`` must be scalar.  Returns one gradient output per target
    (None if the loss does not depend on it).
    """
    graph = builder.graph
    # Shapes must be known to build the backward pass (finalize() will
    # re-run inference over the combined graph afterwards).
    from .ops import infer_shapes
    infer_shapes(graph)
    if loss.shape.rank != 0:
        raise GraphError(f"loss must be scalar, got shape {loss.shape}")
    # Accumulated gradient per (node name, output index).
    accumulated: Dict[tuple, NodeOutput] = {}
    one = builder.constant(np.float32(1.0), name="grad_seed",
                           device=loss.node.device)
    accumulated[(loss.node.name, loss.index)] = one

    # Reverse topological order over the current graph snapshot.
    order = [n for n in graph.topological_order()]
    for node in reversed(order):
        grads_out = [accumulated.get((node.name, i))
                     for i in range(max(len(node.output_shapes), 1))]
        if all(g is None for g in grads_out):
            continue
        if node.op_type in ("Variable", "Placeholder", "Const"):
            continue
        gradient_fn = GRADIENTS.get(node.op_type)
        if gradient_fn is None:
            raise GraphError(
                f"no gradient registered for {node.op_type!r} "
                f"(node {node.name!r})")
        # Missing output grads contribute zero; builders may index them.
        filled = [g if g is not None else _zero_like(builder, node, i)
                  for i, g in enumerate(grads_out)]
        input_grads = gradient_fn(builder, node, filled)
        if len(input_grads) != len(node.inputs):
            raise GraphError(
                f"gradient for {node.op_type} returned "
                f"{len(input_grads)} grads for {len(node.inputs)} inputs")
        for src, grad in zip(node.inputs, input_grads):
            if grad is None:
                continue
            key = (src.node.name, src.index)
            if key in accumulated:
                accumulated[key] = builder.add(
                    accumulated[key], grad, device=src.node.device)
            else:
                accumulated[key] = grad
    return [accumulated.get((t.node.name, t.index)) for t in targets]


def _zero_like(builder: GraphBuilder, node: Node, index: int) -> NodeOutput:
    zero = builder._add("ZerosLike", [node.output(index)],
                        device=node.device)
    return zero


if "ZerosLike" not in OPS:
    OPS["ZerosLike"] = OpDef(
        "ZerosLike", _infer_unary_passthrough,
        lambda n, i: [np.zeros_like(i[0])], _default_cost)


def minimize(builder: GraphBuilder, loss: NodeOutput, lr: float,
             variables: Optional[List[NodeOutput]] = None) -> List[NodeOutput]:
    """Build SGD update ops for every (or the given) variable.

    Returns the ApplyGradient outputs; variables the loss does not
    touch are skipped.
    """
    if variables is None:
        variables = [n.output(0)
                     for n in builder.graph.nodes_of_type("Variable")]
    grads = gradients(builder, loss, variables)
    updates = []
    for variable, grad in zip(variables, grads):
        if grad is None:
            continue
        updates.append(builder.apply_gradient(
            variable, grad, lr=lr, device=variable.node.device))
    return updates
