"""The per-device graph executor: a ready-queue scheduler.

Implements the three operator execution modes of §4:

* **synchronous** — the op's simulated cost elapses, outputs appear;
* **asynchronous** — the op parks on an event (an RPC reply, a verb
  completion) while the executor keeps draining the ready queue;
* **polling-async** — the new mode the paper introduces for
  ``RdmaRecv``/``RdmaRecvDyn``: the op polls a flag byte; on a miss it
  is re-enqueued at the *tail* of the ready queue so other ready work
  runs first; when the queue holds only pollers, the executor backs
  off with exponentially growing idle waits (bounded), so polling
  neither starves real work nor spins the simulated CPU.

Each executor owns the allocators for its device; allocation of every
op output goes through :meth:`allocate_output`, which consults the
session's allocation policy — the hook the dynamic tracer (§3.4) uses
to steer traced allocation sites into the RDMA arena.
"""

from __future__ import annotations

import itertools
from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, Dict, Generator, Iterator, List, Optional, Tuple

import numpy as np

from ..observability.tracer import executor_track
from ..simnet.simulator import Event, Simulator, SleepUntil
from ..simnet.topology import Host
from .allocator import ArenaAllocator, BaseAllocator, HostAllocator
from .dtypes import DType
from .node import Graph, GraphError, Node
from .ops import get_op
from .shapes import Shape
from .tensor import Tensor
from .transfer_api import CommRuntime, Outcome


class ExecutorError(RuntimeError):
    """Runtime execution failures."""


#: exponential idle backoff for pure-polling phases
_IDLE_BACKOFF_MAX = 500e-6


class _ReadyQueue:
    """The executor's ready queue: FIFO by default, priority when enabled.

    Priority mode makes two deliberate changes to the service order:
    nodes enqueued for (re-)polling sort after every fresh ready node —
    a poll-miss sweep must not starve runnable compute — and transfer
    nodes (``_Send``/``_Recv``) with a higher ``priority`` attr are
    issued first, so an urgent tensor reaches the wire scheduler ahead
    of bulk traffic.  Compute nodes keep their FIFO order regardless of
    any priority attr: reordering compute would push collective
    pack/unpack work ahead of the backward chain and lengthen the very
    critical path the scheduler exists to shorten.  FIFO mode keeps the
    exact legacy deque ordering so default-mode clocks are
    bit-identical.
    """

    def __init__(self, nodes=(), priority: bool = False) -> None:
        self._priority = priority
        self._fifo: Deque[Node] = deque()
        self._heap: List[Tuple[int, int, int, Node]] = []
        self._seq = itertools.count()
        for node in nodes:
            self.append(node)

    def append(self, node: Node, retry: bool = False) -> None:
        if not self._priority:
            self._fifo.append(node)
        else:
            urgency = (node.attrs.get("priority", 0)
                       if not retry and node.op_type == "_Send" else 0)
            heappush(self._heap, (-urgency, next(self._seq), node))

    def popleft(self) -> Node:
        if not self._priority:
            return self._fifo.popleft()
        return heappop(self._heap)[-1]

    def __len__(self) -> int:
        return len(self._fifo) + len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._fifo) or bool(self._heap)

    def __iter__(self) -> Iterator[Node]:
        if not self._priority:
            return iter(self._fifo)
        return iter(entry[-1] for entry in self._heap)


class Executor:
    """Runs one partition subgraph on one simulated host, repeatedly."""

    def __init__(self, host: Host, graph: Graph, device: str,
                 comm: CommRuntime, allocation_policy=None,
                 priority_sched: bool = False) -> None:
        self.host = host
        self.sim: Simulator = host.sim
        self.cost = host.cost
        self.graph = graph
        self.device = device
        self.comm = comm
        self.priority_sched = priority_sched
        self.heap = HostAllocator(host, name=f"heap:{device}")
        #: the RDMA arena; installed by the analyzer when RDMA is in play
        self.arena: Optional[ArenaAllocator] = None
        #: (node_name, alloc_index) -> BaseAllocator override
        self.allocation_policy = allocation_policy or (lambda node, idx: None)
        self.variables: Dict[str, Tensor] = {}
        #: receiver-side tensors preallocated by the analyzer (key -> Tensor)
        self.preallocated_recv: Dict[str, Tensor] = {}
        self.values: Dict[Tuple[str, int], Tensor] = {}
        self.iteration = -1
        self.ops_executed = 0
        self.poll_misses = 0
        self._order = graph.topological_order()
        self._wake: Optional[Event] = None
        # Remote one-sided writes landing in this host's memory wake
        # the ready loop so flag pollers re-check without waiting out
        # their idle backoff (the backoff only bounds simulator events;
        # a real spinning poller sees the flag within its poll interval).
        host.wake_listeners.append(self._notify)
        #: per-iteration allocations, reclaimed at the next iteration
        self._transient: List[Tuple[BaseAllocator, Tensor]] = []

    # -- allocation -----------------------------------------------------------------

    def pick_allocator(self, node_name: str, alloc_index: int) -> BaseAllocator:
        override = self.allocation_policy(node_name, alloc_index)
        if override is not None:
            return override
        return self.heap

    def allocate_output(self, node: Node, index: int, dtype: DType,
                        shape: Shape) -> Tensor:
        """Allocate storage for output ``index`` of ``node``.

        Allocations made during an iteration are transient: their
        storage is reclaimed when the next iteration starts (mirroring
        the runtime's per-step tensor lifetime).  Variable storage is
        allocated before iteration 0 and lives forever.
        """
        allocator = self.pick_allocator(node.name, index)
        tensor = allocator.allocate_tensor(dtype, shape,
                                           node_name=node.name,
                                           alloc_index=index)
        if self.iteration >= 0:
            self._transient.append((allocator, tensor))
        return tensor

    # -- variables ---------------------------------------------------------------------

    def initialize_variables(self) -> None:
        """Allocate persistent variable storage (iteration -1 work)."""
        for node in self.graph.nodes_of_type("Variable"):
            shape = node.attrs["shape"]
            dtype = node.attrs["dtype"]
            if not shape.is_fully_defined:
                raise ExecutorError(f"variable {node.name} needs static shape")
            tensor = self.allocate_output(node, 0, dtype, shape)
            init = node.attrs.get("initializer")
            if init is not None and tensor.is_dense:
                tensor.copy_from(init)
            self.variables[node.name] = tensor

    # -- iteration driver --------------------------------------------------------------

    def run_iteration(self, feeds: Optional[Dict[str, np.ndarray]] = None
                      ) -> Generator:
        """Process: execute every node of the partition once."""
        self.iteration += 1
        self.values = {}
        for allocator, tensor in self._transient:
            allocator.free_tensor(tensor)
        self._transient = []
        feeds = feeds or {}
        deps = self.graph.dependency_map()
        pending: Dict[str, int] = {name: len(d) for name, d in deps.items()}
        dependents: Dict[str, List[str]] = {name: [] for name in pending}
        for name, dep_names in deps.items():
            for dep in dep_names:
                dependents[dep].append(name)

        ready = _ReadyQueue((node for node in self._order
                             if pending[node.name] == 0),
                            priority=self.priority_sched)
        in_flight = 0
        completed = 0
        total = len(self._order)
        #: nodes currently in their polling phase: node -> Outcome
        polling: Dict[str, Outcome] = {}
        idle_backoff = self.cost.idle_poll_interval
        #: misses since the last wake-up/hit; the executor only parks
        #: after a full sweep of the pollers has missed, so one wake-up
        #: (arriving data) gets every flag checked, not just one
        sweep_misses = 0
        # Every yield below is bracketed with tracer.account() so the
        # per-category sums partition this iteration's wall time exactly
        # (sim time only advances across yields) — the invariant the
        # stall-attribution report depends on.
        tracer = self.host.cluster.tracer
        track = executor_track(self.device)
        hostname = self.host.name
        iteration = self.iteration
        polls_since_park = 0
        # Hot-loop locals: this loop runs once per scheduled node visit
        # (including every poll-miss sweep), so attribute loads add up
        # at 100+ simulated hosts.
        sim = self.sim
        sched_dispatch = self.cost.sched_dispatch
        poll_check = self.cost.poll_check
        poll_requeue = self.cost.poll_requeue
        graph_node = self.graph.node
        #: count of queued nodes NOT in their polling phase — the O(1)
        #: replacement for sweeping the whole queue on every poll miss
        fresh_in_queue = len(ready)

        def finish(node: Node, outputs: List[Tensor]) -> None:
            nonlocal completed, fresh_in_queue
            for index, tensor in enumerate(outputs):
                self.values[(node.name, index)] = tensor
            completed += 1
            for dependent in dependents[node.name]:
                pending[dependent] -= 1
                if pending[dependent] == 0:
                    ready.append(graph_node(dependent))
                    fresh_in_queue += 1
            self._notify()

        while completed < total:
            if not ready:
                # Nothing runnable: wait for an async completion.
                if in_flight == 0:
                    raise ExecutorError(
                        f"executor {self.device} stalled at "
                        f"{completed}/{total} nodes")
                t0 = sim.now
                yield self._wait_for_wake()
                if tracer is not None:
                    tracer.account(hostname, track, iteration, "wire_wait",
                                   t0, sim.now)
                continue
            node = ready.popleft()
            t0 = sim.now

            if node.name in polling:
                # Batched dispatch+check: a poll visit always pays
                # sched_dispatch then poll_check back to back, so both
                # delays ride one heap event.  The wake time replays the
                # exact float-addition chain two separate yields would
                # produce, keeping traced clocks bit-identical.
                outcome = polling[node.name]
                t1 = t0 + sched_dispatch
                t2 = t1 + poll_check
                yield SleepUntil(t2)
                if tracer is not None:
                    tracer.account(hostname, track, iteration, "sched",
                                   t0, t1, emit=False)
                    tracer.account(hostname, track, iteration, "poll",
                                   t1, t2, emit=False)
                    polls_since_park += 1
                if not outcome.poll():
                    self.poll_misses += 1
                    t0 = sim.now
                    yield poll_requeue
                    if tracer is not None:
                        tracer.account(hostname, track, iteration, "poll",
                                       t0, sim.now, emit=False)
                    ready.append(node, retry=True)
                    sweep_misses += 1
                    if sweep_misses >= len(ready) and fresh_in_queue == 0:
                        # A whole sweep of pollers missed and nothing
                        # else is runnable: idle with growing backoff so
                        # polling does not monopolize the simulated CPU.
                        t0 = sim.now
                        yield self._wait_for_wake(timeout=idle_backoff)
                        if tracer is not None:
                            tracer.account(hostname, track, iteration,
                                           "poll_wait", t0, sim.now)
                            tracer.metrics.histogram(
                                "poll_iterations_per_wake").observe(
                                    polls_since_park)
                            polls_since_park = 0
                        idle_backoff = min(idle_backoff * 2, _IDLE_BACKOFF_MAX)
                        sweep_misses = 0
                    continue
                idle_backoff = self.cost.idle_poll_interval
                sweep_misses = 0
                del polling[node.name]
                in_flight -= 1
                next_outcome = outcome.complete()
            else:
                yield sched_dispatch
                if tracer is not None:
                    tracer.account(hostname, track, iteration, "sched",
                                   t0, sim.now, emit=False)
                fresh_in_queue -= 1
                t0 = sim.now
                next_outcome = yield from self._execute(node, feeds)
                if tracer is not None:
                    tracer.account(hostname, track, iteration, "op",
                                   t0, sim.now,
                                   name=f"{node.op_type}:{node.name}")

            if next_outcome.kind == "sync":
                self.ops_executed += 1
                finish(node, next_outcome.outputs or [])
            elif next_outcome.kind == "async":
                in_flight += 1

                def on_done(event, node=node) -> None:
                    nonlocal in_flight
                    in_flight -= 1
                    self.ops_executed += 1
                    finish(node, event.value or [])
                next_outcome.event.add_callback(on_done)
            elif next_outcome.kind == "poll":
                polling[node.name] = next_outcome
                in_flight += 1
                ready.append(node, retry=True)
            else:  # pragma: no cover - defensive
                raise ExecutorError(f"bad outcome kind {next_outcome.kind}")

    def _wait_for_wake(self, timeout: Optional[float] = None) -> Event:
        if self._wake is None or self._wake.triggered:
            self._wake = self.sim.event()
        if timeout is None:
            return self._wake
        return self.sim.any_of([self._wake, self.sim.timeout(timeout)])

    def _notify(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    # -- op dispatch ------------------------------------------------------------------------

    def _execute(self, node: Node, feeds: Dict[str, np.ndarray]) -> Generator:
        """Process: run one node; returns an Outcome."""
        op_type = node.op_type
        inputs = [self.values[(src.node.name, src.index)]
                  for src in node.inputs]

        if op_type == "_Send":
            result = self.comm.execute_send(self, node, inputs[0])
            if hasattr(result, "send"):
                # Sends run detached (TensorFlow's inter-op thread pool
                # would carry them): their internal work — staging
                # copies, PCIe staging — contends on shared resources
                # but does not stall this executor's ready queue.
                return Outcome.wait(self.sim.spawn(
                    self._detached_send(result),
                    name=f"send-{node.name}"))
            return result
        if op_type == "_Recv":
            result = self.comm.execute_recv(self, node)
            if hasattr(result, "send"):
                result = yield from result
            return result
        if op_type == "InNetworkReduce":
            # Switch-aggregated collective: like _Send/_Recv this is a
            # comm-runtime verb, not a compute op — the runtime streams
            # the buffer toward the ToR and hands back a polling outcome
            # for the multicast result.
            result = self.comm.execute_innetwork(self, node, inputs[0])
            if hasattr(result, "send"):
                result = yield from result
            return result
        if op_type == "Variable":
            yield self.cost.op_overhead
            return Outcome.done([self.variables[node.name]])
        if op_type == "Placeholder":
            yield self.cost.op_overhead
            return Outcome.done([self._feed_tensor(node, feeds)])

        op = get_op(op_type)
        yield max(op.cost(node, self.cost), 0.0)

        if op_type == "ApplyGradient":
            return Outcome.done([self._apply_gradient(node, inputs)])
        if op_type == "SyntheticCompute":
            outputs = [self.allocate_output(node, i, dtype, shape)
                       for i, (dtype, shape)
                       in enumerate(zip(node.output_dtypes, node.output_shapes))]
            return Outcome.done(outputs)

        return Outcome.done(self._run_compute(node, op, inputs))

    def _detached_send(self, send_generator) -> Generator:
        """Run a send's process to completion, resolving its outcome."""
        outcome = yield from send_generator
        if outcome.kind == "sync":
            return outcome.outputs or []
        if outcome.kind == "async":
            value = yield outcome.event
            return value or []
        raise ExecutorError("sends cannot use the polling mode")

    def _feed_tensor(self, node: Node, feeds: Dict[str, np.ndarray]) -> Tensor:
        if node.name not in feeds:
            raise ExecutorError(f"no feed for placeholder {node.name!r}")
        values = np.asarray(feeds[node.name],
                            dtype=node.output_dtypes[0].np)
        tensor = self.allocate_output(node, 0, node.output_dtypes[0],
                                      Shape(values.shape))
        if tensor.is_dense:
            tensor.copy_from(values)
        return tensor

    def _apply_gradient(self, node: Node, inputs: List[Tensor]) -> Tensor:
        """In-place SGD update: writes through the variable's buffer.

        The output tensor *is* the variable tensor — the in-place
        buffer-passing behaviour the paper's dynamic tracer exists to
        handle (§3.4, "decide tensor allocation site").
        """
        var_name = node.attrs["variable"]
        variable = self.variables.get(var_name)
        if variable is None:
            raise ExecutorError(f"{node.name}: unknown variable {var_name!r}")
        gradient = inputs[1]
        if variable.is_dense and gradient.is_dense:
            variable.array[...] -= node.attrs["lr"] * gradient.array
        return variable

    def _run_compute(self, node: Node, op, inputs: List[Tensor]) -> List[Tensor]:
        dense = all(t.is_dense for t in inputs)
        if dense and op.compute is not None:
            arrays = op.compute(node, [t.array for t in inputs])
            outputs = []
            for index, array in enumerate(arrays):
                array = np.asarray(array, dtype=node.output_dtypes[index].np)
                tensor = self.allocate_output(node, index,
                                              node.output_dtypes[index],
                                              Shape(array.shape))
                if tensor.is_dense:
                    tensor.copy_from(array)
                outputs.append(tensor)
            return outputs
        # Virtual path: contents are not tracked; partially-unknown
        # static shapes are resolved from the runtime input shapes.
        if not all(s.is_fully_defined for s in node.output_shapes):
            op.infer(node, [t.shape for t in inputs],
                     [t.dtype for t in inputs])
        outputs = []
        for index, (dtype, shape) in enumerate(
                zip(node.output_dtypes, node.output_shapes)):
            if not shape.is_fully_defined:
                raise ExecutorError(
                    f"{node.name}: could not resolve a concrete shape "
                    f"for output {index} ({shape})")
            outputs.append(self.allocate_output(node, index, dtype, shape))
        return outputs
