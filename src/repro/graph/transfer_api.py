"""The contract between the graph executor and transfer mechanisms.

The executor knows nothing about gRPC or RDMA; when it reaches a
``_Send``/``_Recv`` node it delegates to the session's
:class:`CommRuntime`.  Implementations live in :mod:`repro.core`
(the paper's RDMA mechanisms) and :mod:`repro.distributed.rpc_comm`
(the gRPC baselines).

An op execution returns an :class:`Outcome`:

* ``sync``  — finished; outputs available now;
* ``async`` — an event will fire with the outputs (gRPC replies,
  RDMA write completions);
* ``poll``  — the *polling-async* mode of §4: the executor repeatedly
  calls ``poll()`` from its ready queue, re-enqueuing itself at the
  tail on misses, and calls ``complete()`` once the poll succeeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, TYPE_CHECKING

from ..simnet.simulator import Event
from .tensor import Tensor

if TYPE_CHECKING:  # pragma: no cover
    from .executor import Executor
    from .node import Node


@dataclass
class Outcome:
    """Result of dispatching one operator execution."""

    kind: str                                  # "sync" | "async" | "poll"
    outputs: Optional[List[Tensor]] = None     # sync
    event: Optional[Event] = None              # async: fires with outputs
    poll: Optional[Callable[[], bool]] = None  # poll phase predicate
    complete: Optional[Callable[[], "Outcome"]] = None  # after poll success

    @classmethod
    def done(cls, outputs: List[Tensor]) -> "Outcome":
        return cls(kind="sync", outputs=outputs)

    @classmethod
    def wait(cls, event: Event) -> "Outcome":
        return cls(kind="async", event=event)

    @classmethod
    def polling(cls, poll: Callable[[], bool],
                complete: Callable[[], "Outcome"]) -> "Outcome":
        return cls(kind="poll", poll=poll, complete=complete)


class CommRuntime:
    """Per-session transfer mechanism; one instance serves all executors."""

    #: mechanism label used in reports ("gRPC.TCP", "RDMA", ...)
    name: str = "none"

    def prepare(self, session) -> None:
        """One-time setup after partitioning, before iteration 0.

        RDMA mechanisms run the graph analyzer here: size and register
        arenas, preallocate receiver tensors / metadata slots, and
        distribute remote addresses (§3.4).
        """

    def on_iteration_start(self, session, iteration: int) -> None:
        """Hook at the start of every training iteration."""

    def execute_send(self, executor: "Executor", node: "Node",
                     tensor: Tensor) -> Outcome:
        raise NotImplementedError

    def execute_recv(self, executor: "Executor", node: "Node") -> Outcome:
        raise NotImplementedError

    def execute_innetwork(self, executor: "Executor", node: "Node",
                          tensor: Tensor) -> Outcome:
        """Run one worker's half of a switch-aggregated allreduce.

        Only comm runtimes that drive an RDMA-capable fat-tree fabric
        implement this; graphs containing ``InNetworkReduce`` nodes
        cannot run on other mechanisms.
        """
        raise NotImplementedError(
            f"{self.name}: in-network reduction is not supported by this "
            f"comm runtime")


class NullComm(CommRuntime):
    """For single-device graphs with no cross-device edges."""

    name = "local"

    def execute_send(self, executor, node, tensor):  # pragma: no cover
        raise RuntimeError("NullComm cannot transfer tensors")

    def execute_recv(self, executor, node):  # pragma: no cover
        raise RuntimeError("NullComm cannot transfer tensors")
