"""Element types for tensors, with numpy interop."""

from __future__ import annotations

import enum

import numpy as np


class DType(enum.Enum):
    """Supported tensor element types (a subset of TensorFlow's)."""

    float16 = ("float16", 2)
    float32 = ("float32", 4)
    float64 = ("float64", 8)
    int32 = ("int32", 4)
    int64 = ("int64", 8)
    uint8 = ("uint8", 1)

    def __init__(self, type_name: str, nbytes: int) -> None:
        self.type_name = type_name
        self.size = nbytes

    @property
    def np(self) -> np.dtype:
        """The corresponding numpy dtype."""
        return np.dtype(self.type_name)

    @classmethod
    def from_numpy(cls, dtype: np.dtype) -> "DType":
        name = np.dtype(dtype).name
        for member in cls:
            if member.type_name == name:
                return member
        raise TypeError(f"unsupported numpy dtype {name!r}")

    @classmethod
    def from_code(cls, code: int) -> "DType":
        """Inverse of :attr:`code`, for metadata deserialization."""
        for member in cls:
            if member.code == code:
                return member
        raise ValueError(f"unknown dtype code {code}")

    @property
    def code(self) -> int:
        """Stable small integer for wire encoding of tensor metadata."""
        return list(type(self)).index(self)

    def __repr__(self) -> str:
        return f"DType.{self.type_name}"
