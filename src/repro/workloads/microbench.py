"""The two-server send/receive micro-benchmark (paper §5.1, Figure 8).

Two servers; the sender produces a tensor of a given size, the
receiver consumes it with a lightweight ``reduce_max`` operator.  The
steady-state per-iteration time under each mechanism gives the
transfer speed curve of Figure 8.  gRPC.RDMA genuinely crashes above
1 GB, reproducing the figure's missing data point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.rdma_comm import RdmaCommRuntime
from ..distributed.rpc_comm import GrpcCommRuntime
from ..distributed.runner import make_mechanism
from ..graph.builder import GraphBuilder
from ..graph.dtypes import DType
from ..graph.session import Session
from ..graph.shapes import Shape
from ..simnet.costmodel import CostModel
from ..simnet.topology import Cluster


MICRO_MECHANISMS = ("gRPC.TCP", "gRPC.RDMA", "RDMA.cp", "RDMA")


@dataclass
class MicrobenchResult:
    """One point of Figure 8."""

    mechanism: str
    message_bytes: int
    transfer_seconds: Optional[float]    # None = crashed (gRPC.RDMA at 1 GB)
    crash_reason: str = ""

    @property
    def throughput_gbps(self) -> Optional[float]:
        if self.transfer_seconds is None or self.transfer_seconds <= 0:
            return None
        return self.message_bytes * 8 / self.transfer_seconds / 1e9


def run_microbench(mechanism: str, message_bytes: int,
                   iterations: int = 4,
                   cost: Optional[CostModel] = None) -> MicrobenchResult:
    """Measure one (mechanism, size) point of the micro-benchmark."""
    elements = max(1, message_bytes // 4)
    cluster = Cluster(2, cost=cost)
    b = GraphBuilder("microbench")
    tensor = b.synthetic_compute(
        1e-6, outputs=[(DType.float32, Shape([elements]))],
        name="produce", device="sender")
    b.reduce_max(tensor, name="consume", device="receiver")
    graph = b.finalize()
    comm = make_mechanism(mechanism)
    try:
        session = Session(cluster, graph,
                          {"sender": cluster.hosts[0],
                           "receiver": cluster.hosts[1]}, comm=comm)
        stats = session.run(iterations=iterations)
    except Exception as exc:  # noqa: BLE001 - the 1 GB crash is a result
        return MicrobenchResult(mechanism=mechanism,
                                message_bytes=message_bytes,
                                transfer_seconds=None,
                                crash_reason=str(exc))
    return MicrobenchResult(mechanism=mechanism, message_bytes=message_bytes,
                            transfer_seconds=stats.steady_state_time)


def sweep_microbench(sizes: Sequence[int],
                     mechanisms: Sequence[str] = MICRO_MECHANISMS,
                     iterations: int = 4,
                     cost: Optional[CostModel] = None
                     ) -> Dict[str, List[MicrobenchResult]]:
    """The full Figure 8 sweep: every mechanism over every size."""
    return {mechanism: [run_microbench(mechanism, size,
                                       iterations=iterations, cost=cost)
                        for size in sizes]
            for mechanism in mechanisms}
