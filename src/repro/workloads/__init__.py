"""Workload generators: the micro-benchmark and synthetic datasets."""

from .microbench import MicrobenchResult, run_microbench, sweep_microbench
from .synthetic import (random_batch, random_tensor, synthetic_minibatches,
                        variable_length_batches)

__all__ = [
    "MicrobenchResult", "random_batch", "random_tensor", "run_microbench",
    "sweep_microbench", "synthetic_minibatches", "variable_length_batches",
]
