"""Synthetic dataset generators (§5: "our synthetic datasets are
generated on the fly, which can avoid the overhead of data loading").
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np


def random_tensor(shape: Sequence[int], seed: int = 0,
                  dtype=np.float32) -> np.ndarray:
    """A deterministic random tensor of the given shape."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal(size=tuple(shape)).astype(dtype)


def random_batch(batch_size: int, feature_dim: int, num_classes: int,
                 seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """One (features, one-hot labels) classification mini-batch."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(size=(batch_size, feature_dim)).astype(np.float32)
    labels = rng.integers(0, num_classes, size=batch_size)
    y = np.zeros((batch_size, num_classes), dtype=np.float32)
    y[np.arange(batch_size), labels] = 1.0
    return x, y


def synthetic_minibatches(batch_size: int, feature_dim: int,
                          num_classes: int,
                          seed: int = 0) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """An endless stream of mini-batches, generated on the fly."""
    step = 0
    while True:
        yield random_batch(batch_size, feature_dim, num_classes,
                           seed=seed + step)
        step += 1


def variable_length_batches(max_length: int, feature_dim: int,
                            count: int, seed: int = 0) -> List[np.ndarray]:
    """Batches whose leading dimension varies (sparse-feature workloads,
    §3.3) — used to exercise the dynamic-allocation transfer path."""
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, max_length + 1, size=count)
    return [rng.standard_normal(size=(int(n), feature_dim)).astype(np.float32)
            for n in lengths]
