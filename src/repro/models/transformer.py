"""Decoder-only transformer model specs for the LLM subsystem.

The paper's model zoo (Table 2) is CNN/LSTM-era; transformers stress
the dynamic dataflow machinery (§3.3) much harder: sequence
activations dominate the wire in pipeline-parallel training, and
serving grows a per-request KV cache token by token — a genuinely
variable-length tensor.  A :class:`TransformerSpec` extends
:class:`ModelSpec` with the architectural parameters the two planes
need: per-token decode cost, prefill parallelism, and the KV-cache
footprint per token.

These are *workload* models, not paper benchmarks, so
``paper_model_bytes`` stays 0 and the Table-2/Figure-7 experiments
keep running on the six paper models only (see
:func:`repro.models.zoo.paper_models`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .spec import ModelSpec, VariableSpec
from .zoo import register_model


@dataclass(frozen=True)
class TransformerSpec(ModelSpec):
    """A decoder-only transformer workload.

    The training plane reads ``seq_len * hidden`` as the per-sample
    activation width (what pipeline stages ship over RDMA); the
    serving plane reads the prefill/decode cost model and
    :attr:`kv_bytes_per_token`.
    """

    #: decoder blocks, model width, attention heads
    layers: int = 0
    hidden: int = 0
    heads: int = 0
    #: training sequence length / maximum context window (tokens)
    seq_len: int = 2048
    vocab: int = 50257
    #: single-replica cost of decoding one token at batch width 1 (s)
    token_time: float = 1e-3
    #: decode-step time is flat up to this batch width (the replica's
    #: parallelism absorbs the batch), then linear — same shape as
    #: :meth:`ModelSpec.compute_time`
    width_saturation: int = 8
    #: prefill processes this many prompt tokens per ``token_time``
    #: (prompt tokens are independent, decode tokens are sequential)
    prefill_parallelism: int = 16

    @property
    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes one token pins: K and V, every layer, fp32."""
        return 2 * self.layers * self.hidden * 4

    def prefill_time(self, prompt_tokens: int) -> float:
        """Time to ingest a prompt and emit the first token.

        Prompt tokens are processed ``prefill_parallelism`` at a time;
        a prefill never beats a single decode step.
        """
        if prompt_tokens < 1:
            raise ValueError("prompt must have at least one token")
        return max(self.token_time,
                   self.token_time * prompt_tokens / self.prefill_parallelism)

    def decode_step_time(self, width: int) -> float:
        """Time for one decode iteration generating ``width`` tokens."""
        if width < 1:
            raise ValueError("decode width must be positive")
        return self.token_time * max(1.0, width / self.width_saturation)


def _transformer_variables(layers: int, hidden: int, vocab: int,
                           seq_len: int) -> List[VariableSpec]:
    """The standard GPT-2-style inventory: 12 tensors per block plus
    embeddings and the final layer norm."""
    variables: List[VariableSpec] = [
        VariableSpec("wte", (vocab, hidden)),
        VariableSpec("wpe", (seq_len, hidden)),
    ]
    for block in range(layers):
        prefix = f"h{block}"
        variables += [
            VariableSpec(f"{prefix}/ln1/gain", (hidden,)),
            VariableSpec(f"{prefix}/ln1/bias", (hidden,)),
            VariableSpec(f"{prefix}/attn/qkv", (hidden, 3 * hidden)),
            VariableSpec(f"{prefix}/attn/qkv_bias", (3 * hidden,)),
            VariableSpec(f"{prefix}/attn/proj", (hidden, hidden)),
            VariableSpec(f"{prefix}/attn/proj_bias", (hidden,)),
            VariableSpec(f"{prefix}/ln2/gain", (hidden,)),
            VariableSpec(f"{prefix}/ln2/bias", (hidden,)),
            VariableSpec(f"{prefix}/mlp/fc", (hidden, 4 * hidden)),
            VariableSpec(f"{prefix}/mlp/fc_bias", (4 * hidden,)),
            VariableSpec(f"{prefix}/mlp/proj", (4 * hidden, hidden)),
            VariableSpec(f"{prefix}/mlp/proj_bias", (hidden,)),
        ]
    variables += [
        VariableSpec("ln_f/gain", (hidden,)),
        VariableSpec("ln_f/bias", (hidden,)),
    ]
    return variables


def transformer(name: str, *, layers: int, hidden: int, heads: int,
                vocab: int = 50257, seq_len: int = 2048,
                token_time: float = 1e-3, width_saturation: int = 8,
                prefill_parallelism: int = 16,
                batch_saturation: int = 4) -> TransformerSpec:
    """Build a decoder-only spec from its architectural parameters.

    Training sample time is derived from the serving cost model so the
    two planes agree: one sample is ``seq_len`` prompt-parallel tokens
    forward, and backward costs twice the forward pass.
    """
    if hidden % heads:
        raise ValueError(f"hidden {hidden} not divisible by heads {heads}")
    sample_time = 3.0 * seq_len * token_time / prefill_parallelism
    return TransformerSpec(
        name=name, family="Transformer",
        variables=tuple(_transformer_variables(layers, hidden, vocab,
                                               seq_len)),
        sample_time=sample_time, batch_saturation=batch_saturation,
        layers=layers, hidden=hidden, heads=heads, seq_len=seq_len,
        vocab=vocab, token_time=token_time,
        width_saturation=width_saturation,
        prefill_parallelism=prefill_parallelism)


@register_model("TF-Tiny")
def tf_tiny() -> TransformerSpec:
    """A 4-layer toy for tests and CI smoke: ~1.3M params, ~5 MB."""
    return transformer("TF-Tiny", layers=4, hidden=128, heads=4,
                       vocab=2048, seq_len=256, token_time=2e-4)


@register_model("GPT-350M")
def gpt_350m() -> TransformerSpec:
    """GPT-3 Medium class: 24 layers, width 1024, 16 heads."""
    return transformer("GPT-350M", layers=24, hidden=1024, heads=16,
                       token_time=1.5e-3)


@register_model("GPT-1.3B")
def gpt_1_3b() -> TransformerSpec:
    """GPT-3 XL class: 24 layers, width 2048, 16 heads."""
    return transformer("GPT-1.3B", layers=24, hidden=2048, heads=16,
                       token_time=4e-3)
