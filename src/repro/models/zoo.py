"""The six benchmark models of Table 2, with faithful inventories.

Each builder returns a :class:`ModelSpec` whose variable count matches
Table 2 exactly and whose total size matches the paper's reported
model size (the largest dense weight is calibrated to absorb
implementation differences between the paper's model definitions and
the textbook architectures).

Table 2 reference:

| model        | size (MB) | #vars | sample time (ms) |
|--------------|-----------|-------|------------------|
| AlexNet      | 176.42    | 16    | 7.61             |
| Inception-v3 | 92.90     | 196   | 68.32            |
| VGGNet-16    | 512.32    | 32    | 30.92            |
| LSTM         | 35.93     | 14    | 33.33            |
| GRU          | 27.92     | 11    | 30.44            |
| FCN-5        | 204.47    | 10    | 4.88             |
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .spec import MB, ModelSpec, VariableSpec, _conv, _dense, calibrate

_BUILDERS: Dict[str, Callable[[], ModelSpec]] = {}


def register_model(name: str) -> Callable:
    """Decorator: add a zero-argument spec builder to the registry.

    ``model_names()``/``get_model()``/``all_models()`` pick up every
    registered builder, so new model families (the transformers in
    :mod:`repro.models.transformer`, for one) join the zoo without a
    hand-maintained list.  Names must be unique.
    """
    def decorate(builder: Callable[[], ModelSpec]) -> Callable[[], ModelSpec]:
        if name in _BUILDERS:
            raise ValueError(f"model {name!r} registered twice")
        _BUILDERS[name] = builder
        return builder
    return decorate


@register_model("AlexNet")
def alexnet() -> ModelSpec:
    """AlexNet [24]: 5 conv + 3 FC layers, 16 variables, 176.42 MB."""
    variables: List[VariableSpec] = []
    variables += _conv("conv1", 11, 11, 3, 64)
    variables += _conv("conv2", 5, 5, 64, 192)
    variables += _conv("conv3", 3, 3, 192, 384)
    variables += _conv("conv4", 3, 3, 384, 256)
    variables += _conv("conv5", 3, 3, 256, 256)
    variables += _dense("fc6", 9216, 4096)
    variables += _dense("fc7", 4096, 4096)
    variables += _dense("fc8", 4096, 1000)
    target = int(176.42 * MB)
    variables = calibrate(variables, target, adjust="fc6/weight")
    return ModelSpec(name="AlexNet", family="CNN", variables=tuple(variables),
                     sample_time=7.61e-3, batch_saturation=8,
                     paper_model_bytes=target)


@register_model("VGGNet-16")
def vggnet16() -> ModelSpec:
    """VGGNet-16 [29]: 13 conv + 3 FC layers, 32 variables, 512.32 MB."""
    variables: List[VariableSpec] = []
    channels = [(3, 64), (64, 64), (64, 128), (128, 128), (128, 256),
                (256, 256), (256, 256), (256, 512), (512, 512), (512, 512),
                (512, 512), (512, 512), (512, 512)]
    for i, (cin, cout) in enumerate(channels, start=1):
        variables += _conv(f"conv{i}", 3, 3, cin, cout)
    variables += _dense("fc14", 25088, 4096)
    variables += _dense("fc15", 4096, 4096)
    variables += _dense("fc16", 4096, 1000)
    target = int(512.32 * MB)
    variables = calibrate(variables, target, adjust="fc14/weight")
    return ModelSpec(name="VGGNet-16", family="CNN",
                     variables=tuple(variables), sample_time=30.92e-3,
                     batch_saturation=4, paper_model_bytes=target)


@register_model("Inception-v3")
def inception_v3() -> ModelSpec:
    """Inception-v3 [31]: 98 conv/dense layers -> 196 variables, 92.90 MB.

    The inventory follows the real architecture's structure — a conv
    stem, three groups of Inception modules with 1x1/3x3/5x5(double-3x3)
    branches, and the logits layer — producing the paper's
    many-small-tensors profile (Figure 7's observation that Inception
    has 196 variables in under 100 MB).
    """
    variables: List[VariableSpec] = []
    # Stem: six convolutions.
    stem = [(3, 3, 3, 32), (3, 3, 32, 32), (3, 3, 32, 64),
            (1, 1, 64, 80), (3, 3, 80, 192), (3, 3, 192, 288)]
    for i, (kh, kw, cin, cout) in enumerate(stem, start=1):
        variables += _conv(f"stem{i}", kh, kw, cin, cout)
    layer_id = 0

    def module(cin: int, branches: List[List[tuple]]) -> None:
        nonlocal layer_id
        for branch in branches:
            previous = cin
            for (kh, kw, cout) in branch:
                layer_id += 1
                variables.extend(
                    _conv(f"mixed{layer_id}", kh, kw, previous, cout))
                previous = cout

    for _ in range(3):  # Inception-A: 1x1 / 5x5 / double-3x3 / pool-proj
        module(288, [[(1, 1, 64)],
                     [(1, 1, 48), (5, 5, 64)],
                     [(1, 1, 64), (3, 3, 96), (3, 3, 96)],
                     [(1, 1, 64)]])
    # Reduction-A.
    module(288, [[(3, 3, 384)], [(1, 1, 64), (3, 3, 96), (3, 3, 96)]])
    for _ in range(4):  # Inception-B: factorized 7x7 branches
        module(768, [[(1, 1, 192)],
                     [(1, 1, 128), (1, 7, 128), (7, 1, 192)],
                     [(1, 1, 128), (7, 1, 128), (1, 7, 128),
                      (7, 1, 128), (1, 7, 192)],
                     [(1, 1, 192)]])
    # Reduction-B.
    module(768, [[(1, 1, 192), (3, 3, 320)],
                 [(1, 1, 192), (1, 7, 192), (7, 1, 192), (3, 3, 192)]])
    for _ in range(2):  # Inception-C: split 3x3 branches (1x3 + 3x1)
        module(1280, [[(1, 1, 320)],
                      [(1, 1, 384), (1, 3, 384), (3, 1, 384)],
                      [(1, 1, 448), (3, 3, 384), (1, 3, 384), (3, 1, 384)],
                      [(1, 1, 192)]])
    # Auxiliary classifier head.
    variables += _conv("aux/conv", 5, 5, 128, 768)
    variables += _dense("aux/logits", 768, 1000)
    variables += _dense("logits", 2048, 1000)
    target = int(92.90 * MB)
    variables = calibrate(list(variables), target, adjust="logits/weight")
    return ModelSpec(name="Inception-v3", family="CNN",
                     variables=tuple(variables), sample_time=68.32e-3,
                     batch_saturation=13, paper_model_bytes=target)


@register_model("LSTM")
def lstm() -> ModelSpec:
    """LSTM LM, hidden 1024, step 80 — 14 variables, 35.93 MB.

    Gate weights are per-gate matrices (the cuDNN-style layout), which
    spreads the model across parameter-server shards the way the
    paper's >7x LSTM scalability implies.
    """
    hidden = 1024
    variables: List[VariableSpec] = [
        VariableSpec("embedding", (512, hidden)),
    ]
    for gate in ("i", "f", "o", "g"):
        variables.append(VariableSpec(f"lstm/kernel_{gate}",
                                      (2 * hidden, hidden)))
    variables += [
        VariableSpec("lstm/bias", (4 * hidden,)),
        VariableSpec("peephole/i", (hidden,)),
        VariableSpec("peephole/f", (hidden,)),
        VariableSpec("peephole/o", (hidden,)),
        VariableSpec("initial_c", (hidden,)),
    ]
    variables += _dense("projection", hidden, 512)
    variables += _dense("softmax", 512, 1024)
    target = int(35.93 * MB)
    variables = calibrate(variables, target, adjust="lstm/kernel_g")
    return ModelSpec(name="LSTM", family="RNN", variables=tuple(variables),
                     sample_time=33.33e-3, batch_saturation=18,
                     paper_model_bytes=target)


@register_model("GRU")
def gru() -> ModelSpec:
    """GRU LM, hidden 1024, step 80 — 11 variables, 27.92 MB."""
    hidden = 1024
    variables: List[VariableSpec] = [
        VariableSpec("embedding", (512, hidden)),
        # Per-gate matrices: reset, update, candidate.
        VariableSpec("gru/kernel_r", (2 * hidden, hidden)),
        VariableSpec("gru/kernel_u", (2 * hidden, hidden)),
        VariableSpec("gru/kernel_c", (2 * hidden, hidden)),
        VariableSpec("gru/bias", (3 * hidden,)),
        VariableSpec("initial_state", (hidden,)),
        VariableSpec("norm/gain", (hidden,)),
    ]
    variables += _dense("projection", hidden, 288)
    variables += _dense("softmax", 1024, 1024)
    target = int(27.92 * MB)
    variables = calibrate(variables, target, adjust="gru/kernel_c")
    return ModelSpec(name="GRU", family="RNN", variables=tuple(variables),
                     sample_time=30.44e-3, batch_saturation=18,
                     paper_model_bytes=target)


@register_model("FCN-5")
def fcn5() -> ModelSpec:
    """FCN-5: input, 3 hidden layers of 4096, output — 10 vars, 204.47 MB."""
    variables: List[VariableSpec] = []
    variables += _dense("input", 2344, 4096)
    variables += _dense("hidden1", 4096, 4096)
    variables += _dense("hidden2", 4096, 4096)
    variables += _dense("hidden3", 4096, 2048)
    variables += _dense("output", 2048, 1000)
    target = int(204.47 * MB)
    variables = calibrate(variables, target, adjust="input/weight")
    return ModelSpec(name="FCN-5", family="FCN", variables=tuple(variables),
                     sample_time=4.88e-3, batch_saturation=8,
                     paper_model_bytes=target)


def model_names() -> List[str]:
    """Every registered model, in registration order."""
    return list(_BUILDERS)


def get_model(name: str) -> ModelSpec:
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; have {model_names()}")


def all_models() -> Dict[str, ModelSpec]:
    return {name: build() for name, build in _BUILDERS.items()}


def paper_models() -> Dict[str, ModelSpec]:
    """The Table-2 benchmarks only — specs with a paper-reported size.

    The fidelity experiments (Table 2, Figure 7, the throughput
    figures) iterate this subset so workload families added later
    (e.g. transformers) don't change the paper-comparison numbers.
    """
    return {name: spec for name, spec in all_models().items()
            if spec.paper_model_bytes > 0}


def paper_model_names() -> List[str]:
    return list(paper_models())


# Registration side effect: importing the zoo brings the transformer
# family into the registry too, so `get_model("GPT-350M")` works no
# matter which module was imported first.
from . import transformer as _transformer  # noqa: E402,F401
