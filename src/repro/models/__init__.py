"""Benchmark model zoo (Table 2) and convergence applications (§5.2)."""

from .spec import MB, ModelSpec, VariableSpec, calibrate
from .transformer import TransformerSpec, transformer
from .zoo import (all_models, alexnet, fcn5, get_model, gru, inception_v3,
                  lstm, model_names, paper_model_names, paper_models,
                  register_model, vggnet16)

__all__ = [
    "MB", "ModelSpec", "TransformerSpec", "VariableSpec", "all_models",
    "alexnet", "calibrate", "fcn5", "get_model", "gru", "inception_v3",
    "lstm", "model_names", "paper_model_names", "paper_models",
    "register_model", "transformer", "vggnet16",
]
