"""Benchmark model zoo (Table 2) and convergence applications (§5.2)."""

from .spec import MB, ModelSpec, VariableSpec, calibrate
from .zoo import (all_models, alexnet, fcn5, get_model, gru, inception_v3,
                  lstm, model_names, vggnet16)

__all__ = [
    "MB", "ModelSpec", "VariableSpec", "all_models", "alexnet", "calibrate",
    "fcn5", "get_model", "gru", "inception_v3", "lstm", "model_names",
    "vggnet16",
]
