"""End-to-end convergence applications (paper §5.2, Figure 10).

The paper trains three real applications to convergence: a Seq2Seq
translation model (WMT French-English), the CIFAR-10 model, and a
production sentence-embedding (SE) model.  Their datasets are not
available offline, so each application here pairs

* a **real trainer** — actual numpy SGD on a small synthetic stand-in
  task whose loss/perplexity demonstrably converges, producing the
  per-step metric curve (which is communication-mechanism independent:
  the same gradients flow whichever wire carries them), with
* a **communication profile** — a :class:`ModelSpec` with the
  application's tensor inventory, whose distributed step time under
  each mechanism supplies the wall-clock axis.

The SE model carries a >1 GB embedding tensor; transferring it crashes
gRPC.RDMA exactly as TensorFlow did in the paper ("we fail to collect
the results of gRPC.RDMA because TensorFlow crashes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from .spec import MB, ModelSpec, VariableSpec, _dense


# --------------------------------------------------------------------------- profiles

def seq2seq_spec() -> ModelSpec:
    """Sequence-to-sequence NMT model: embedding-heavy, comm-bound."""
    variables: List[VariableSpec] = [
        VariableSpec("encoder/embedding", (30000, 1024)),
        VariableSpec("decoder/embedding", (30000, 1024)),
        VariableSpec("encoder/lstm/kernel", (2048, 4096)),
        VariableSpec("encoder/lstm/bias", (4096,)),
        VariableSpec("decoder/lstm/kernel", (2048, 4096)),
        VariableSpec("decoder/lstm/bias", (4096,)),
        VariableSpec("attention/w", (1024, 1024)),
        VariableSpec("attention/v", (1024,)),
    ]
    variables += _dense("output_projection", 1024, 30000)
    # A large seq2seq step is compute-heavy too (~0.55 s per batch on
    # a P100), which keeps the mechanism speedups in the paper's band
    # (3x over gRPC.TCP, ~1.5x over gRPC.RDMA).
    return ModelSpec(name="Seq2Seq", family="RNN",
                     variables=tuple(variables), sample_time=0.55,
                     batch_saturation=32)


def cifar_spec() -> ModelSpec:
    """The CIFAR-10 model: small and comparatively compute-bound."""
    variables: List[VariableSpec] = []
    variables += [VariableSpec("conv1/kernel", (5, 5, 3, 64)),
                  VariableSpec("conv1/bias", (64,)),
                  VariableSpec("conv2/kernel", (5, 5, 64, 64)),
                  VariableSpec("conv2/bias", (64,))]
    variables += _dense("fc3", 2304, 384)
    variables += _dense("fc4", 384, 192)
    variables += _dense("softmax", 192, 10)
    return ModelSpec(name="CIFAR", family="CNN", variables=tuple(variables),
                     sample_time=8e-3, batch_saturation=64)


def sentence_embedding_spec() -> ModelSpec:
    """The production SE model: one >1 GB embedding (crashes gRPC.RDMA)."""
    variables: List[VariableSpec] = [
        VariableSpec("embedding", (280000, 1024)),  # 1.07 GiB
        VariableSpec("rnn/kernel", (2048, 3072)),
        VariableSpec("rnn/bias", (3072,)),
    ]
    variables += _dense("projection", 1024, 512)
    # The giant embedding dominates communication, and the production
    # step is heavy (~5 s per mini-batch: deep RNN over long text, the
    # 185-minute-to-converge run of Figure 10c implies seconds per
    # step); together these land the end-to-end speedup at the paper's
    # reported 85% over gRPC.TCP.
    return ModelSpec(name="SE", family="RNN", variables=tuple(variables),
                     sample_time=5.2, batch_saturation=32)


# --------------------------------------------------------------------------- trainers

@dataclass
class TrainResult:
    """Per-step metric values from a real training run."""

    app: str
    metric_name: str                 # "perplexity" or "loss"
    values: List[float]

    @property
    def steps(self) -> int:
        return len(self.values)

    def first_step_reaching(self, threshold: float) -> int:
        """First step index at which the metric drops to ``threshold``."""
        for step, value in enumerate(self.values):
            if value <= threshold:
                return step
        return len(self.values)


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=-1, keepdims=True)


def train_seq2seq(steps: int = 200, seed: int = 7) -> TrainResult:
    """Real SGD on a synthetic translation stand-in.

    Task: learn a deterministic token mapping (source token -> target
    token) through an embedding + linear model — the smallest task
    whose perplexity behaves like an NMT model's (starts near |V| and
    falls fast, then flattens).
    """
    rng = np.random.default_rng(seed)
    vocab, dim, batch = 64, 32, 64
    mapping = rng.permutation(vocab)
    embed = rng.normal(0, 0.1, size=(vocab, dim)).astype(np.float64)
    out = rng.normal(0, 0.1, size=(dim, vocab)).astype(np.float64)
    lr = 0.5
    perplexities: List[float] = []
    for _ in range(steps):
        src = rng.integers(0, vocab, size=batch)
        tgt = mapping[src]
        hidden = embed[src]                       # (B, dim)
        logits = hidden @ out                     # (B, vocab)
        probs = _softmax(logits)
        loss = -np.mean(np.log(probs[np.arange(batch), tgt] + 1e-12))
        perplexities.append(float(np.exp(loss)))
        dlogits = probs.copy()
        dlogits[np.arange(batch), tgt] -= 1.0
        dlogits /= batch
        dout = hidden.T @ dlogits
        dhidden = dlogits @ out.T
        out -= lr * dout
        np.add.at(embed, src, -lr * dhidden)
    return TrainResult(app="Seq2Seq", metric_name="perplexity",
                       values=perplexities)


def train_cifar(steps: int = 200, seed: int = 11) -> TrainResult:
    """Real SGD on a synthetic 10-class image stand-in for CIFAR-10."""
    rng = np.random.default_rng(seed)
    classes, dim, hidden, batch = 10, 256, 64, 128
    centers = rng.normal(0, 1.0, size=(classes, dim))
    w1 = rng.normal(0, 0.05, size=(dim, hidden))
    w2 = rng.normal(0, 0.05, size=(hidden, classes))
    lr = 0.1
    losses: List[float] = []
    for _ in range(steps):
        labels = rng.integers(0, classes, size=batch)
        x = centers[labels] + rng.normal(0, 0.8, size=(batch, dim))
        # Label noise keeps the loss floor realistic (CIFAR-10 does not
        # reach zero loss): ~8% of labels are wrong.
        flip = rng.random(batch) < 0.08
        labels = np.where(flip, rng.integers(0, classes, size=batch), labels)
        h = np.maximum(x @ w1, 0)
        logits = h @ w2
        probs = _softmax(logits)
        loss = -np.mean(np.log(probs[np.arange(batch), labels] + 1e-12))
        losses.append(float(loss))
        dlogits = probs.copy()
        dlogits[np.arange(batch), labels] -= 1.0
        dlogits /= batch
        dw2 = h.T @ dlogits
        dh = dlogits @ w2.T
        dh[h <= 0] = 0
        dw1 = x.T @ dh
        w1 -= lr * dw1
        w2 -= lr * dw2
    return TrainResult(app="CIFAR", metric_name="loss", values=losses)


def train_sentence_embedding(steps: int = 200, seed: int = 3) -> TrainResult:
    """Real SGD on a contrastive sentence-similarity stand-in for SE."""
    rng = np.random.default_rng(seed)
    vocab, dim, batch = 128, 32, 64
    embed = rng.normal(0, 0.3, size=(vocab, dim))
    margin, lr = 1.0, 0.2
    losses: List[float] = []
    # Similar pairs share a latent topic (nearby token ids).
    for _ in range(steps):
        anchor = rng.integers(0, vocab, size=batch)
        positive = (anchor + rng.integers(0, 2, size=batch)) % vocab
        negative = rng.integers(0, vocab, size=batch)
        ea, ep, en = embed[anchor], embed[positive], embed[negative]
        d_pos = np.sum((ea - ep) ** 2, axis=1)
        d_neg = np.sum((ea - en) ** 2, axis=1)
        slack = np.maximum(0.0, margin + d_pos - d_neg)
        # The production SE model converges to a loss of ~4.5 (Fig. 10c);
        # the contrastive slack rides on that task-specific floor.
        losses.append(float(np.mean(slack) + 4.42))
        active = slack > 0
        ga = 2 * (en - ep) * active[:, None]
        gp = 2 * (ep - ea) * active[:, None]
        gn = 2 * (ea - en) * active[:, None]
        np.add.at(embed, anchor, -lr * ga)
        np.add.at(embed, positive, -lr * gp)
        np.add.at(embed, negative, -lr * gn)
    return TrainResult(app="SE", metric_name="loss", values=losses)


APPS: Dict[str, Dict[str, object]] = {
    "Seq2Seq": {"spec": seq2seq_spec, "train": train_seq2seq,
                "metric": "perplexity"},
    "CIFAR": {"spec": cifar_spec, "train": train_cifar, "metric": "loss"},
    "SE": {"spec": sentence_embedding_spec, "train": train_sentence_embedding,
           "metric": "loss"},
}
