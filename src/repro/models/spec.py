"""Benchmark model specifications (paper Table 2).

A :class:`ModelSpec` lists a benchmark's variable tensors (name,
shape, dtype) and its single-server per-sample computation time.  The
variable inventory drives everything the evaluation measures: model
size = bytes moved worker<->PS per mini-batch, tensor-size
distribution (Figure 7), and compute/communication ratio.

Shapes are realistic per architecture; because the paper reports exact
totals (e.g. AlexNet 176.42 MB with 16 variables), each spec's largest
fully-connected weight is auto-adjusted so the total matches the
paper's model size to within a fraction of a percent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..graph.dtypes import DType
from ..graph.shapes import Shape

MB = 1024 * 1024


@dataclass(frozen=True)
class VariableSpec:
    """One trainable tensor of a benchmark model."""

    name: str
    shape: Tuple[int, ...]
    dtype: DType = DType.float32

    @property
    def num_elements(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    @property
    def nbytes(self) -> int:
        return self.num_elements * self.dtype.size


@dataclass(frozen=True)
class ModelSpec:
    """A deep-learning benchmark workload (one Table 2 row)."""

    name: str
    family: str                       # "CNN" | "RNN" | "FCN"
    variables: Tuple[VariableSpec, ...]
    #: average per-sample computation time, single server (Table 2, s)
    sample_time: float
    #: mini-batch size beyond which GPU compute time grows linearly;
    #: below it the GPU's parallelism absorbs the batch (§5.2)
    batch_saturation: int = 32
    #: model size the paper reports, for verification (bytes)
    paper_model_bytes: int = 0

    @property
    def model_bytes(self) -> int:
        return sum(v.nbytes for v in self.variables)

    @property
    def model_mb(self) -> float:
        return self.model_bytes / MB

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    def compute_time(self, batch_size: int) -> float:
        """Simulated local computation time for one mini-batch.

        Flat up to the saturation batch (massively parallel GPU),
        then linear — reproducing §5.2's observation that CNN step
        time is stable at small batches while Inception/LSTM/GRU
        become compute-dominated past batch 32.
        """
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        return self.sample_time * max(1.0, batch_size / self.batch_saturation)

    def tensor_sizes(self) -> List[int]:
        return [v.nbytes for v in self.variables]


def _conv(name: str, kh: int, kw: int, cin: int, cout: int,
          bias: bool = True) -> List[VariableSpec]:
    out = [VariableSpec(f"{name}/kernel", (kh, kw, cin, cout))]
    if bias:
        out.append(VariableSpec(f"{name}/bias", (cout,)))
    return out


def _dense(name: str, fan_in: int, fan_out: int,
           bias: bool = True) -> List[VariableSpec]:
    out = [VariableSpec(f"{name}/weight", (fan_in, fan_out))]
    if bias:
        out.append(VariableSpec(f"{name}/bias", (fan_out,)))
    return out


def calibrate(variables: Sequence[VariableSpec], target_bytes: int,
              adjust: str) -> Tuple[VariableSpec, ...]:
    """Resize variable ``adjust``'s first dimension so totals match.

    Keeps every other tensor untouched, so the size *distribution*
    stays architectural while the total matches Table 2 exactly enough
    (within one row of the adjusted matrix).
    """
    variables = list(variables)
    others = sum(v.nbytes for v in variables if v.name != adjust)
    index = next(i for i, v in enumerate(variables) if v.name == adjust)
    victim = variables[index]
    remaining = target_bytes - others
    if remaining <= 0:
        raise ValueError(f"target too small to fit {adjust}")
    row_bytes = victim.nbytes // victim.shape[0]
    new_first = max(1, round(remaining / row_bytes))
    variables[index] = VariableSpec(
        victim.name, (new_first,) + victim.shape[1:], victim.dtype)
    return tuple(variables)
