"""gRPC over RDMA: TensorFlow's verbs-under-gRPC baseline.

This is the "RPC implementation optimized for RDMA" the paper measures
against (the gRPC.RDMA curves).  It rides RDMA SEND/RECV verbs but
keeps the RPC abstraction's structural costs:

* messages are serialized, then **copied into a private registered
  staging buffer** on the sender (the NIC can only transmit from
  registered memory, and the RPC library cannot know the caller's
  buffer ahead of time);
* the receiver lands fragments in a **fixed-size ring buffer** per
  channel (FaRM-style, §2.3) and **copies each record out** to the
  application;
* messages larger than the ring are **fragmented**, each fragment
  carrying a real header for reassembly;
* credit-based flow control stops a sender from overrunning the ring;
* messages above ``rpc_max_message_size`` crash the call — faithfully
  reproducing TensorFlow's gRPC.RDMA failure at 1 GB (paper §5.1).
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional, Tuple

from ..simnet.costmodel import CostModel
from ..simnet.memory import Buffer
from ..simnet.simulator import Event, Simulator, Store
from ..simnet.topology import Endpoint, Host
from ..simnet.verbs import Opcode, WorkRequest
from .core import RpcEndpoint, RpcError, WireLink
from .framing import Fragment, HEADER_SIZE, Reassembler, fragment
from .ring_buffer import RingBuffer, RingBufferFull

_msg_ids = itertools.count(1)

#: per-record ring-buffer overhead (its 4-byte length prefix)
RECORD_OVERHEAD = 4


class CreditGate:
    """Sender-side byte credits mirroring the peer ring's free space.

    ``acquire`` blocks (as a process) until enough credits exist;
    ``release`` (invoked by the consumer) returns credits after a
    simulated credit-notification delay.
    """

    def __init__(self, sim: Simulator, capacity: int, return_latency: float) -> None:
        self.sim = sim
        self.capacity = capacity
        self.available = capacity
        self.return_latency = return_latency
        self._waiters: List[Tuple[int, Event]] = []

    def acquire(self, amount: int) -> Generator:
        if amount > self.capacity:
            raise RingBufferFull(
                f"fragment of {amount} bytes exceeds ring capacity {self.capacity}")
        if self.available >= amount and not self._waiters:
            self.available -= amount
            return
            yield  # pragma: no cover - makes this a generator
        event = self.sim.event()
        self._waiters.append((amount, event))
        yield event

    def release(self, amount: int) -> None:
        def credit_arrives() -> None:
            self.available += amount
            while self._waiters and self._waiters[0][0] <= self.available:
                need, event = self._waiters.pop(0)
                self.available -= need
                event.succeed()
        self.sim.call_after(self.return_latency, credit_arrives)


class _ConnectionSide:
    """Per-direction state: QP, staging buffers, recv slots, ring."""

    def __init__(self, host: Host, name: str) -> None:
        self.host = host
        self.sim = host.sim
        self.cost: CostModel = host.cost
        self.name = name
        nic = host.nic
        self.cq = nic.create_cq()
        self.qp = nic.create_qp(self.cq)
        ring_cap = self.cost.rpc_ring_buffer_size
        self.frag_body_max = max(4096, ring_cap // 4 - HEADER_SIZE)
        # Private registered staging area for outgoing fragments.  The
        # library registers it once at connection setup (not per call).
        self.staging: Buffer = host.allocate(
            self.frag_body_max + HEADER_SIZE, label=f"{name}-staging",
            dense=False)
        self.staging_mr = nic.register_memory(self.staging)
        # Receive ring (the in-library fixed buffer of §2.2).
        self.ring = RingBuffer(ring_cap)
        self.records: Store = Store(self.sim)  # record sizes, FIFO w/ ring
        # The recv slot is dense so concrete fragments round-trip exactly.
        self.recv_region: Buffer = host.allocate(
            self.frag_body_max + HEADER_SIZE, label=f"{name}-recvslot",
            dense=True)
        self.recv_mr = nic.register_memory(self.recv_region)
        self.credits: Optional[CreditGate] = None  # credits for *sending*
        self._recv_loop_started = False

    def start_recv_loop(self, peer: "_ConnectionSide") -> None:
        if self._recv_loop_started:
            return
        self._recv_loop_started = True
        self._peer = peer
        self._post_recv()
        self.sim.spawn(self._recv_loop(), name=f"{self.name}-recv")

    def _post_recv(self) -> None:
        self.qp.post_recv(WorkRequest(
            opcode=Opcode.RECV, size=self.recv_region.size,
            local_addr=self.recv_region.addr, lkey=self.recv_mr.lkey))

    def _recv_loop(self) -> Generator:
        try:
            yield from self._recv_loop_body()
        except Exception as exc:
            # Surface the failure to whoever is waiting for records
            # instead of deadlocking the whole endpoint.
            self.records.fail_all(exc)
            raise

    def _recv_loop_body(self) -> Generator:
        while True:
            yield self.cq.wait()
            for completion in self.cq.poll(max_entries=64):
                if completion.opcode is not Opcode.RECV:
                    continue
                if not completion.ok:
                    raise RpcError(f"recv failed: {completion.status}")
                raw_header = self.recv_region.read(0, HEADER_SIZE)
                frag = Fragment.parse_header(raw_header)
                if frag.header_says_concrete:
                    body = self.recv_region.read(HEADER_SIZE, frag.body_size)
                    frag.body = body
                    self.ring.push(raw_header + body)
                else:
                    # Virtual body: the ring record keeps only the header;
                    # byte occupancy is enforced by the peer's CreditGate.
                    self.ring.push(raw_header)
                self._post_recv()
                self.records.put(frag)


class GrpcRdmaLink(WireLink):
    """One side's WireLink over a connected pair of RDMA QPs."""

    def __init__(self, side: _ConnectionSide) -> None:
        self.side = side
        self.sim = side.sim
        self.cost = side.cost
        self.host = side.host
        self._reassembler = Reassembler()

    # -- sending -------------------------------------------------------------------

    def send(self, control: bytes, virtual_size: int) -> Generator:
        total = len(control) + virtual_size
        if total > self.cost.rpc_max_message_size:
            # TensorFlow's gRPC.RDMA crashes beyond 1 GB (paper §5.1).
            raise RpcError(
                f"gRPC.RDMA: message of {total} bytes exceeds the maximum "
                f"of {self.cost.rpc_max_message_size}; transfer aborted")
        msg_id = next(_msg_ids)
        fragments = fragment(msg_id, control, virtual_size,
                             self.side.frag_body_max)
        # The RPC library cannot transmit from the caller's buffer: it
        # copies the whole serialized message into registered staging.
        yield from self.host.cpu.run(self.cost.memcpy_time(total))
        assert self.side.credits is not None, "link not connected"
        for frag in fragments:
            # +RECORD_OVERHEAD: the ring stores a length prefix per
            # record; credits must cover it or a burst can overflow.
            yield from self.side.credits.acquire(
                frag.wire_size + RECORD_OVERHEAD)
            if frag.body is not None:
                self.side.qp.post_send(WorkRequest(
                    opcode=Opcode.SEND,
                    inline_data=frag.header_bytes() + frag.body))
            else:
                # Virtual fragment: header really lands via the staging
                # region's head window; the body moves as timing only.
                self.side.staging.write(frag.header_bytes())
                self.side.qp.post_send(WorkRequest(
                    opcode=Opcode.SEND, size=frag.wire_size,
                    local_addr=self.side.staging.addr,
                    lkey=self.side.staging_mr.lkey))
        # Completions are drained by the peer's recv loop; the sender
        # does not block on them (gRPC pipelines requests).

    # -- receiving ------------------------------------------------------------------

    def recv(self) -> Generator:
        while True:
            frag: Fragment = yield self.side.records.get()
            # Copy the record out of the ring into application memory —
            # the per-byte cost the paper's design eliminates.
            yield from self.host.cpu.run(
                self.cost.memcpy_time(frag.wire_size))
            record = self.side.ring.pop()
            if record is None:
                raise RpcError("ring/record stream out of sync")
            # Return ring space to the peer's sender.
            peer_credits = self.side._peer.credits
            assert peer_credits is not None
            peer_credits.release(frag.wire_size + RECORD_OVERHEAD)
            assembled = self._reassembler.add(frag)
            if assembled is not None:
                return assembled.control, assembled.virtual_size


class GrpcRdmaListener:
    """Registered in the cluster's service registry; accepts dials."""

    def __init__(self, host: Host, port: int) -> None:
        self.host = host
        self.port = port
        self.handlers: Dict[str, object] = {}
        self.endpoints: List[RpcEndpoint] = []


class GrpcRdmaServer:
    """Server facade: register handlers, accept RDMA RPC connections."""

    def __init__(self, host: Host, port: int, name: str = "") -> None:
        self.host = host
        self.name = name or f"grpc-rdma:{host.name}:{port}"
        self._listener = GrpcRdmaListener(host, port)
        key = Endpoint(host.name, port)
        registry = host.cluster.services
        if key in registry:
            raise RpcError(f"{key} already has a listener")
        registry[key] = self._listener

    def register(self, method: str, handler) -> None:
        self._listener.handlers[method] = handler
        for endpoint in self._listener.endpoints:
            endpoint.register(method, handler)

    @property
    def endpoints(self) -> List[RpcEndpoint]:
        return self._listener.endpoints


def connect_grpc_rdma(client_host: Host, server_endpoint: Endpoint,
                      name: str = "") -> RpcEndpoint:
    """Dial a :class:`GrpcRdmaServer`; returns a started client endpoint.

    Builds the QP pair, staging/ring resources on both sides, and wires
    credit gates (connection setup is off the measured critical path).
    """
    listener = client_host.cluster.services.get(server_endpoint)
    if not isinstance(listener, GrpcRdmaListener):
        raise RpcError(f"nothing listening for RDMA RPC on {server_endpoint}")
    server_host = listener.host
    tag = name or f"grpc-rdma:{client_host.name}->{server_endpoint}"
    client_side = _ConnectionSide(client_host, f"{tag}/client")
    server_side = _ConnectionSide(server_host, f"{tag}/server")
    client_side.qp.connect(server_side.qp)
    credit_latency = client_host.cost.rdma_send_time(16)
    client_side.credits = CreditGate(
        client_host.sim, server_side.ring.capacity, credit_latency)
    server_side.credits = CreditGate(
        server_host.sim, client_side.ring.capacity, credit_latency)
    client_side.start_recv_loop(peer=server_side)
    server_side.start_recv_loop(peer=client_side)

    server_ep = RpcEndpoint(server_host.sim, server_host.cost,
                            GrpcRdmaLink(server_side), name=f"{tag}/server")
    for method, handler in listener.handlers.items():
        server_ep.register(method, handler)
    server_ep.start()
    listener.endpoints.append(server_ep)

    client_ep = RpcEndpoint(client_host.sim, client_host.cost,
                            GrpcRdmaLink(client_side), name=f"{tag}/client")
    client_ep.start()
    return client_ep
