"""gRPC over TCP: the stock TensorFlow communication baseline.

The wire link sends each serialized message through the simulated
kernel TCP stack, paying: sender syscalls + kernel copy, per-segment
overhead, TCP wire time, receiver syscalls + kernel copy out of socket
buffers, and finally the RPC-library copy from its receive buffer into
the application buffer (the copy the paper's §2.2 explains cannot be
avoided without redesigning the abstraction).
"""

from __future__ import annotations

from typing import Generator, Tuple

from ..simnet.costmodel import CostModel
from ..simnet.tcp import Socket, TcpMessage
from ..simnet.topology import Endpoint, Host
from .core import RpcEndpoint, WireLink


class TcpWireLink(WireLink):
    """A WireLink over one simulated TCP connection."""

    def __init__(self, socket: Socket) -> None:
        self.socket = socket
        self.sim = socket.stack.sim
        self.cost = socket.stack.cost
        self.host = socket.stack.host

    def send(self, control: bytes, virtual_size: int) -> Generator:
        total = len(control) + virtual_size
        message = TcpMessage(size=total, meta=(control, virtual_size))
        yield from self.socket.send(message)

    def recv(self) -> Generator:
        message = yield from self.socket.recv()
        control, virtual_size = message.meta
        # The RPC library copies from its in-library receive buffer into
        # the application-visible message (the unavoidable extra copy).
        yield from self.host.cpu.run(self.cost.memcpy_time(message.size))
        return control, virtual_size


class GrpcTcpServer:
    """Listening side: accepts connections, one RpcEndpoint each."""

    def __init__(self, host: Host, port: int, name: str = "") -> None:
        self.host = host
        self.port = port
        self.name = name or f"grpc-tcp:{host.name}:{port}"
        self._listener = host.tcp.listen(port)
        self._handlers = {}
        self.endpoints = []
        host.sim.spawn(self._accept_loop(), name=f"{self.name}-accept")

    def register(self, method: str, handler) -> None:
        self._handlers[method] = handler
        for endpoint in self.endpoints:
            endpoint.register(method, handler)

    def _accept_loop(self) -> Generator:
        while True:
            socket = yield self._listener.accept()
            endpoint = RpcEndpoint(self.host.sim, self.host.cost,
                                   TcpWireLink(socket), name=self.name)
            for method, handler in self._handlers.items():
                endpoint.register(method, handler)
            endpoint.start()
            self.endpoints.append(endpoint)


def connect_grpc_tcp(client_host: Host, server_endpoint: Endpoint,
                     name: str = "") -> RpcEndpoint:
    """Dial a :class:`GrpcTcpServer`; returns a started client endpoint."""
    socket = client_host.tcp.connect(server_endpoint)
    endpoint = RpcEndpoint(
        client_host.sim, client_host.cost, TcpWireLink(socket),
        name=name or f"grpc-tcp-client:{client_host.name}->{server_endpoint}")
    endpoint.start()
    return endpoint
