"""A FaRM-style fixed ring buffer for the RPC receive path.

The paper's gRPC.RDMA baseline (and FaRM's messaging primitive, §2.3)
receives messages into a fixed circular in-library buffer per channel,
then copies each record out to the application buffer.  This module is
that circular buffer: variable-size records with a 4-byte length
prefix, a producer cursor and a consumer cursor, and explicit overflow
(producers must back off until the consumer frees space).

It stores real bytes so tests can verify exact data recovery across
wrap-around; virtual payloads are represented by zero-filled spans at
the transport layer.
"""

from __future__ import annotations

import struct
from typing import List, Optional


_LEN = struct.Struct("<I")


class RingBufferFull(RuntimeError):
    """Producer outran the consumer; caller must wait for credits."""


class RingBuffer:
    """Circular byte buffer of variable-length records."""

    def __init__(self, capacity: int) -> None:
        if capacity <= _LEN.size:
            raise ValueError("ring capacity too small for even one record")
        self.capacity = capacity
        self._data = bytearray(capacity)
        self._head = 0          # absolute write offset
        self._tail = 0          # absolute read offset
        self.records_written = 0
        self.records_read = 0

    # -- capacity accounting -----------------------------------------------------

    @property
    def used(self) -> int:
        return self._head - self._tail

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def fits(self, record_size: int) -> bool:
        return _LEN.size + record_size <= self.free

    def max_record_size(self) -> int:
        """Largest record that could ever fit (even in an empty ring)."""
        return self.capacity - _LEN.size

    # -- raw circular IO ----------------------------------------------------------

    def _write_at(self, pos: int, data: bytes) -> None:
        start = pos % self.capacity
        end = start + len(data)
        if end <= self.capacity:
            self._data[start:end] = data
        else:
            first = self.capacity - start
            self._data[start:] = data[:first]
            self._data[:end - self.capacity] = data[first:]

    def _read_at(self, pos: int, length: int) -> bytes:
        start = pos % self.capacity
        end = start + length
        if end <= self.capacity:
            return bytes(self._data[start:end])
        first = self.capacity - start
        return bytes(self._data[start:]) + bytes(self._data[:end - self.capacity])

    # -- record API ----------------------------------------------------------------

    def push(self, record: bytes) -> None:
        """Append one record; raises :class:`RingBufferFull` on overflow."""
        needed = _LEN.size + len(record)
        if len(record) > self.max_record_size():
            raise RingBufferFull(
                f"record of {len(record)} bytes can never fit in a "
                f"{self.capacity}-byte ring; fragment it first")
        if needed > self.free:
            raise RingBufferFull(
                f"ring full: need {needed}, have {self.free} free")
        self._write_at(self._head, _LEN.pack(len(record)))
        self._write_at(self._head + _LEN.size, record)
        self._head += needed
        self.records_written += 1

    def pop(self) -> Optional[bytes]:
        """Remove and return the oldest record, or None if empty."""
        if self.used == 0:
            return None
        (length,) = _LEN.unpack(self._read_at(self._tail, _LEN.size))
        record = self._read_at(self._tail + _LEN.size, length)
        self._tail += _LEN.size + length
        self.records_read += 1
        return record

    def peek(self) -> Optional[bytes]:
        """Return the oldest record without consuming it."""
        if self.used == 0:
            return None
        (length,) = _LEN.unpack(self._read_at(self._tail, _LEN.size))
        return self._read_at(self._tail + _LEN.size, length)

    def drain(self) -> List[bytes]:
        """Pop every queued record."""
        out: List[bytes] = []
        while True:
            record = self.pop()
            if record is None:
                return out
            out.append(record)
