"""The RPC substrate: the abstraction the paper argues against.

Implements a gRPC-like framework — real serialization, framing with
fragmentation/reassembly, FaRM-style ring-buffer receive paths — over
two transports:

* :mod:`transport_tcp` — gRPC over the simulated kernel TCP stack
  (the ``gRPC.TCP`` baseline);
* :mod:`transport_rdma` — gRPC over RDMA SEND/RECV verbs with private
  message buffers (the ``gRPC.RDMA`` baseline, as in TensorFlow r1.0+).
"""

from .core import Handler, RpcEndpoint, RpcError, WireLink, check_reply
from .framing import (AssembledMessage, Fragment, FramingError, HEADER_SIZE,
                      Reassembler, fragment)
from .ring_buffer import RingBuffer, RingBufferFull
from .serialization import (Message, Payload, SerializationError, decode,
                            encode)
from .transport_rdma import (CreditGate, GrpcRdmaServer, connect_grpc_rdma)
from .transport_tcp import GrpcTcpServer, connect_grpc_tcp

__all__ = [
    "AssembledMessage", "CreditGate", "Fragment", "FramingError",
    "GrpcRdmaServer", "GrpcTcpServer", "HEADER_SIZE", "Handler", "Message",
    "Payload", "Reassembler", "RingBuffer", "RingBufferFull", "RpcEndpoint",
    "RpcError", "SerializationError", "WireLink", "check_reply",
    "connect_grpc_rdma", "connect_grpc_tcp", "decode", "encode", "fragment",
]
