"""Tag-length-value message serialization (a protobuf-like wire format).

The RPC baselines must pay a real serialization/deserialization cost
structure, so messages here are genuinely encoded to bytes and decoded
back.  Supported field values: ``int``, ``float``, ``str``, ``bytes``,
:class:`Payload`, and flat lists of those.

Large tensor payloads can be *virtual* — a :class:`Payload` that knows
its size but carries no content.  Virtual payloads encode as a size
marker so the control structure still round-trips exactly; the
simulated time cost of serializing them is charged by the transports
via the cost model (proportional to ``Message.wire_size``).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Iterator, List, Optional, Tuple


class SerializationError(ValueError):
    """Malformed wire bytes or unsupported field type."""


class Payload:
    """A byte payload that is either concrete or virtual (size-only)."""

    __slots__ = ("size", "data")

    def __init__(self, size: Optional[int] = None, data: Optional[bytes] = None) -> None:
        if data is not None:
            data = bytes(data)
            if size is not None and size != len(data):
                raise SerializationError("payload size does not match data")
            size = len(data)
        if size is None:
            raise SerializationError("payload needs a size or data")
        if size < 0:
            raise SerializationError("payload size must be non-negative")
        self.size = size
        self.data = data

    @property
    def is_virtual(self) -> bool:
        return self.data is None

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Payload) and self.size == other.size
                and self.data == other.data)

    def __repr__(self) -> str:
        kind = "virtual" if self.is_virtual else "concrete"
        return f"Payload({kind}, size={self.size})"


# Wire type tags.
_T_INT = 1
_T_FLOAT = 2
_T_STR = 3
_T_BYTES = 4
_T_PAYLOAD = 5          # concrete payload, bytes follow
_T_PAYLOAD_VIRTUAL = 6  # virtual payload, only a size follows
_T_LIST = 7

_MAGIC = b"RPCM"


class Message:
    """An ordered mapping of field names to values, wire-encodable."""

    def __init__(self, **fields: Any) -> None:
        self.fields: Dict[str, Any] = dict(fields)

    def __getitem__(self, name: str) -> Any:
        return self.fields[name]

    def __setitem__(self, name: str, value: Any) -> None:
        self.fields[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self.fields

    def get(self, name: str, default: Any = None) -> Any:
        return self.fields.get(name, default)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Message) and self.fields == other.fields

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"Message({inner})"

    @property
    def payload_bytes(self) -> int:
        """Total bytes held in Payload fields (concrete or virtual)."""
        total = 0
        for value in self.fields.values():
            if isinstance(value, Payload):
                total += value.size
            elif isinstance(value, list):
                total += sum(v.size for v in value if isinstance(v, Payload))
        return total

    @property
    def wire_size(self) -> int:
        """Exact encoded size in bytes, counting virtual payload sizes."""
        control, payload = encode(self)
        return len(control) + payload


def _encode_value(out: List[bytes], value: Any) -> int:
    """Append the encoding of one value; returns virtual byte count."""
    if isinstance(value, bool):
        raise SerializationError("bool fields are not supported")
    if isinstance(value, int):
        out.append(struct.pack("<Bq", _T_INT, value))
        return 0
    if isinstance(value, float):
        out.append(struct.pack("<Bd", _T_FLOAT, value))
        return 0
    if isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(struct.pack("<BI", _T_STR, len(raw)) + raw)
        return 0
    if isinstance(value, bytes):
        out.append(struct.pack("<BI", _T_BYTES, len(value)) + value)
        return 0
    if isinstance(value, Payload):
        if value.is_virtual:
            out.append(struct.pack("<BQ", _T_PAYLOAD_VIRTUAL, value.size))
            return value.size
        out.append(struct.pack("<BQ", _T_PAYLOAD, value.size) + value.data)
        return 0
    if isinstance(value, list):
        header_index = len(out)
        out.append(b"")  # placeholder
        virtual = 0
        for item in value:
            if isinstance(item, list):
                raise SerializationError("nested lists are not supported")
            virtual += _encode_value(out, item)
        out[header_index] = struct.pack("<BI", _T_LIST, len(value))
        return virtual
    raise SerializationError(f"unsupported field type: {type(value).__name__}")


def encode(message: Message) -> Tuple[bytes, int]:
    """Encode a message; returns (control_bytes, virtual_payload_bytes).

    ``control_bytes`` contains everything that physically exists,
    including concrete payload content; ``virtual_payload_bytes`` is
    the number of additional bytes the wire message *represents* for
    virtual payloads.
    """
    out: List[bytes] = [_MAGIC, struct.pack("<I", len(message.fields))]
    virtual = 0
    for name, value in message.fields.items():
        raw_name = name.encode("utf-8")
        out.append(struct.pack("<H", len(raw_name)) + raw_name)
        virtual += _encode_value(out, value)
    return b"".join(out), virtual


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise SerializationError("truncated message")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def unpack(self, fmt: str) -> tuple:
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))


def _decode_value(reader: _Reader) -> Any:
    (tag,) = reader.unpack("<B")
    if tag == _T_INT:
        return reader.unpack("<q")[0]
    if tag == _T_FLOAT:
        return reader.unpack("<d")[0]
    if tag == _T_STR:
        (length,) = reader.unpack("<I")
        return reader.take(length).decode("utf-8")
    if tag == _T_BYTES:
        (length,) = reader.unpack("<I")
        return reader.take(length)
    if tag == _T_PAYLOAD:
        (size,) = reader.unpack("<Q")
        return Payload(data=reader.take(size))
    if tag == _T_PAYLOAD_VIRTUAL:
        (size,) = reader.unpack("<Q")
        return Payload(size=size)
    if tag == _T_LIST:
        (count,) = reader.unpack("<I")
        return [_decode_value(reader) for _ in range(count)]
    raise SerializationError(f"unknown wire tag {tag}")


def decode(control: bytes) -> Message:
    """Decode control bytes produced by :func:`encode`."""
    reader = _Reader(control)
    if reader.take(4) != _MAGIC:
        raise SerializationError("bad magic: not an RPC message")
    (field_count,) = reader.unpack("<I")
    message = Message()
    for _ in range(field_count):
        (name_len,) = reader.unpack("<H")
        name = reader.take(name_len).decode("utf-8")
        message[name] = _decode_value(reader)
    if reader.pos != len(control):
        raise SerializationError(
            f"{len(control) - reader.pos} trailing bytes after message")
    return message
