"""RPC framework core: services, stubs, futures, dispatch.

This is the general-purpose abstraction the paper argues *against* for
tensor transfer: convenient (arbitrary message schemas, any time), but
structurally unable to deliver bytes directly into the consumer's
buffer.  Both baselines (gRPC over TCP, gRPC over RDMA) share this
core and differ only in their :class:`WireLink`.

A :class:`WireLink` is an ordered, bidirectional message pipe whose
``send``/``recv`` are simulation processes charging transport costs.
:class:`RpcEndpoint` layers request/response semantics on top:
serialization (charged via the cost model), method dispatch, and
request-id matching for futures.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from ..simnet.costmodel import CostModel
from ..simnet.simulator import Event, Simulator
from .serialization import Message, Payload, decode, encode


class RpcError(RuntimeError):
    """RPC-level failures (unknown method, oversized message, crash)."""


class WireLink:
    """Ordered bidirectional message link; transports implement this."""

    #: simulated cost model, set by implementations
    cost: CostModel
    sim: Simulator
    #: the host whose CPU engine performs this link's per-byte work
    host: object

    def send(self, control: bytes, virtual_size: int) -> Generator:
        """Process: transmit one wire message (control + virtual bytes)."""
        raise NotImplementedError

    def recv(self) -> Generator:
        """Process: receive one wire message -> (control, virtual_size)."""
        raise NotImplementedError


Handler = Callable[[Message], Any]  # returns Message or a generator of one


class RpcEndpoint:
    """One side of an RPC conversation over a :class:`WireLink`.

    Acts as both client (``call``) and server (``register``); gRPC
    channels are similarly bidirectional.  A dispatch loop must be
    started with :meth:`start` before any traffic flows.
    """

    _req_ids = itertools.count(1)

    def __init__(self, sim: Simulator, cost: CostModel, link: WireLink,
                 name: str = "rpc") -> None:
        self.sim = sim
        self.cost = cost
        self.link = link
        self.name = name
        self._handlers: Dict[str, Handler] = {}
        self._pending: Dict[int, Event] = {}
        self._started = False
        self.requests_served = 0

    # -- service side -------------------------------------------------------------

    def register(self, method: str, handler: Handler) -> None:
        """Register a handler; it may return a Message or be a generator
        process that yields simulated work before returning one."""
        if method.startswith("_"):
            raise RpcError("method names starting with '_' are reserved")
        self._handlers[method] = handler

    def start(self) -> None:
        """Spawn the receive/dispatch loop."""
        if self._started:
            return
        self._started = True
        self.sim.spawn(self._dispatch_loop(), name=f"{self.name}-dispatch")

    # -- client side ---------------------------------------------------------------

    def call(self, method: str, request: Optional[Message] = None) -> Event:
        """Invoke a remote method; returns a future for the reply Message."""
        if not self._started:
            raise RpcError("endpoint not started")
        request = request or Message()
        req_id = next(self._req_ids)
        future = self.sim.event()
        self._pending[req_id] = future
        sender = self.sim.spawn(
            self._send_one(method, req_id, kind=0, body=request),
            name=f"{self.name}-call-{method}")

        def on_sender_done(event) -> None:
            # A transport-level crash (e.g. the gRPC.RDMA 1 GB limit)
            # surfaces on the caller's future instead of deadlocking.
            if event._exception is not None and not future.triggered:
                self._pending.pop(req_id, None)
                future.fail(event._exception)
        sender.add_callback(on_sender_done)
        return future

    def call_proc(self, method: str, request: Optional[Message] = None) -> Generator:
        """Process form of :meth:`call`: ``reply = yield from ep.call_proc(...)``."""
        reply = yield self.call(method, request)
        return reply

    # -- internals -------------------------------------------------------------------

    def _send_one(self, method: str, req_id: int, kind: int,
                  body: Message) -> Generator:
        envelope = Message(_method=method, _id=req_id, _kind=kind,
                           **body.fields)
        control, virtual = encode(envelope)
        total = len(control) + virtual
        # Serialization is real CPU work proportional to message size,
        # performed on the host's bounded communication lanes.
        yield from self.link.host.cpu.run(self.cost.serialize_time(total))
        yield from self.link.send(control, virtual)

    def _dispatch_loop(self) -> Generator:
        while True:
            control, virtual = yield from self.link.recv()
            total = len(control) + virtual
            yield from self.link.host.cpu.run(
                self.cost.deserialize_time(total))
            envelope = decode(control)
            kind = envelope["_kind"]
            if kind == 0:
                self.sim.spawn(
                    self._serve(envelope),
                    name=f"{self.name}-serve-{envelope['_method']}")
            else:
                future = self._pending.pop(envelope["_id"], None)
                if future is not None:
                    body = Message(**{
                        k: v for k, v in envelope.fields.items()
                        if not k.startswith("_") or k == "_error"})
                    future.succeed(body)

    def _serve(self, envelope: Message) -> Generator:
        method = envelope["_method"]
        req_id = envelope["_id"]
        handler = self._handlers.get(method)
        body = Message(**{k: v for k, v in envelope.fields.items()
                          if not k.startswith("_")})
        yield (self.cost.rpc_dispatch)
        if handler is None:
            reply = Message(_error=f"unknown method {method!r}")
        else:
            result = handler(body)
            if hasattr(result, "send"):  # generator handler: simulated work
                result = yield from result
            reply = result if isinstance(result, Message) else Message()
        self.requests_served += 1
        try:
            yield from self._send_one(method, req_id, kind=1, body=reply)
        except RpcError as exc:
            # The reply could not be transmitted (e.g. it exceeds the
            # transport's maximum message size); surface an error
            # status to the caller like gRPC would.
            yield from self._send_one(method, req_id, kind=1,
                                      body=Message(_error=str(exc)))


def check_reply(reply: Message) -> Message:
    """Raise :class:`RpcError` if the reply carries an error marker."""
    error = reply.get("_error")
    if error is not None:
        raise RpcError(error)
    return reply
