"""Message fragmentation and reassembly.

The paper (§2.2) points out that an RPC library with fixed in-library
receive buffers must split messages larger than the buffer into
fragments, each carrying a header for reassembly, which costs an extra
copy at the sender.  This module implements exactly that: fragments
have a real 24-byte header and reassembly validates ordering and
completeness.

Fragment payloads may be virtual (size-only) just like message
payloads; reassembly then reconstructs a virtual body of the right
total size.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


# msg_id, frag_index, frag_count, body_size, concrete-flag
HEADER = struct.Struct("<QIIQB")
HEADER_SIZE = HEADER.size


class FramingError(ValueError):
    """Corrupt or out-of-protocol fragments."""


@dataclass
class Fragment:
    """One fragment: header fields plus a (possibly virtual) body."""

    msg_id: int
    index: int
    count: int
    body_size: int
    body: Optional[bytes] = None  # None = virtual
    #: set by :meth:`parse_header`: what the wire header claimed
    header_says_concrete: Optional[bool] = None

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE + self.body_size

    def header_bytes(self) -> bytes:
        return HEADER.pack(self.msg_id, self.index, self.count,
                           self.body_size, 1 if self.body is not None else 0)

    @classmethod
    def parse_header(cls, raw: bytes) -> "Fragment":
        """Parse header fields; body stays unset (caller attaches it if
        the concrete flag says real bytes follow)."""
        if len(raw) < HEADER_SIZE:
            raise FramingError("fragment shorter than its header")
        msg_id, index, count, body_size, concrete = HEADER.unpack(raw[:HEADER_SIZE])
        frag = cls(msg_id=msg_id, index=index, count=count, body_size=body_size)
        frag.header_says_concrete = bool(concrete)
        return frag


def fragment(msg_id: int, control: bytes, virtual_size: int,
             max_fragment_body: int) -> List[Fragment]:
    """Split a wire message into fragments of bounded body size.

    The message body is ``control`` (real bytes) followed by
    ``virtual_size`` virtual bytes.  Real and virtual spans are kept in
    separate fragments where they meet, so each fragment body is either
    fully concrete or fully virtual.
    """
    if max_fragment_body < 1:
        raise FramingError("max_fragment_body must be positive")
    spans: List[Tuple[int, Optional[bytes]]] = []
    for start in range(0, len(control), max_fragment_body):
        chunk = control[start:start + max_fragment_body]
        spans.append((len(chunk), chunk))
    remaining = virtual_size
    while remaining > 0:
        body = min(remaining, max_fragment_body)
        spans.append((body, None))
        remaining -= body
    if not spans:
        spans.append((0, b""))
    count = len(spans)
    return [Fragment(msg_id=msg_id, index=i, count=count,
                     body_size=size, body=body)
            for i, (size, body) in enumerate(spans)]


@dataclass
class AssembledMessage:
    """Reassembly result: real prefix plus trailing virtual byte count."""

    msg_id: int
    control: bytes
    virtual_size: int

    @property
    def total_size(self) -> int:
        return len(self.control) + self.virtual_size


class Reassembler:
    """Collects fragments (any arrival order) into whole messages."""

    def __init__(self) -> None:
        self._partial: Dict[int, Dict[int, Fragment]] = {}

    @property
    def partial_count(self) -> int:
        return len(self._partial)

    def add(self, frag: Fragment) -> Optional[AssembledMessage]:
        """Add a fragment; returns the message once complete."""
        if frag.index >= frag.count:
            raise FramingError(
                f"fragment index {frag.index} out of range 0..{frag.count - 1}")
        bucket = self._partial.setdefault(frag.msg_id, {})
        if frag.index in bucket:
            raise FramingError(
                f"duplicate fragment {frag.index} for message {frag.msg_id}")
        existing_count = next(iter(bucket.values())).count if bucket else frag.count
        if frag.count != existing_count:
            raise FramingError("inconsistent fragment count within a message")
        bucket[frag.index] = frag
        if len(bucket) < frag.count:
            return None
        del self._partial[frag.msg_id]
        ordered = [bucket[i] for i in range(frag.count)]
        control_parts: List[bytes] = []
        virtual = 0
        for piece in ordered:
            if piece.body is not None:
                if virtual:
                    raise FramingError(
                        "concrete fragment after virtual span; "
                        "senders keep real bytes first")
                control_parts.append(piece.body)
            else:
                virtual += piece.body_size
        return AssembledMessage(msg_id=frag.msg_id,
                                control=b"".join(control_parts),
                                virtual_size=virtual)
