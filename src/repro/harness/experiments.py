"""One entry point per table and figure of the paper's evaluation.

Each function regenerates the corresponding result on the simulated
cluster and returns an :class:`ExperimentResult`.  ``scale`` arguments
trade fidelity for runtime: the defaults are sized for the benchmark
suite; pass larger iteration counts / denser sweeps for a full run
(see EXPERIMENTS.md for the recorded full outputs).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..models.convergence import APPS
from ..models.spec import MB, ModelSpec, VariableSpec
from ..models.zoo import (get_model, paper_model_names, paper_models)
from ..distributed.runner import (BenchmarkResult, comm_config,
                                  run_training_benchmark)
from ..workloads.microbench import MICRO_MECHANISMS, sweep_microbench
from .series import ExperimentResult


KB = 1024
GB = 1024 * MB

#: batch sweep of Figure 9 (paper: 1..64, 128 for some)
FIGURE9_BATCHES = (1, 4, 16, 32, 64)
FIGURE9_MECHANISMS = ("gRPC.TCP", "gRPC.RDMA", "RDMA")
#: the three scalability workloads of Figure 11
FIGURE11_MODELS = ("LSTM", "Inception-v3", "VGGNet-16")
FIGURE8_SIZES = (64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB, 64 * MB,
                 256 * MB, 1 * GB)


def table2() -> ExperimentResult:
    """Table 2: benchmark characteristics.

    Restricted to the paper's six benchmarks: the zoo has since grown
    transformer specs (``repro.llm``), but Table 2 reproduces the
    paper and must not drift as the zoo does.
    """
    result = ExperimentResult(
        experiment="Table 2", title="Deep learning benchmarks",
        columns=["type", "benchmark", "model_size_mb", "variable_tensors",
                 "sample_time_ms"])
    for spec in paper_models().values():
        result.add_row(spec.family, spec.name, round(spec.model_mb, 2),
                       spec.num_variables, round(spec.sample_time * 1e3, 2))
    return result


def figure7() -> ExperimentResult:
    """Figure 7: CCDF of variable tensor sizes across all benchmarks."""
    sizes = sorted(size for spec in paper_models().values()
                   for size in spec.tensor_sizes())
    total_capacity = sum(sizes)
    result = ExperimentResult(
        experiment="Figure 7",
        title="Complementary CDF of variable tensor sizes",
        columns=["size_threshold_bytes", "fraction_of_tensors_larger",
                 "fraction_of_capacity_in_larger"])
    thresholds = [64, 1 * KB, 10 * KB, 100 * KB, 1 * MB, 10 * MB, 100 * MB]
    arr = np.asarray(sizes)
    for threshold in thresholds:
        larger = arr > threshold
        result.add_row(threshold, round(float(larger.mean()), 4),
                       round(float(arr[larger].sum() / total_capacity), 4))
    result.note(f"{len(sizes)} variable tensors across "
                f"{len(paper_models())} benchmarks")
    result.note("paper: >50% of tensors exceed 10KB; >20% exceed 1MB; "
                "tensors >1MB hold 96% of capacity")
    return result


def figure8(sizes: Sequence[int] = FIGURE8_SIZES,
            iterations: int = 4) -> ExperimentResult:
    """Figure 8: two-server micro-benchmark transfer speed."""
    result = ExperimentResult(
        experiment="Figure 8",
        title="Send/receive micro-benchmark between two servers",
        columns=["mechanism", "message_bytes", "transfer_ms",
                 "throughput_gbps"])
    sweep = sweep_microbench(sizes, iterations=iterations)
    for mechanism, points in sweep.items():
        for point in points:
            ms = (None if point.transfer_seconds is None
                  else round(point.transfer_seconds * 1e3, 4))
            gbps = (None if point.throughput_gbps is None
                    else round(point.throughput_gbps, 2))
            result.add_row(mechanism, point.message_bytes, ms, gbps)
            if point.transfer_seconds is None:
                result.note(f"{mechanism} @ {point.message_bytes}B crashed: "
                            f"{point.crash_reason[:90]}")
    result.note("paper: gRPC.RDMA has no 1GB point (TensorFlow crashes)")
    return result


def figure9(models: Optional[Sequence[str]] = None,
            batches: Sequence[int] = FIGURE9_BATCHES,
            mechanisms: Sequence[str] = FIGURE9_MECHANISMS,
            num_servers: int = 8, iterations: int = 3) -> ExperimentResult:
    """Figure 9: throughput vs mini-batch size, 6 benchmarks."""
    result = ExperimentResult(
        experiment="Figure 9",
        title=f"Training throughput vs mini-batch size ({num_servers} servers)",
        columns=["benchmark", "mechanism", "batch_size",
                 "step_time_ms", "minibatches_per_s"])
    for name in (models or paper_model_names()):
        spec = get_model(name)
        for mechanism in mechanisms:
            for batch in batches:
                bench = run_training_benchmark(
                    spec, mechanism, num_servers=num_servers,
                    batch_size=batch, iterations=iterations)
                if bench.crashed:
                    result.add_row(name, mechanism, batch, None, None)
                    result.note(f"{name}/{mechanism}/b{batch} crashed: "
                                f"{bench.crash_reason[:80]}")
                else:
                    result.add_row(name, mechanism, batch,
                                   round(bench.step_time * 1e3, 2),
                                   round(bench.throughput, 2))
    return result


def figure10(steps: int = 150, num_servers: int = 8,
             iterations: int = 3) -> ExperimentResult:
    """Figure 10: convergence vs wall-clock for the three applications.

    The per-step metric comes from real SGD (mechanism-independent);
    the wall-clock axis is each mechanism's measured distributed step
    time.  gRPC.RDMA on SE crashes, exactly as in the paper.
    """
    result = ExperimentResult(
        experiment="Figure 10",
        title="Convergence of real applications (metric vs minutes)",
        columns=["app", "mechanism", "step", "minutes", "metric"])
    mechanisms = ("gRPC.TCP", "gRPC.RDMA", "RDMA")
    for app_name, app in APPS.items():
        spec: ModelSpec = app["spec"]()
        curve = app["train"](steps=steps)
        step_times: Dict[str, Optional[float]] = {}
        for mechanism in mechanisms:
            bench = run_training_benchmark(
                spec, mechanism, num_servers=num_servers, batch_size=32,
                iterations=iterations)
            if bench.crashed:
                step_times[mechanism] = None
                result.note(f"{app_name}/{mechanism} crashed: "
                            f"{bench.crash_reason[:80]}")
            else:
                step_times[mechanism] = bench.step_time
        sample_every = max(1, steps // 15)
        for mechanism, step_time in step_times.items():
            if step_time is None:
                continue
            for step in range(0, steps, sample_every):
                minutes = step * step_time / 60.0
                result.add_row(app_name, mechanism, step,
                               round(minutes, 3),
                               round(curve.values[step], 3))
    result.note("metric: perplexity for Seq2Seq, loss otherwise; "
                "per-step values are identical across mechanisms")
    return result


def figure11(models: Sequence[str] = FIGURE11_MODELS,
             server_counts: Sequence[int] = (1, 2, 4, 8),
             batch_size: int = 32, iterations: int = 3) -> ExperimentResult:
    """Figure 11: scalability (throughput vs number of servers)."""
    result = ExperimentResult(
        experiment="Figure 11",
        title=f"Scalability at mini-batch size {batch_size}",
        columns=["benchmark", "mechanism", "servers",
                 "minibatches_per_s", "speedup_vs_local"])
    for name in models:
        spec = get_model(name)
        local = run_training_benchmark(spec, "Local", num_servers=1,
                                       batch_size=batch_size,
                                       iterations=iterations)
        result.add_row(name, "Local", 1, round(local.throughput, 2), 1.0)
        for mechanism in ("gRPC.TCP", "gRPC.RDMA", "RDMA"):
            for servers in server_counts:
                bench = run_training_benchmark(
                    spec, mechanism, num_servers=servers,
                    batch_size=batch_size, iterations=iterations)
                if bench.crashed:
                    result.add_row(name, mechanism, servers, None, None)
                    continue
                # Aggregate throughput: every worker completes
                # `throughput` minibatches/s.
                aggregate = bench.throughput * servers
                result.add_row(name, mechanism, servers,
                               round(aggregate, 2),
                               round(aggregate / local.throughput, 2))
    result.note("speedup_vs_local: aggregate minibatch rate over the "
                "single-server no-communication baseline")
    return result


def figure12(batch_size: int = 8, num_servers: int = 8,
             iterations: int = 3,
             models: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Figure 12: sender-side memory-copy overhead (zero-copy on/off)."""
    result = ExperimentResult(
        experiment="Figure 12",
        title=f"Memory copy overhead at mini-batch size {batch_size}",
        columns=["benchmark", "rdma_ms", "rdma_cp_ms",
                 "zero_copy_gain_pct"])
    for name in (models or paper_model_names()):
        spec = get_model(name)
        fast = run_training_benchmark(spec, "RDMA", num_servers=num_servers,
                                      batch_size=batch_size,
                                      iterations=iterations)
        slow = run_training_benchmark(spec, "RDMA.cp",
                                      num_servers=num_servers,
                                      batch_size=batch_size,
                                      iterations=iterations)
        gain = (slow.step_time - fast.step_time) / fast.step_time * 100
        result.add_row(name, round(fast.step_time * 1e3, 2),
                       round(slow.step_time * 1e3, 2), round(gain, 1))
    result.note("paper: zero-copy brings up to 21% at batch 8; gains are "
                "small for compute-bound or many-small-tensor models")
    return result


def table3(batch_size: int = 32, num_servers: int = 8,
           iterations: int = 3,
           models: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Table 3: GPUDirect RDMA average mini-batch times (8 workers)."""
    result = ExperimentResult(
        experiment="Table 3",
        title="GPUDirect RDMA: average minibatch time (ms), 8 workers",
        columns=["benchmark", "rdma_ms", "rdma_gdr_ms", "improvement_pct"])
    for name in (models or paper_model_names()):
        spec = get_model(name)
        base = run_training_benchmark(spec, "RDMA.gpu",
                                      num_servers=num_servers,
                                      batch_size=batch_size,
                                      iterations=iterations)
        gdr = run_training_benchmark(spec, "RDMA+GDR",
                                     num_servers=num_servers,
                                     batch_size=batch_size,
                                     iterations=iterations)
        improvement = (base.step_time - gdr.step_time) / gdr.step_time * 100
        result.add_row(name, round(base.step_time * 1e3, 1),
                       round(gdr.step_time * 1e3, 1), round(improvement, 1))
    result.note("paper row order: AlexNet 32%, FCN-5 54%, VGG 13%, "
                "Inception 0.4%, LSTM 24%, GRU 19%")
    return result


def extension_allreduce(models: Sequence[str] = ("FCN-5", "VGGNet-16"),
                        server_counts: Sequence[int] = (2, 4, 8),
                        mechanisms: Sequence[str] = ("RDMA", "gRPC.TCP"),
                        batch_size: int = 32,
                        iterations: int = 3) -> ExperimentResult:
    """Extension: PS vs collective allreduce scalability (figure-11 style).

    Runs the same models over the parameter-server graph and the
    worker-to-worker ring / halving-doubling collectives, on RDMA and
    TCP, recording both step times and per-worker wire volume.  The
    measured wire bytes come from the simnet transfer log and should
    match the analytic ``2·M·(N-1)/N`` ring prediction.
    """
    result = ExperimentResult(
        experiment="Extension: allreduce",
        title=f"PS vs collective allreduce at mini-batch {batch_size}",
        columns=["benchmark", "strategy", "mechanism", "servers",
                 "step_time_ms", "minibatches_per_s", "speedup_vs_local",
                 "wire_mb_per_worker", "predicted_wire_mb"])
    for name in models:
        spec = get_model(name)
        local = run_training_benchmark(spec, "Local", num_servers=1,
                                       batch_size=batch_size,
                                       iterations=iterations)
        result.add_row(name, "local", "Local", 1,
                       round(local.step_time * 1e3, 2),
                       round(local.throughput, 2), 1.0, 0.0, 0.0)
        for strategy in ("ps", "ring", "halving-doubling"):
            for mechanism in mechanisms:
                for servers in server_counts:
                    bench = run_training_benchmark(
                        spec, mechanism, num_servers=servers,
                        batch_size=batch_size, iterations=iterations,
                        strategy=strategy, collect_metrics=True)
                    if bench.crashed:
                        result.add_row(name, strategy, mechanism, servers,
                                       None, None, None, None, None)
                        result.note(f"{name}/{strategy}/{mechanism}/"
                                    f"n{servers} crashed: "
                                    f"{bench.crash_reason[:80]}")
                        continue
                    aggregate = bench.throughput * servers
                    measured = bench.wire_bytes_per_worker()
                    predicted = bench.predicted_wire_bytes
                    result.add_row(
                        name, strategy, mechanism, servers,
                        round(bench.step_time * 1e3, 2),
                        round(aggregate, 2),
                        round(aggregate / local.throughput, 2),
                        None if measured is None else round(measured / MB, 2),
                        None if predicted is None else round(predicted / MB, 2))
    result.note("ring per-worker wire bytes follow 2*M*(N-1)/N; the PS "
                "graph moves 2*M per worker regardless of N")
    return result


def stallreport(model: str = "FCN-5", num_servers: int = 2,
                batch_size: int = 32, iterations: int = 3,
                strategy: str = "ring",
                mechanism: str = "RDMA") -> ExperimentResult:
    """Observability demo: per-iteration stall attribution (Figure-8 style).

    Runs one traced benchmark and decomposes each iteration's wall time
    into the critical-path executor's op / poll / poll-wait / wire-wait
    components.  This is also the cheap single-configuration target the
    ``--trace-out``/``--metrics-json`` capture recipe (EXPERIMENTS.md)
    and the CI smoke step use: one run exercises the executor, transfer
    protocol, collective, verb, and CQ-poller layers.
    """
    result = ExperimentResult(
        experiment="Stall report",
        title=(f"Per-iteration stall attribution: {model}/{mechanism}/"
               f"{strategy}, {num_servers} servers, batch {batch_size}"),
        columns=["iteration", "measured_ms", "op_ms", "poll_ms",
                 "poll_wait_ms", "wire_wait_ms", "sched_ms",
                 "coverage_pct", "overlapped_serialization_ms"])
    bench = run_training_benchmark(
        get_model(model), mechanism, num_servers=num_servers,
        batch_size=batch_size, iterations=iterations, strategy=strategy,
        collect_trace=True)
    if bench.crashed:
        result.note(f"benchmark crashed: {bench.crash_reason[:120]}")
        return result
    report = bench.stall_report()
    for it in report.iterations:
        comp = it.components
        result.add_row(
            it.iteration, round(it.duration * 1e3, 3),
            round(comp.get("op", 0.0) * 1e3, 3),
            round(comp.get("poll", 0.0) * 1e3, 3),
            round(comp.get("poll_wait", 0.0) * 1e3, 3),
            round(comp.get("wire_wait", 0.0) * 1e3, 3),
            round(comp.get("sched", 0.0) * 1e3, 3),
            round(it.coverage * 100, 2),
            round(it.overlapped_serialization * 1e3, 3))
    fractions = report.fractions()
    if fractions:
        share = ", ".join(f"{cat}={frac * 100:.1f}%"
                          for cat, frac in sorted(fractions.items()))
        result.note(f"critical-path stall shares: {share}")
    counts = bench.tracer.categories()
    result.note("span categories: "
                + ", ".join(f"{cat}={n}"
                            for cat, n in sorted(counts.items())))
    return result


def overlap(models: Optional[Sequence[str]] = None, num_servers: int = 4,
            batch_size: int = 32, iterations: int = 3,
            fusion_mb: float = 8.0, algorithm: str = "ring",
            json_path: Optional[str] = None) -> ExperimentResult:
    """Extension: priority scheduling + backward-overlapped eager flush.

    Compares two allreduce schedules over the same fused-bucket plan:

    * **barrier** — every fusion bucket waits for the full backward
      pass before flushing, and the wire serves transfers FIFO (the
      classic contiguous-booking pipe).
    * **eager+priority** — buckets flush as soon as their gradients
      exist (overlapping communication with the rest of backward), the
      wire is a preemptive priority quantum server, and the executor
      issues urgent sends first.

    Reports step times, the speedup, and each schedule's overlap
    efficiency (fraction of wire time hidden under critical-path
    compute — the figure the scheduler exists to raise).  Pass
    ``json_path`` to also dump the rows as JSON (the CI smoke step
    commits this as ``BENCH_overlap.json``).
    """
    fusion_bytes = int(fusion_mb * MB)
    result = ExperimentResult(
        experiment="Extension: overlap",
        title=(f"Priority + eager-flush scheduling vs post-backward "
               f"barrier ({num_servers} servers, batch {batch_size}, "
               f"{algorithm}, fusion {fusion_mb:g}MB)"),
        columns=["benchmark", "barrier_ms", "eager_priority_ms",
                 "speedup_pct", "barrier_overlap_pct",
                 "eager_overlap_pct", "faster"])
    records: List[Dict[str, object]] = []
    for name in (models or paper_model_names()):
        spec = get_model(name)
        common = dict(num_servers=num_servers, batch_size=batch_size,
                      iterations=iterations, strategy=algorithm,
                      fusion_bytes=fusion_bytes, collect_trace=True)
        barrier = run_training_benchmark(spec, "RDMA", eager_flush=False,
                                         priority_sched=False, **common)
        eager = run_training_benchmark(spec, "RDMA", eager_flush=True,
                                       priority_sched=True, **common)
        if barrier.crashed or eager.crashed:
            reason = barrier.crash_reason or eager.crash_reason or "?"
            result.add_row(name, None, None, None, None, None, None)
            result.note(f"{name} crashed: {reason[:90]}")
            continue
        speedup = ((barrier.step_time - eager.step_time)
                   / barrier.step_time * 100)
        barrier_eff = barrier.stall_report().overlap_efficiency()
        eager_eff = eager.stall_report().overlap_efficiency()
        faster = eager.step_time < barrier.step_time
        result.add_row(
            name, round(barrier.step_time * 1e3, 3),
            round(eager.step_time * 1e3, 3), round(speedup, 2),
            None if barrier_eff is None else round(barrier_eff * 100, 1),
            None if eager_eff is None else round(eager_eff * 100, 1),
            faster)
        records.append({
            "benchmark": name,
            "barrier_step_ms": barrier.step_time * 1e3,
            "eager_priority_step_ms": eager.step_time * 1e3,
            "speedup_pct": speedup,
            "barrier_overlap_efficiency": barrier_eff,
            "eager_overlap_efficiency": eager_eff,
            "faster": faster,
        })
    faster_count = sum(1 for r in records if r["faster"])
    result.note(f"eager+priority faster on {faster_count}/{len(records)} "
                f"benchmarks")
    if json_path is not None:
        payload = {
            "experiment": "overlap",
            "config": {"num_servers": num_servers,
                       "batch_size": batch_size,
                       "iterations": iterations,
                       "fusion_mb": fusion_mb,
                       "algorithm": algorithm},
            "models": records,
            "faster_count": faster_count,
            "model_count": len(records),
        }
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    return result


def chaos(seeds: Sequence[int] = (0, 1, 2), model: str = "FCN-5",
          num_servers: int = 2, batch_size: int = 8, iterations: int = 3,
          fault_spec: str = ("drop:p=0.05;partial:p=0.04,frac=0.6;"
                             "blackhole:p=0.02;straggler:p=0.04,delay=8e-4"),
          json_path: Optional[str] = None) -> ExperimentResult:
    """Extension: chaos harness — seeded faults against the recovery layer.

    Runs one small training job fault-free, then once per seed with the
    same fault spec, and reports how each schedule was absorbed: faults
    injected by kind, retries/timeouts, QP re-establishments, TCP
    degradations, and the step-time slowdown the recovery cost.  Every
    row must end ``completed=True`` — a hang or crash here is a
    recovery-layer bug, and the CI smoke step fails on it.  Pass
    ``json_path`` to dump the rows (CI uploads it as the fault-report
    artifact).
    """
    spec = get_model(model)
    common = dict(num_servers=num_servers, batch_size=batch_size,
                  iterations=iterations)
    clean = run_training_benchmark(spec, "RDMA", **common)
    result = ExperimentResult(
        experiment="Extension: chaos",
        title=(f"Fault injection & recovery ({model}, {num_servers} "
               f"servers, spec '{fault_spec}')"),
        columns=["seed", "injected", "retries", "timeouts", "reconnects",
                 "tcp_fallbacks", "step_ms", "slowdown_pct", "completed"])
    records: List[Dict[str, object]] = []
    for seed in seeds:
        run = run_training_benchmark(spec, "RDMA", fault_spec=fault_spec,
                                     fault_seed=seed, **common)
        completed = not run.crashed
        if not completed:
            result.add_row(seed, None, None, None, None, None, None, None,
                           False)
            result.note(f"seed {seed} crashed: {run.crash_reason[:90]}")
            records.append({"seed": seed, "completed": False,
                            "crash_reason": run.crash_reason})
            continue
        faults = run.stats.faults or {}
        injected = faults.get("injected", {})
        recovery = faults.get("recovery") or {}
        slowdown = ((run.step_time - clean.step_time)
                    / clean.step_time * 100 if clean.step_time else 0.0)
        result.add_row(seed, injected.get("total", 0),
                       recovery.get("retries", 0),
                       recovery.get("timeouts", 0),
                       recovery.get("qp_reconnects", 0),
                       recovery.get("fallback_transfers", 0),
                       round(run.step_time * 1e3, 3), round(slowdown, 1),
                       True)
        records.append({
            "seed": seed, "completed": True,
            "injected": injected.get("total", 0),
            "injected_by_kind": injected.get("by_kind", {}),
            "recovery": recovery,
            "step_ms": run.step_time * 1e3,
            "slowdown_pct": slowdown,
        })
    survived = sum(1 for r in records if r["completed"])
    result.note(f"clean step {clean.step_time * 1e3:.3f} ms; "
                f"{survived}/{len(records)} seeds recovered to completion")
    if json_path is not None:
        payload = {
            "experiment": "chaos",
            "config": {"model": model, "num_servers": num_servers,
                       "batch_size": batch_size, "iterations": iterations,
                       "fault_spec": fault_spec, "seeds": list(seeds)},
            "clean_step_ms": clean.step_time * 1e3,
            "seeds": records,
            "recovered_count": survived,
            "seed_count": len(records),
        }
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    return result


def serving(model: str = "FCN-5", requests: int = 600, seed: int = 7,
            json_path: Optional[str] = None) -> ExperimentResult:
    """Extension: the inference serving plane, both headline effects.

    Four runs of the same deployment shape (taken from the serving
    config, so the CLI's ``--replicas``/``--qps``/``--max-batch``/
    ``--batch-timeout``/``--slo-ms`` flags steer this experiment):

    * **batch=1 vs batch=N** at fixed replicas — dynamic batching must
      raise sustained throughput (the batcher amortizes per-batch
      dispatch and rides the GPU's batch-saturation curve);
    * **FIFO vs priority wire scheduling** with bulk training traffic
      co-located on the replica links — tagging serving transfers at
      high WorkRequest priority must strictly lower inference p99.

    Every row also carries the weight-publication counters (publishes,
    zero-copy version swaps, torn serves — the last must be 0).  Pass
    ``json_path`` to dump the rows plus the two headline booleans (CI
    commits this as ``BENCH_serving.json`` and fails unless both hold).
    """
    from ..serving import run_serving_benchmark, serving_config
    cfg = serving_config()
    spec = get_model(model)
    common = dict(replicas=cfg.replicas, qps=cfg.qps,
                  batch_timeout=cfg.batch_timeout, slo_ms=cfg.slo_ms,
                  arrival=cfg.arrival, admission_limit=cfg.admission_limit,
                  broadcast=cfg.broadcast, requests=requests, seed=seed)
    result = ExperimentResult(
        experiment="Extension: serving",
        title=(f"Inference serving plane: {model}, {cfg.replicas} replicas, "
               f"{cfg.qps:g} qps offered, SLO {cfg.slo_ms:g} ms"),
        columns=["run", "max_batch", "priority_sched", "co_located_training",
                 "completed", "shed", "throughput_rps", "p50_ms", "p99_ms",
                 "slo_attainment", "mean_batch", "swaps", "torn"])
    runs = {
        "batch-1": run_serving_benchmark(
            spec, max_batch=1, priority_sched=True, **common),
        f"batch-{cfg.max_batch}": run_serving_benchmark(
            spec, max_batch=cfg.max_batch, priority_sched=True, **common),
        "fifo+training": run_serving_benchmark(
            spec, max_batch=cfg.max_batch, priority_sched=False,
            background_training=True, **common),
        "priority+training": run_serving_benchmark(
            spec, max_batch=cfg.max_batch, priority_sched=True,
            background_training=True, **common),
    }
    records: List[Dict[str, object]] = []
    for name, run in runs.items():
        result.add_row(
            name, run.max_batch, run.priority_sched,
            run.background_training, run.completed, run.shed,
            round(run.throughput_rps, 1),
            round(run.latency.get("p50", 0.0) * 1e3, 2),
            round(run.latency.get("p99", 0.0) * 1e3, 2),
            round(run.slo_attainment, 3),
            round(run.mean_batch_size, 2), run.swaps, run.torn_serves)
        records.append({"run": name, **run.to_dict()})
    batched = runs[f"batch-{cfg.max_batch}"]
    unbatched = runs["batch-1"]
    batching_wins = batched.throughput_rps > unbatched.throughput_rps
    fifo = runs["fifo+training"]
    prio = runs["priority+training"]
    priority_wins = (prio.latency.get("p99", 0.0)
                     < fifo.latency.get("p99", 0.0))
    torn_total = sum(run.torn_serves for run in runs.values())
    result.note(f"dynamic batching: {unbatched.throughput_rps:.0f} -> "
                f"{batched.throughput_rps:.0f} rps sustained "
                f"(batching_wins={batching_wins})")
    result.note(f"co-located training p99: FIFO "
                f"{fifo.latency.get('p99', 0.0) * 1e3:.2f} ms vs priority "
                f"{prio.latency.get('p99', 0.0) * 1e3:.2f} ms "
                f"(priority_wins={priority_wins})")
    result.note(f"torn serves across all runs: {torn_total} (must be 0)")
    if json_path is not None:
        payload = {
            "experiment": "serving",
            "config": {"model": model, "replicas": cfg.replicas,
                       "qps": cfg.qps, "max_batch": cfg.max_batch,
                       "batch_timeout": cfg.batch_timeout,
                       "slo_ms": cfg.slo_ms, "arrival": cfg.arrival,
                       "requests": requests, "seed": seed},
            "runs": records,
            "batching_wins": batching_wins,
            "priority_wins": priority_wins,
            "torn_serves_total": torn_total,
        }
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    return result


def _scale_spec(variable_mb: float = 24.0, num_variables: int = 2,
                sample_time: float = 0.004) -> ModelSpec:
    """A synthetic model sized for the scale sweep.

    Every variable exceeds the 16 MiB dense limit, so its replicas,
    gradients and fusion buffers all take virtual (size-only) backings:
    a 256-worker run costs simulator events, not numpy arithmetic or
    resident RAM, which is the regime the scale pass optimizes.
    """
    elements = int(variable_mb * MB) // 4
    variables = tuple(VariableSpec(f"synth/v{i}", (elements,))
                      for i in range(num_variables))
    total_mb = variable_mb * num_variables
    return ModelSpec(name=f"Synth-{total_mb:g}MB", family="FCN",
                     variables=variables, sample_time=sample_time)


def scale(worker_counts: Sequence[int] = (64,),
          hosts_per_rack: Optional[int] = None,
          oversubscription: Optional[float] = None, iterations: int = 2,
          batch_size: int = 1, fusion_mb: float = 64.0,
          max_flat_ring_workers: int = 128,
          collective: Optional[str] = None,
          json_path: Optional[str] = None) -> ExperimentResult:
    """Extension: multi-rack scale sweep on an oversubscribed fat tree.

    For each worker count, trains the synthetic large-tensor model on a
    fat-tree fabric (``hosts_per_rack`` wide racks, ``oversubscription``
    : 1 uplinks) twice: a flat ring allreduce — whose ``2·(N-1)`` step
    chain crosses the rack boundary on R edges — and the rack-aware
    hierarchical collective.  Reports step times, per-rack trunk
    traffic, uplink queueing, and the simulator's event throughput for
    each run.  Flat ring is skipped above ``max_flat_ring_workers``
    (its transfer count grows ~N× faster than the hierarchical one);
    the hierarchical rows keep going.  Pass ``json_path`` to dump the
    sweep (CI commits this as ``BENCH_scale.json`` and fails unless
    hierarchical beats flat ring wherever both ran).

    The hierarchy pays off from about four racks up: at two racks the
    inter-rack phase still moves ``M`` bytes per rack over the trunk
    with barely any pipeline depth, and the flat ring's longer chain
    keeps the uplink busier.  The canonical shapes here (8-wide racks,
    8+ racks, 4:1) are squarely in the winning regime.
    """
    import time as _time

    spec = _scale_spec()
    fusion_bytes = int(fusion_mb * MB)
    cfg = comm_config()
    # A fat-tree shape configured via --topology/--hosts-per-rack/
    # --oversubscription is authoritative; otherwise the sweep's
    # canonical 8-wide racks at 4:1.
    if hosts_per_rack is None:
        hosts_per_rack = (cfg.hosts_per_rack
                          if cfg.topology == "fat-tree"
                          and cfg.hosts_per_rack else 8)
    if oversubscription is None:
        oversubscription = (cfg.oversubscription
                            if cfg.topology == "fat-tree" else 4.0)
    treatment = collective or cfg.collective
    strategies = (("ring",) if treatment == "ring"
                  else ("ring", treatment))
    result = ExperimentResult(
        experiment="Extension: scale",
        title=(f"Fat-tree scale sweep: {spec.name}, racks of "
               f"{hosts_per_rack}, {oversubscription:g}:1 uplinks"),
        columns=["workers", "racks", "strategy", "step_ms", "uplink_mb",
                 "uplink_queue_ms", "max_uplink_util_pct", "sim_events",
                 "events_per_s", "wall_s"])
    sweep: List[Dict[str, object]] = []
    all_faster = True
    for workers in worker_counts:
        if workers % hosts_per_rack != 0:
            raise ValueError(f"{workers} workers do not tile into racks "
                             f"of {hosts_per_rack}")
        racks = workers // hosts_per_rack
        entry: Dict[str, object] = {"workers": workers, "racks": racks,
                                    "hosts_per_rack": hosts_per_rack,
                                    "oversubscription": oversubscription}
        for strategy in strategies:
            if strategy == "ring" and workers > max_flat_ring_workers:
                result.add_row(workers, racks, strategy, None, None, None,
                               None, None, None, None)
                entry["ring"] = None
                continue
            started = _time.time()
            bench = run_training_benchmark(
                spec, "RDMA", num_servers=workers, batch_size=batch_size,
                iterations=iterations, strategy=strategy,
                fusion_bytes=fusion_bytes, topology="fat-tree",
                hosts_per_rack=hosts_per_rack,
                oversubscription=oversubscription)
            wall = _time.time() - started
            if bench.crashed:
                raise RuntimeError(f"scale run {strategy}/n{workers} "
                                   f"crashed: {bench.crash_reason}")
            stats = bench.link_stats()
            uplink = {name: s for name, s in stats.items()
                      if name.startswith("tor")}
            uplink_bytes = sum(s["bytes_carried"] for s in uplink.values())
            queue_s = sum(s["queue_seconds"] for s in uplink.values())
            max_util = max((s["utilization"] for s in uplink.values()),
                           default=0.0)
            events = bench.sim_events
            record = {
                "step_ms": bench.step_time * 1e3,
                "uplink_mb": uplink_bytes / MB,
                "uplink_queue_ms": queue_s * 1e3,
                "max_uplink_utilization": max_util,
                "predicted_wire_mb": (bench.predicted_wire_bytes or 0) / MB,
                "sim_events": events,
                "events_per_s": events / wall if wall > 0 else 0.0,
                "wall_s": wall,
            }
            entry[strategy] = record
            result.add_row(workers, racks, strategy,
                           round(record["step_ms"], 3),
                           round(record["uplink_mb"], 1),
                           round(record["uplink_queue_ms"], 3),
                           round(max_util * 100, 1), events,
                           round(record["events_per_s"]), round(wall, 1))
        ring_rec = entry.get("ring")
        hier_rec = entry.get(treatment) if treatment != "ring" else None
        if ring_rec and hier_rec:
            speedup = ((ring_rec["step_ms"] - hier_rec["step_ms"])
                       / ring_rec["step_ms"] * 100)
            entry["hierarchical_speedup_pct"] = speedup
            all_faster = all_faster and speedup > 0
            result.note(f"n={workers}: {treatment} "
                        f"{hier_rec['step_ms']:.2f} ms vs ring "
                        f"{ring_rec['step_ms']:.2f} ms "
                        f"({speedup:+.1f}% faster)")
        sweep.append(entry)
    result.note(f"model {spec.name} ({spec.model_mb:.0f} MB in "
                f"{spec.num_variables} virtual tensors), batch "
                f"{batch_size}, {iterations} iterations")
    if json_path is not None:
        payload = {
            "experiment": "scale",
            "config": {"model": spec.name, "model_mb": spec.model_mb,
                       "hosts_per_rack": hosts_per_rack,
                       "oversubscription": oversubscription,
                       "batch_size": batch_size, "iterations": iterations,
                       "fusion_mb": fusion_mb,
                       "collective": treatment,
                       "worker_counts": list(worker_counts)},
            "sweep": sweep,
            "hierarchical_beats_ring": all_faster,
        }
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    return result


def netreduce(worker_counts: Sequence[int] = (8, 64, 128),
              hosts_per_rack: int = 8, oversubscription: float = 4.0,
              models: Sequence[str] = ("GRU", "Inception-v3", "FCN-5"),
              iterations: int = 2, batch_size: int = 1,
              fusion_mb: float = 64.0, max_flat_ring_workers: int = 8,
              json_path: Optional[str] = None) -> ExperimentResult:
    """Extension: in-network reduction vs host collectives, validated.

    For each model and worker count, trains on an oversubscribed fat
    tree under three allreduce backends: the flat ring
    (``2·M·(N-1)/N`` per-worker wire bytes), the rack-hierarchical
    host collective, and the switch-aggregated in-network path (``M``
    per worker: one write up to the ToR, one result back down).  Every
    run collects wire metrics, so each cell reports its measured
    per-worker egress against the analytic prediction — the in-network
    cells must land within 1% of ``M`` with zero chunks spilled to the
    host path.  The flat ring's transfer chain grows ~N× faster than
    the others', so it only runs up to ``max_flat_ring_workers``.

    The default model subset spans the zoo's size range (28 MB GRU,
    93 MB Inception-v3 with its 196-tensor fusion stress, 205 MB
    FCN-5).  The 512 MB VGGNet-16 is deliberately not in the default
    sweep: the *hierarchical comparator's* per-link metrics capture at
    128 workers scales with ``model_bytes x workers`` and costs tens
    of GB of resident memory; run it at 8-64 workers explicitly if
    wanted.  Pass ``json_path`` to dump the sweep — the file is
    rewritten after every completed cell, so a long sweep that dies
    keeps everything finished so far (CI commits the full run as
    ``BENCH_netreduce.json`` and the regression gate's ``netreduce``
    probe re-runs one cell against it).
    """
    import time as _time

    result = ExperimentResult(
        experiment="Extension: netreduce",
        title=(f"Switch-aggregated allreduce: racks of {hosts_per_rack}, "
               f"{oversubscription:g}:1 uplinks"),
        columns=["benchmark", "workers", "strategy", "step_ms",
                 "wire_mb_per_worker", "predicted_mb", "wire_err_pct",
                 "spilled", "degraded"])
    fusion_bytes = int(fusion_mb * MB)
    sweep: List[Dict[str, object]] = []
    wire_ok = True
    beats_at_scale = True

    def _dump() -> None:
        # Rewritten after every completed cell: a multi-hour sweep
        # that dies keeps every cell finished so far.
        if json_path is None:
            return
        payload = {
            "experiment": "netreduce",
            "config": {"models": list(models),
                       "worker_counts": list(worker_counts),
                       "hosts_per_rack": hosts_per_rack,
                       "oversubscription": oversubscription,
                       "batch_size": batch_size,
                       "iterations": iterations,
                       "fusion_mb": fusion_mb,
                       "max_flat_ring_workers": max_flat_ring_workers},
            "sweep": sweep,
            "innetwork_wire_within_1pct": wire_ok,
            "innetwork_beats_hierarchical_at_64plus": beats_at_scale,
        }
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    for name in models:
        spec = get_model(name)
        for workers in worker_counts:
            if workers % hosts_per_rack != 0:
                raise ValueError(f"{workers} workers do not tile into "
                                 f"racks of {hosts_per_rack}")
            entry: Dict[str, object] = {
                "model": name, "model_mb": spec.model_mb,
                "workers": workers, "racks": workers // hosts_per_rack,
            }
            strategies = (("hierarchical", "innetwork")
                          if workers > max_flat_ring_workers
                          else ("ring", "hierarchical", "innetwork"))
            for strategy in strategies:
                started = _time.time()
                bench = run_training_benchmark(
                    spec, "RDMA", num_servers=workers,
                    batch_size=batch_size, iterations=iterations,
                    strategy=strategy, fusion_bytes=fusion_bytes,
                    topology="fat-tree", hosts_per_rack=hosts_per_rack,
                    oversubscription=oversubscription,
                    collect_metrics=True)
                wall = _time.time() - started
                if bench.crashed:
                    raise RuntimeError(f"netreduce {name}/{strategy}/"
                                       f"n{workers} crashed: "
                                       f"{bench.crash_reason}")
                measured = bench.wire_bytes_per_worker() or 0.0
                predicted = bench.predicted_wire_bytes or 0.0
                err_pct = ((measured - predicted) / predicted * 100
                           if predicted else 0.0)
                spilled = degraded = 0
                if bench.innetwork is not None:
                    groups = [v for k, v in bench.innetwork.items()
                              if k != "plane"]
                    spilled = sum(g["chunks_spilled"] for g in groups)
                    degraded = sum(g["rounds_degraded"] for g in groups)
                record = {
                    "step_ms": bench.step_time * 1e3,
                    "wire_mb_per_worker": measured / MB,
                    "predicted_wire_mb": predicted / MB,
                    "wire_err_pct": err_pct,
                    "chunks_spilled": spilled,
                    "rounds_degraded": degraded,
                    "wall_s": wall,
                }
                entry[strategy] = record
                if strategy == "innetwork":
                    wire_ok = wire_ok and abs(err_pct) <= 1.0 \
                        and spilled == 0
                result.add_row(name, workers, strategy,
                               round(record["step_ms"], 3),
                               round(record["wire_mb_per_worker"], 1),
                               round(record["predicted_wire_mb"], 1),
                               round(err_pct, 3), spilled, degraded)
            hier = entry["hierarchical"]
            innet = entry["innetwork"]
            speedup = hier["step_ms"] / innet["step_ms"]
            entry["innetwork_speedup_vs_hierarchical"] = speedup
            if workers >= 64:
                beats_at_scale = beats_at_scale and speedup > 1.0
            result.note(f"{name} n={workers}: innetwork "
                        f"{innet['step_ms']:.2f} ms vs hierarchical "
                        f"{hier['step_ms']:.2f} ms ({speedup:.2f}x), "
                        f"wire {innet['wire_mb_per_worker']:.1f} MB/worker "
                        f"({innet['wire_err_pct']:+.3f}% vs M)")
            sweep.append(entry)
            _dump()
    result.note(f"in-network wire bytes within 1% of M everywhere: "
                f"{wire_ok}")
    result.note(f"in-network beats hierarchical at every n>=64 cell: "
                f"{beats_at_scale}")
    _dump()
    return result


def telemetry(model: str = "FCN-5", num_servers: int = 8,
              hosts_per_rack: int = 4, batch_size: int = 32,
              iterations: int = 3, trace_sample: float = 0.05,
              straggler_host: str = "server5",
              straggler_delay_ms: float = 2.0,
              json_path: Optional[str] = None) -> ExperimentResult:
    """Extension: fleet telemetry + online anomaly detection, validated.

    Three runs of one fat-tree hierarchical configuration:

    * **untraced** — the timing reference;
    * **traced (clean)** — full telemetry with a ``trace_sample``
      span-retention budget; must keep *bit-identical* iteration times
      to the untraced run (tracing is retrospective bookkeeping and
      never yields) while dropping most spans, and must raise **zero**
      incidents at default thresholds;
    * **traced + straggler** — the same run with a seeded straggler
      fault on one host; the MAD detector must name exactly that host,
      with the flight-recorder dump attached to the incident.

    Pass ``json_path`` to dump the validation (CI commits this as
    ``BENCH_telemetry.json``; the perf-regression gate appends its
    verdict history to the same file's ``trajectory`` list).
    """
    from dataclasses import replace as _dc_replace

    from ..distributed.runner import swap_comm_config

    spec = get_model(model)
    delay = straggler_delay_ms * 1e-3
    fault = (f"straggler:host={straggler_host},p=1.0,delay={delay}")
    common = dict(num_servers=num_servers, batch_size=batch_size,
                  iterations=iterations, strategy="hierarchical",
                  topology="fat-tree", hosts_per_rack=hosts_per_rack)
    result = ExperimentResult(
        experiment="Extension: telemetry",
        title=(f"Fleet telemetry: {model}, {num_servers} workers in racks "
               f"of {hosts_per_rack}, span sampling {trace_sample:g}"),
        columns=["run", "step_ms", "spans_kept", "spans_dropped",
                 "incidents", "detected"])
    untraced = run_training_benchmark(spec, "RDMA", **common)
    previous = swap_comm_config(
        _dc_replace(comm_config(), trace_sample=trace_sample))
    try:
        clean = run_training_benchmark(spec, "RDMA", collect_trace=True,
                                       **common)
        faulted = run_training_benchmark(spec, "RDMA", collect_trace=True,
                                         fault_spec=fault, fault_seed=1,
                                         **common)
    finally:
        swap_comm_config(previous)
    for run in (untraced, clean, faulted):
        if run.crashed:
            raise RuntimeError(f"telemetry run crashed: {run.crash_reason}")

    identical = (clean.stats.iteration_times
                 == untraced.stats.iteration_times)
    detected = sorted({i.subject for i in faulted.incidents
                       if i.kind == "straggler"})
    straggler_found = detected == [straggler_host]
    flight_attached = any(i.flight for i in faulted.incidents
                          if i.subject == straggler_host)

    result.add_row("untraced", round(untraced.step_time * 1e3, 3),
                   None, None, None, None)
    for label, run in (("traced-clean", clean),
                       ("traced-straggler", faulted)):
        result.add_row(label, round(run.step_time * 1e3, 3),
                       len(run.tracer.spans), run.tracer.dropped_spans,
                       len(run.incidents),
                       ",".join(sorted({i.subject
                                        for i in run.incidents})) or "-")
    result.note(f"traced iteration clocks identical to untraced: "
                f"{identical}")
    result.note(f"clean run incidents: {len(clean.incidents)} (must be 0)")
    result.note(f"straggler {straggler_host} detected: {straggler_found} "
                f"(flight dump attached: {flight_attached})")
    fleet = (clean.tracer.telemetry.sketches.get("verb_latency:fleet")
             if clean.tracer.telemetry is not None else None)
    if fleet is not None:
        summary = fleet.to_dict()
        result.note(f"fleet verb latency: mean "
                    f"{summary['mean'] * 1e6:.1f} us, p99 "
                    f"{summary.get('p99', 0.0) * 1e6:.1f} us over "
                    f"{summary['count']} verbs")
    if json_path is not None:
        def _run_record(label: str, run: BenchmarkResult) -> Dict[str, object]:
            record: Dict[str, object] = {
                "run": label,
                "step_ms": run.step_time * 1e3,
                "iteration_times": list(run.stats.iteration_times),
            }
            if run.tracer is not None:
                record["spans_kept"] = len(run.tracer.spans)
                record["spans_dropped"] = run.tracer.dropped_spans
                record["incidents"] = [i.to_dict() for i in run.incidents]
            return record

        payload = {
            "experiment": "telemetry",
            "config": {"model": model, "num_servers": num_servers,
                       "hosts_per_rack": hosts_per_rack,
                       "batch_size": batch_size, "iterations": iterations,
                       "trace_sample": trace_sample,
                       "straggler_host": straggler_host,
                       "straggler_delay_ms": straggler_delay_ms},
            "runs": [_run_record("untraced", untraced),
                     _run_record("traced-clean", clean),
                     _run_record("traced-straggler", faulted)],
            "traced_untraced_identical": identical,
            "fault_free_incidents": len(clean.incidents),
            "straggler_detected": straggler_found,
            "flight_dump_attached": flight_attached,
            "trajectory": [],
        }
        if os.path.exists(json_path):
            # Preserve the regression gate's verdict history.
            with open(json_path) as fh:
                old = json.load(fh)
            payload["trajectory"] = old.get("trajectory", [])
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    return result


def lossy(worker_counts: Sequence[int] = (8, 64, 128),
          loss_rates: Sequence[float] = (0.0, 1e-4, 1e-3),
          oversubscription: float = 4.0, model: str = "GRU",
          iterations: int = 2, batch_size: int = 1,
          max_flat_ring_workers: int = 8, max_retx_ratio: float = 3.0,
          fault_seed: int = 3,
          json_path: Optional[str] = None) -> ExperimentResult:
    """Extension: loss-tolerant transport on a PFC-less fabric, validated.

    For each worker count and allreduce backend (flat ring up to
    ``max_flat_ring_workers``, rack-hierarchical and switch-aggregated
    in-network on the oversubscribed fat tree), trains under a sweep of
    packet-loss probabilities.  The ``loss`` fault kind drops posted
    verbs ECN-coupled to trunk utilization; recovery answers with
    chunk-granular selective repeat, so the sweep validates the two
    transport invariants end to end:

    * **loss-free identity** — the ``p=0`` cell runs under both QP
      modes (connected RC and DCT-style shared endpoints) and their
      iteration clocks must be bit-identical;
    * **O(lost) recovery** — every lossy cell's ``ROLE_RETRANSMIT``
      bytes stay within ``max_retx_ratio`` of the injected-loss bytes
      (go-back-N would re-send whole transfers and blow the bound), and
      no channel exhausts its retry budget.

    Rack width follows the netreduce discipline: 4-host racks at 8
    workers, 8-host racks at 64+.  Pass ``json_path`` to dump the sweep
    (rewritten after every cell; CI commits a full run as
    ``BENCH_lossy.json`` and the regression gate's ``lossy`` probe
    re-runs one cell against it).
    """
    import time as _time
    from dataclasses import replace as _dc_replace

    from ..distributed.runner import swap_comm_config
    from ..simnet.verbs import ROLE_RETRANSMIT

    spec = get_model(model)
    result = ExperimentResult(
        experiment="Extension: lossy",
        title=(f"Loss-tolerant transport: {model}, "
               f"{oversubscription:g}:1 fat-tree uplinks"),
        columns=["workers", "strategy", "loss_pct", "step_ms",
                 "slowdown", "losses", "retx", "retx_ratio", "gave_up"])
    sweep: List[Dict[str, object]] = []
    retx_ok = True
    retx_ok_at_scale = True
    qp_modes_identical = True

    def _dump() -> None:
        if json_path is None:
            return
        payload = {
            "experiment": "lossy",
            "config": {"model": model,
                       "worker_counts": list(worker_counts),
                       "loss_rates": list(loss_rates),
                       "oversubscription": oversubscription,
                       "batch_size": batch_size,
                       "iterations": iterations,
                       "max_flat_ring_workers": max_flat_ring_workers,
                       "max_retx_ratio": max_retx_ratio,
                       "fault_seed": fault_seed},
            "sweep": sweep,
            "qp_modes_bit_identical_loss_free": qp_modes_identical,
            "retx_within_bound": retx_ok,
            "retx_within_bound_at_128_workers": retx_ok_at_scale,
        }
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    for workers in worker_counts:
        hosts_per_rack = 4 if workers <= 8 else 8
        strategies = (("hierarchical", "innetwork")
                      if workers > max_flat_ring_workers
                      else ("ring", "hierarchical", "innetwork"))
        for strategy in strategies:
            entry: Dict[str, object] = {
                "workers": workers, "strategy": strategy,
                "hosts_per_rack": hosts_per_rack, "cells": [],
            }
            # Appended before the cells run so the per-cell _dump()
            # keeps partial entries of a long sweep that dies.
            sweep.append(entry)
            clean_step = None
            for rate in loss_rates:
                started = _time.time()
                bench = run_training_benchmark(
                    spec, "RDMA", num_servers=workers,
                    batch_size=batch_size, iterations=iterations,
                    strategy=strategy, topology="fat-tree",
                    hosts_per_rack=hosts_per_rack,
                    oversubscription=oversubscription,
                    loss_rate=rate or None, fault_seed=fault_seed,
                    collect_metrics=rate > 0.0)
                if bench.crashed:
                    raise RuntimeError(
                        f"lossy {strategy}/n{workers}/p={rate} crashed: "
                        f"{bench.crash_reason}")
                cell: Dict[str, object] = {
                    "loss_rate": rate,
                    "step_ms": bench.step_time * 1e3,
                    "iteration_times": list(bench.stats.iteration_times),
                    "wall_s": _time.time() - started,
                }
                if rate == 0.0:
                    # The loss-free cell doubles as the QP-mode identity
                    # check: shared endpoints must keep the RC clock.
                    clean_step = cell["step_ms"]
                    previous = swap_comm_config(
                        _dc_replace(comm_config(), qp_mode="shared"))
                    try:
                        shared = run_training_benchmark(
                            spec, "RDMA", num_servers=workers,
                            batch_size=batch_size, iterations=iterations,
                            strategy=strategy, topology="fat-tree",
                            hosts_per_rack=hosts_per_rack,
                            oversubscription=oversubscription)
                    finally:
                        swap_comm_config(previous)
                    identical = (shared.stats.iteration_times
                                 == bench.stats.iteration_times)
                    qp_modes_identical = qp_modes_identical and identical
                    cell["shared_qp_identical"] = identical
                    losses = lost_bytes = retx = 0
                    retx_bytes = gave_up = 0
                    ratio = 0.0
                else:
                    injected = bench.stats.faults["injected"]["log"]
                    recovery = bench.stats.faults["recovery"]
                    losses = sum(1 for e in injected
                                 if e["kind"] == "loss")
                    lost_bytes = sum(e["size"] for e in injected
                                     if e["kind"] == "loss")
                    # Count retransmissions on the wire, not in the
                    # recovery layer: in-network uplink losses are
                    # re-issued by the switch plane and never pass
                    # through a RecoveryManager.
                    retx = bench.metrics.count(role=ROLE_RETRANSMIT)
                    retx_bytes = bench.metrics.bytes_by_role().get(
                        ROLE_RETRANSMIT, 0)
                    gave_up = recovery["gave_up"]
                    ratio = (retx_bytes / lost_bytes) if lost_bytes else 0.0
                    bounded = (gave_up == 0 and
                               (lost_bytes == 0
                                or ratio <= max_retx_ratio))
                    retx_ok = retx_ok and bounded
                    if workers >= 128:
                        retx_ok_at_scale = retx_ok_at_scale and bounded
                    cell.update({"losses": losses,
                                 "lost_bytes": lost_bytes,
                                 "retransmits": retx,
                                 "retransmitted_bytes": retx_bytes,
                                 "retx_ratio": ratio,
                                 "gave_up": gave_up,
                                 "fallbacks":
                                     recovery["fallback_transfers"]})
                slowdown = (cell["step_ms"] / clean_step
                            if clean_step else 0.0)
                cell["slowdown_vs_loss_free"] = slowdown
                entry["cells"].append(cell)
                result.add_row(workers, strategy, rate * 100,
                               round(cell["step_ms"], 3),
                               round(slowdown, 4), losses, retx,
                               round(ratio, 3), gave_up)
                _dump()
            worst = max(entry["cells"],
                        key=lambda c: c.get("retx_ratio", 0.0))
            result.note(
                f"{strategy} n={workers}: loss-free "
                f"{clean_step:.2f} ms (shared QP identical: "
                f"{entry['cells'][0].get('shared_qp_identical')}), worst "
                f"retx ratio {worst.get('retx_ratio', 0.0):.3f} at "
                f"p={worst['loss_rate']:g}")
    result.note(f"loss-free clocks bit-identical across QP modes: "
                f"{qp_modes_identical}")
    result.note(f"retransmitted bytes within {max_retx_ratio:g}x of "
                f"injected loss everywhere: {retx_ok}")
    _dump()
    return result


def _merge_bench_llm(json_path: str, section: str,
                     payload: Dict[str, object]) -> None:
    """Write one section of the shared ``BENCH_llm.json``.

    ``llmtrain`` and ``llmserve`` each own one top-level key of the
    same file, so either can be re-run alone without losing the
    other's results.
    """
    data: Dict[str, object] = {"experiment": "llm"}
    if os.path.exists(json_path):
        with open(json_path) as fh:
            data = json.load(fh)
        data["experiment"] = "llm"
    data[section] = payload
    with open(json_path, "w") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")


def llmtrain(model: str = "GPT-350M",
             stage_counts: Sequence[int] = (2, 4, 8),
             microbatches: int = 4, batch_size: int = 8,
             iterations: int = 3,
             json_path: Optional[str] = None) -> ExperimentResult:
    """Extension: pipeline-parallel transformer training, GPipe vs 1F1B.

    Trains the decoder-only transformer over the ``llm`` strategy at
    each stage count under both schedules, with activations moving
    between stage hosts as static RDMA writes.  Every cell runs traced
    so :func:`repro.distributed.model_parallel.pipeline_bubble_report`
    can decompose the stall report into useful compute, pipeline
    bubble, and (for GPipe) activation-rematerialization overhead; the
    decomposition must sum back to the measured step time exactly
    (``accounting_residual_s`` ~ float noise).

    The headline — ``onef1b_beats_gpipe_at_4plus`` — asserts that 1F1B
    keeps a strictly lower bubble fraction than GPipe at every stage
    count >= 4: both share the ``(M + S - 1)``-slot pipeline shape, but
    GPipe discards activations between its forward and backward phases
    and pays the recompute on the critical path.  Pass ``json_path`` to
    dump the sweep into the ``train`` section of ``BENCH_llm.json``
    (the regression gate's ``llm`` probe re-runs one cell against it).

    CLI pipeline knobs narrow the sweep: ``--pipeline-stages N`` pins
    the stage count to one cell, ``--microbatches`` overrides the cut,
    and ``--schedule`` runs only that schedule (the gpipe-vs-1f1b
    headline then needs both, so it is reported only when both ran).
    """
    from ..distributed.model_parallel import pipeline_bubble_report

    spec = get_model(model)
    cfg = comm_config()
    if cfg.pipeline_stages is not None:
        stage_counts = (cfg.pipeline_stages,)
    if cfg.microbatches is not None:
        microbatches = cfg.microbatches
    schedules = ("gpipe", "1f1b") if cfg.schedule is None \
        else (cfg.schedule,)
    result = ExperimentResult(
        experiment="Extension: llmtrain",
        title=(f"Pipeline-parallel training: {model}, batch {batch_size} "
               f"x {microbatches} microbatches"),
        columns=["stages", "schedule", "step_ms", "ideal_ms",
                 "bubble_fraction", "useful_fraction", "remat_ms",
                 "residual_s"])
    cells: List[Dict[str, object]] = []
    headline = True
    max_residual = 0.0
    for stages in stage_counts:
        per_stage = {}
        for schedule in schedules:
            bench = run_training_benchmark(
                spec, "RDMA", num_servers=stages, batch_size=batch_size,
                iterations=iterations, strategy="llm",
                microbatches=microbatches, schedule=schedule,
                collect_trace=True)
            if bench.crashed:
                raise RuntimeError(f"llmtrain {schedule}/s{stages} "
                                   f"crashed: {bench.crash_reason}")
            report = pipeline_bubble_report(bench.pipeline,
                                            bench.stall_report())
            residual = abs(report["accounting_residual_s"])
            max_residual = max(max_residual, residual)
            # per_stage remat_s aggregates the steady-state iterations;
            # report it per step like every other column.
            remat_ms = (sum(s["remat_s"] for s in report["per_stage"])
                        / max(report["iterations"], 1) * 1e3)
            cell = {
                "stages": stages, "schedule": schedule,
                "step_ms": bench.step_time * 1e3,
                "ideal_step_ms": report["ideal_step_s"] * 1e3,
                "bubble_fraction": report["bubble_fraction"],
                "useful_fraction": report["useful_fraction"],
                "remat_ms": remat_ms,
                "accounting_residual_s": report["accounting_residual_s"],
            }
            per_stage[schedule] = cell
            cells.append(cell)
            result.add_row(stages, schedule,
                           round(cell["step_ms"], 3),
                           round(cell["ideal_step_ms"], 3),
                           round(cell["bubble_fraction"], 4),
                           round(cell["useful_fraction"], 4),
                           round(remat_ms, 3),
                           f"{residual:.1e}")
        if "gpipe" in per_stage and "1f1b" in per_stage:
            gpipe, onef1b = per_stage["gpipe"], per_stage["1f1b"]
            wins = onef1b["bubble_fraction"] < gpipe["bubble_fraction"]
            if stages >= 4:
                headline = headline and wins
            result.note(f"s={stages}: 1f1b bubble "
                        f"{onef1b['bubble_fraction']:.3f} vs gpipe "
                        f"{gpipe['bubble_fraction']:.3f} "
                        f"(1f1b_wins={wins})")
    if len(schedules) == 2:
        result.note(f"1f1b bubble fraction below gpipe at every stage "
                    f"count >= 4: {headline}")
    result.note(f"worst bubble-accounting residual: {max_residual:.2e} s "
                f"(op + bubble - remat must equal the measured step)")
    if json_path is not None:
        _merge_bench_llm(json_path, "train", {
            "config": {"model": model, "stage_counts": list(stage_counts),
                       "schedules": list(schedules),
                       "microbatches": microbatches,
                       "batch_size": batch_size, "iterations": iterations,
                       "backend": cfg.backend},
            "cells": cells,
            "onef1b_beats_gpipe_at_4plus": headline,
            "max_accounting_residual_s": max_residual,
        })
    return result


def llmserve(model: str = "GPT-350M", requests: int = 160, seed: int = 11,
             qps: float = 60.0,
             static_timeouts: Sequence[float] = (2e-3, 50e-3, 200e-3),
             json_path: Optional[str] = None) -> ExperimentResult:
    """Extension: continuous batching vs the fixed batcher, KV-budgeted.

    Serves the same seeded trace (Poisson arrivals, uniform prompt and
    output lengths) through both LLM engine modes on identical
    deployments: **continuous** admits and retires requests at token
    granularity under the per-replica KV-cache byte budget, while
    **static** reuses the close-on-size/timeout
    :class:`repro.serving.batcher.DynamicBatcher` and holds each batch
    to completion.  The static baseline runs a batch-timeout sweep and
    the headline compares continuous against its *best* point, so the
    win is not an artifact of one untuned knob:

    * ``continuous_beats_static`` — higher decode tokens/s than every
      static cell while keeping TTFT p99 no worse than the best static
      cell (the "equal TTFT" budget);
    * ``kv_leak_free`` — every mode drains with zero KV-cache bytes
      outstanding (an admission/eviction accounting leak fails CI).

    Pass ``json_path`` to dump the comparison into the ``serve``
    section of ``BENCH_llm.json``.
    """
    from ..llm import run_llm_serving_benchmark
    from ..serving import serving_config

    cfg = serving_config()
    spec = get_model(model)
    common = dict(replicas=cfg.replicas, qps=qps, requests=requests,
                  seed=seed, arrival=cfg.arrival,
                  admission_limit=cfg.admission_limit,
                  max_batch=cfg.max_batch, max_width=cfg.max_width,
                  kv_budget_bytes=int(cfg.kv_budget_mb * MB))
    result = ExperimentResult(
        experiment="Extension: llmserve",
        title=(f"LLM serving: {model}, {cfg.replicas} replicas, "
               f"{qps:g} qps offered, KV budget {cfg.kv_budget_mb:g} MB"),
        columns=["mode", "timeout_ms", "completed", "shed", "decode_tok_s",
                 "ttft_p99_ms", "tpot_p50_ms", "mean_width", "preemptions",
                 "kv_peak_mb", "kv_leaked"])
    runs: List[Dict[str, object]] = []

    def _row(run) -> None:
        result.add_row(
            run.mode, round(run.batch_timeout * 1e3, 1), run.completed,
            run.shed, round(run.decode_tokens_per_s, 1),
            round(run.ttft.get("p99", 0.0) * 1e3, 2),
            round(run.tpot.get("p50", 0.0) * 1e3, 3),
            round(run.mean_width, 2), run.preemptions,
            round(run.kv["peak_bytes"] / MB, 1), run.kv_leaked_bytes)
        runs.append(run.to_dict())

    continuous = run_llm_serving_benchmark(spec, mode="continuous",
                                           **common)
    _row(continuous)
    statics = []
    for timeout in static_timeouts:
        run = run_llm_serving_benchmark(spec, mode="static",
                                        batch_timeout=timeout, **common)
        statics.append(run)
        _row(run)
    best_static = max(statics, key=lambda r: r.decode_tokens_per_s)
    throughput_wins = all(continuous.decode_tokens_per_s
                          > r.decode_tokens_per_s for r in statics)
    ttft_held = (continuous.ttft.get("p99", 0.0)
                 <= best_static.ttft.get("p99", 0.0))
    continuous_beats_static = throughput_wins and ttft_held
    kv_leak_free = (continuous.kv_leaked_bytes == 0
                    and all(r.kv_leaked_bytes == 0 for r in statics))
    all_drained = (continuous.completed + continuous.shed == requests
                   and all(r.completed + r.shed == requests
                           for r in statics))
    result.note(f"continuous {continuous.decode_tokens_per_s:.0f} tok/s at "
                f"TTFT p99 {continuous.ttft.get('p99', 0.0) * 1e3:.1f} ms "
                f"vs best static {best_static.decode_tokens_per_s:.0f} "
                f"tok/s at {best_static.ttft.get('p99', 0.0) * 1e3:.1f} ms "
                f"(timeout {best_static.batch_timeout * 1e3:g} ms)")
    result.note(f"continuous_beats_static={continuous_beats_static} "
                f"(throughput_wins={throughput_wins}, "
                f"ttft_held={ttft_held})")
    result.note(f"kv_leak_free={kv_leak_free}, all_drained={all_drained}")
    if json_path is not None:
        _merge_bench_llm(json_path, "serve", {
            "config": {"model": model, "requests": requests, "seed": seed,
                       "qps": qps, "replicas": cfg.replicas,
                       "kv_budget_mb": cfg.kv_budget_mb,
                       "max_width": cfg.max_width,
                       "max_batch": cfg.max_batch,
                       "static_timeouts": list(static_timeouts)},
            "runs": runs,
            "continuous_beats_static": continuous_beats_static,
            "kv_leak_free": kv_leak_free,
            "all_drained": all_drained,
        })
    return result


ALL_EXPERIMENTS = {
    "table2": table2,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "table3": table3,
    "allreduce": extension_allreduce,
    "stallreport": stallreport,
    "overlap": overlap,
    "chaos": chaos,
    "serving": serving,
    "scale": scale,
    "netreduce": netreduce,
    "telemetry": telemetry,
    "lossy": lossy,
    "llmtrain": llmtrain,
    "llmserve": llmserve,
}


def run_all(fast: bool = True) -> Dict[str, ExperimentResult]:
    """Regenerate every table and figure (fast mode trims sweeps)."""
    if fast:
        return {
            "table2": table2(),
            "figure7": figure7(),
            "figure8": figure8(sizes=(1 * MB, 64 * MB, 1 * GB),
                               iterations=3),
            "figure9": figure9(models=("AlexNet", "VGGNet-16"),
                               batches=(1, 32), iterations=3),
            "figure10": figure10(steps=60, iterations=3),
            "figure11": figure11(models=("VGGNet-16",), iterations=3),
            "figure12": figure12(models=("AlexNet", "GRU"), iterations=3),
            "table3": table3(models=("AlexNet", "Inception-v3"),
                             iterations=3),
            "allreduce": extension_allreduce(
                models=("FCN-5",), server_counts=(4,),
                mechanisms=("RDMA",), iterations=3),
            "stallreport": stallreport(),
            "overlap": overlap(models=("FCN-5",), num_servers=2),
            "chaos": chaos(seeds=(0, 1)),
            "serving": serving(requests=300),
            "scale": scale(worker_counts=(32,), hosts_per_rack=8),
            "netreduce": netreduce(worker_counts=(8,),
                                   models=("FCN-5",), hosts_per_rack=4),
            "telemetry": telemetry(iterations=2),
            "llmtrain": llmtrain(stage_counts=(2, 4), iterations=2),
            "llmserve": llmserve(requests=80,
                                 static_timeouts=(2e-3, 200e-3)),
        }
    return {name: fn() for name, fn in ALL_EXPERIMENTS.items()}
