"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness                 # fast mode (trimmed sweeps)
    python -m repro.harness --full          # full sweeps (several minutes)
    python -m repro.harness table2 figure8  # a subset
"""

from __future__ import annotations

import argparse
import sys
import time

from ..core.device import QP_MODES
from ..distributed.runner import (MECHANISMS, SCHEDULES, TOPOLOGIES,
                                  comm_config, configure_comm,
                                  resolve_trace_hosts)
from ..distributed.allreduce import ALLREDUCE_ALGORITHMS
from ..serving.config import configure_serving
from ..observability.capture import (configure_capture, flush_capture,
                                     reset_capture)
from .experiments import ALL_EXPERIMENTS, run_all


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness",
        description="Regenerate the evaluation of 'Fast Distributed Deep "
                    "Learning over RDMA' (EuroSys '19) on the simulator.")
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="subset to run (default: all); known names: "
                             + ", ".join(ALL_EXPERIMENTS))
    parser.add_argument("--full", action="store_true",
                        help="full sweeps instead of the fast trimmed ones")
    parser.add_argument("--num-cqs", type=int, default=None, metavar="N",
                        help="completion queues per RDMA device (default 4)")
    parser.add_argument("--qps-per-peer", type=int, default=None,
                        metavar="N",
                        help="queue pairs per peer endpoint (default 4)")
    parser.add_argument("--qp-mode", choices=QP_MODES, default=None,
                        help="queue-pair layout: 'rc' keeps per-peer "
                             "reliable-connected pairs (default); 'shared' "
                             "multiplexes every peer over O(1) DCT-style "
                             "shared endpoints per NIC")
    parser.add_argument("--backend", choices=MECHANISMS, default=None,
                        help="transfer mechanism used where an experiment "
                             "asks for the configured default")
    parser.add_argument("--fusion-mb", type=float, default=None,
                        metavar="MB",
                        help="gradient fusion bucket size in MiB for "
                             "collective runs (default: model-dependent)")
    parser.add_argument("--priority-sched", action="store_true",
                        default=None,
                        help="priority-aware transfer scheduling: preemptive "
                             "quantum wire scheduler + urgency-ordered "
                             "executor ready queue")
    parser.add_argument("--eager-flush", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="flush fusion buckets during backward "
                             "(--no-eager-flush holds them behind a "
                             "post-backward barrier)")
    parser.add_argument("--fault-spec", default=None, metavar="SPEC",
                        help="inject fabric faults, e.g. "
                             "'drop:p=0.01;flap:host=server1,at=0.001,"
                             "for=0.0005' (kinds: drop, blackhole, partial, "
                             "qp-break, flap, straggler)")
    parser.add_argument("--fault-seed", type=int, default=None, metavar="N",
                        help="RNG seed for probabilistic fault rules "
                             "(default 0; same seed => same schedule)")
    parser.add_argument("--loss", type=float, default=None, metavar="RATE",
                        help="lossy fabric: drop each transfer attempt with "
                             "this probability (ECN-coupled on fat trees); "
                             "shorthand for a 'loss:p=RATE' fault clause, "
                             "switches recovery to selective repeat")
    parser.add_argument("--retry-limit", type=int, default=None, metavar="N",
                        help="transfer re-issues before degrading to TCP "
                             "(default 4)")
    parser.add_argument("--retry-timeout", type=float, default=None,
                        metavar="SEC",
                        help="base per-attempt transfer timeout in seconds "
                             "(default 0.02; scales with size)")
    parser.add_argument("--tcp-fallback", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="degrade persistently failing RDMA channels to "
                             "the kernel TCP path (--no-tcp-fallback raises "
                             "instead)")
    fabric_group = parser.add_argument_group(
        "fabric", "multi-rack fabric topology (the 'scale' experiment and "
                  "any run on a fat tree)")
    fabric_group.add_argument("--topology", choices=TOPOLOGIES, default=None,
                              help="physical fabric shape: 'flat' is the "
                                   "classic single-switch full-bisection "
                                   "model; 'fat-tree' adds racks, ToR/spine "
                                   "switches, and contended uplinks")
    fabric_group.add_argument("--racks", type=int, default=None, metavar="N",
                              help="number of racks on the fat tree (workers "
                                   "are split evenly across them)")
    fabric_group.add_argument("--hosts-per-rack", type=int, default=None,
                              metavar="N",
                              help="hosts under each top-of-rack switch "
                                   "(takes precedence over --racks)")
    fabric_group.add_argument("--oversubscription", type=float, default=None,
                              metavar="X",
                              help="rack uplink oversubscription ratio "
                                   "(1.0 = full bisection, 4.0 = the "
                                   "classic 4:1)")
    fabric_group.add_argument("--collective", choices=ALLREDUCE_ALGORITHMS,
                              default=None,
                              help="allreduce algorithm used where an "
                                   "experiment asks for the configured "
                                   "default (hierarchical is rack-aware)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a merged Chrome trace_event JSON of "
                             "every benchmark run (open in Perfetto)")
    parser.add_argument("--metrics-json", default=None, metavar="PATH",
                        help="write per-run counters/histograms and the "
                             "stall-attribution report as JSON")
    telemetry_group = parser.add_argument_group(
        "telemetry", "fleet-scale telemetry: streaming series, incident "
                     "logs, and span-retention budgets for traced runs")
    telemetry_group.add_argument("--telemetry-out", default=None,
                                 metavar="PATH",
                                 help="write per-run streaming time-series "
                                      "summaries (per-host/rack/fleet "
                                      "rollups) plus the anomaly incident "
                                      "log as JSON")
    telemetry_group.add_argument("--trace-sample", type=float, default=None,
                                 metavar="RATE",
                                 help="retain this fraction of emitted "
                                      "spans per category (deterministic "
                                      "1-in-k); telemetry and stall "
                                      "accounting always see every span")
    telemetry_group.add_argument("--trace-hosts", default=None,
                                 metavar="HOSTS",
                                 help="retain spans only from these hosts: "
                                      "a comma-separated name list or an "
                                      "integer prefix count (e.g. '4' = "
                                      "server0..server3)")
    telemetry_group.add_argument("--trace-event-cap", type=int, default=None,
                                 metavar="N",
                                 help="cap span events in the merged Chrome "
                                      "trace; overflow is counted in an "
                                      "explicit truncation marker "
                                      "(default 1000000)")
    pipeline_group = parser.add_argument_group(
        "pipeline", "pipeline-parallel transformer training (the 'llm' "
                    "strategy and the 'llmtrain' experiment)")
    pipeline_group.add_argument("--pipeline-stages", type=int, default=None,
                                metavar="N",
                                help="pipeline stages for the llm strategy, "
                                     "clamped to the model's variable count; "
                                     "pins the llmtrain sweep to one stage "
                                     "count (default: sweep 2/4/8)")
    pipeline_group.add_argument("--microbatches", type=int, default=None,
                                metavar="N",
                                help="microbatches per training step; the "
                                     "global batch must divide evenly "
                                     "(default 4)")
    pipeline_group.add_argument("--schedule", choices=SCHEDULES, default=None,
                                help="pipeline schedule: 'gpipe' runs all "
                                     "forwards then all backwards (pays "
                                     "activation rematerialization); '1f1b' "
                                     "interleaves to bound live activations "
                                     "(default; llmtrain sweeps both unless "
                                     "pinned)")
    serving_group = parser.add_argument_group(
        "serving", "knobs for the inference serving plane (the 'serving' "
                   "experiment)")
    serving_group.add_argument("--replicas", type=int, default=None,
                               metavar="N",
                               help="model replicas behind the router "
                                    "(default 2)")
    serving_group.add_argument("--qps", type=float, default=None, metavar="R",
                               help="open-loop offered load in requests/s "
                                    "(default 1200)")
    serving_group.add_argument("--max-batch", type=int, default=None,
                               metavar="N",
                               help="dynamic batcher: close a batch at N "
                                    "requests (default 8)")
    serving_group.add_argument("--batch-timeout", type=float, default=None,
                               metavar="SEC",
                               help="dynamic batcher: or this long after "
                                    "the first request (default 0.002)")
    serving_group.add_argument("--slo-ms", type=float, default=None,
                               metavar="MS",
                               help="latency objective for SLO-attainment "
                                    "accounting (default 25)")
    serving_group.add_argument("--kv-budget-mb", type=float, default=None,
                               metavar="MB",
                               help="per-replica KV-cache byte budget for "
                                    "LLM serving (default 2048)")
    serving_group.add_argument("--max-width", type=int, default=None,
                               metavar="N",
                               help="continuous batching: running-batch "
                                    "width cap per replica (default 16)")
    args = parser.parse_args(argv)

    unknown = [name for name in args.experiments
               if name not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)} "
                     f"(known: {', '.join(ALL_EXPERIMENTS)})")

    fabric_flags = (args.racks is not None
                    or args.hosts_per_rack is not None
                    or args.oversubscription is not None)
    topology = args.topology
    if fabric_flags and (topology or comm_config().topology) == "flat":
        parser.error("--racks/--hosts-per-rack/--oversubscription describe "
                     "a fat tree; add --topology fat-tree")
    if topology == "fat-tree" and args.racks is None \
            and args.hosts_per_rack is None:
        parser.error("--topology fat-tree needs a rack shape; give "
                     "--racks or --hosts-per-rack")
    if (args.collective or comm_config().collective) == "innetwork" \
            and (topology or comm_config().topology) != "fat-tree":
        parser.error("--collective innetwork aggregates gradients in the "
                     "ToR/spine switches; add --topology fat-tree (plus "
                     "--racks or --hosts-per-rack)")

    capturing = (args.trace_out is not None
                 or args.metrics_json is not None
                 or args.telemetry_out is not None)
    if (args.trace_sample is not None or args.trace_hosts is not None) \
            and not capturing:
        parser.error("--trace-sample/--trace-hosts budget the spans of "
                     "captured runs; add --trace-out, --metrics-json, or "
                     "--telemetry-out")
    if args.trace_event_cap is not None and args.trace_out is None:
        parser.error("--trace-event-cap bounds the merged Chrome trace; "
                     "add --trace-out")
    if args.loss is not None and not 0.0 <= args.loss < 1.0:
        parser.error(f"--loss must be in [0, 1), got {args.loss}")
    if args.trace_sample is not None \
            and not 0.0 < args.trace_sample <= 1.0:
        parser.error(f"--trace-sample must be in (0, 1], got "
                     f"{args.trace_sample}")
    if args.trace_event_cap is not None and args.trace_event_cap < 1:
        parser.error("--trace-event-cap must be positive")
    if args.trace_hosts is not None:
        try:
            # Shape check only; prefix-count bounds depend on the run size.
            resolve_trace_hosts(args.trace_hosts, num_servers=1 << 30)
        except ValueError as exc:
            parser.error(f"--trace-hosts: {exc}")

    fusion_bytes = (None if args.fusion_mb is None
                    else int(args.fusion_mb * 1024 * 1024))
    configure_comm(num_cqs=args.num_cqs,
                   num_qps_per_peer=args.qps_per_peer,
                   qp_mode=args.qp_mode,
                   backend=args.backend,
                   fusion_bytes=fusion_bytes,
                   priority_sched=args.priority_sched,
                   eager_flush=args.eager_flush,
                   fault_spec=args.fault_spec,
                   fault_seed=args.fault_seed,
                   loss_rate=args.loss,
                   retry_limit=args.retry_limit,
                   retry_timeout=args.retry_timeout,
                   tcp_fallback=args.tcp_fallback,
                   topology=args.topology,
                   racks=args.racks,
                   hosts_per_rack=args.hosts_per_rack,
                   oversubscription=args.oversubscription,
                   collective=args.collective,
                   trace_sample=args.trace_sample,
                   trace_hosts=args.trace_hosts,
                   pipeline_stages=args.pipeline_stages,
                   microbatches=args.microbatches,
                   schedule=args.schedule)
    configure_serving(replicas=args.replicas,
                      qps=args.qps,
                      max_batch=args.max_batch,
                      batch_timeout=args.batch_timeout,
                      slo_ms=args.slo_ms,
                      kv_budget_mb=args.kv_budget_mb,
                      max_width=args.max_width)
    if capturing:
        from ..observability.capture import DEFAULT_TRACE_EVENT_CAP
        configure_capture(trace_out=args.trace_out,
                          metrics_json=args.metrics_json,
                          telemetry_out=args.telemetry_out,
                          trace_event_cap=(args.trace_event_cap
                                           if args.trace_event_cap is not None
                                           else DEFAULT_TRACE_EVENT_CAP))

    try:
        if args.experiments:
            selected = {name: ALL_EXPERIMENTS[name]
                        for name in args.experiments}
            results = {}
            for name, fn in selected.items():
                started = time.time()
                results[name] = fn()
                print(f"[{name} regenerated in {time.time() - started:.1f}s]",
                      file=sys.stderr)
        else:
            results = run_all(fast=not args.full)

        if capturing:
            for kind, path in flush_capture().items():
                print(f"[{kind} written to {path}]", file=sys.stderr)
    finally:
        if capturing:
            reset_capture()

    for result in results.values():
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
