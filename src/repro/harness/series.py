"""Result containers and plain-text rendering for experiments.

Every experiment in :mod:`repro.harness.experiments` returns an
:class:`ExperimentResult`: a named table of rows that renders to
aligned text (the library has no plotting dependency; the *series*
are the figures) and can be exported as CSV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """A labelled table: the regenerated form of one table/figure."""

    experiment: str                  # e.g. "Figure 8"
    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> List[Any]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def find(self, **filters: Any) -> List[List[Any]]:
        """Rows whose named columns equal the given values."""
        indices = {self.columns.index(k): v for k, v in filters.items()}
        return [row for row in self.rows
                if all(row[i] == v for i, v in indices.items())]

    def cell(self, column: str, **filters: Any) -> Any:
        """The single value of ``column`` in the row matching filters."""
        rows = self.find(**filters)
        if len(rows) != 1:
            raise KeyError(f"{len(rows)} rows match {filters}")
        return rows[0][self.columns.index(column)]

    # -- rendering ------------------------------------------------------------------

    @staticmethod
    def _format(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.01:
                return f"{value:.3g}"
            return f"{value:.2f}"
        return str(value)

    def render(self) -> str:
        """Aligned plain-text table with the experiment heading."""
        cells = [[self._format(v) for v in row] for row in self.rows]
        widths = [max([len(c)] + [len(row[i]) for row in cells])
                  for i, c in enumerate(self.columns)]
        def line(values):
            return "  ".join(v.rjust(w) for v, w in zip(values, widths))
        out = [f"== {self.experiment}: {self.title} ==",
               line(self.columns),
               line(["-" * w for w in widths])]
        out += [line(row) for row in cells]
        out += [f"  note: {n}" for n in self.notes]
        return "\n".join(out)

    def to_csv(self) -> str:
        import csv
        import io
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()
