"""Experiment harness: regenerates every table and figure of §5."""

from .experiments import (ALL_EXPERIMENTS, extension_allreduce, figure7,
                          figure8, figure9, figure10, figure11, figure12,
                          run_all, table2, table3)
from .series import ExperimentResult

__all__ = [
    "ALL_EXPERIMENTS", "ExperimentResult", "extension_allreduce", "figure7",
    "figure8", "figure9", "figure10", "figure11", "figure12", "run_all",
    "table2", "table3",
]
