"""Perf-regression gate: fresh probe runs vs committed baselines.

The simulator is deterministic — identical code and configuration
reproduce simulated metrics bit-for-bit — so committed benchmark
results double as regression baselines with *tight* tolerances: a 5%
drift in a simulated step time is a behavior change, not noise.
Wall-clock figures in the baselines (``wall_s``, ``events_per_s``)
are machine-dependent and never gated.

Three probes, each re-running a small, fixed slice of a committed
benchmark's configuration and comparing per-metric:

* ``overlap`` — barrier vs eager+priority step times for a model
  subset of ``BENCH_overlap.json`` (and the "eager is faster" bit);
* ``scale``   — the 64-worker hierarchical cell of
  ``BENCH_scale.json``: step time, trunk-uplink traffic volume,
  predicted wire bytes;
* ``serving`` — the batched serving run of ``BENCH_serving.json``:
  sustained throughput, p99 latency, completion count, and the
  torn-serve invariant (exactly zero);
* ``netreduce`` — one 64-worker cell of ``BENCH_netreduce.json``:
  in-network vs hierarchical step times, the per-worker wire-byte
  identity (measured egress ``== M``), the zero-spill invariant, and
  the "in-network is faster at scale" bit;
* ``lossy`` — one 8-worker hierarchical cell of ``BENCH_lossy.json``:
  lossy step time, the exact retransmitted-byte and loss-event counts
  (deterministic under the committed fault seed), the
  retransmit-overhead bound (``retx <= k x lost``, no exhausted retry
  budgets), and the loss-free RC/shared-QP clock identity;
* ``llm`` — one pipeline-training stage count of ``BENCH_llm.json``
  under both schedules (step times, the "1F1B bubbles less than
  GPipe" bit) plus the continuous vs best-static serving cells
  (decode throughput, TTFT p99, the zero-KV-leak invariant).

Exit status is nonzero when any gated metric regresses beyond its
tolerance, which is what lets CI fail the build.  ``--json`` dumps
the full comparison; ``--trajectory`` appends a compact gate record
to ``results/BENCH_telemetry.json`` so the telemetry file carries a
history of gate verdicts alongside the telemetry seed.

Usage::

    python -m repro.harness.regress                    # all probes
    python -m repro.harness.regress --probes scale
    python -m repro.harness.regress --tolerance 0.08 --json gate.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..models.zoo import get_model
from ..simnet.costmodel import MB

#: default relative tolerance for gated metrics
DEFAULT_TOLERANCE = 0.05

#: models the overlap probe re-runs (a subset keeps the gate fast;
#: names must exist in the committed BENCH_overlap.json)
DEFAULT_OVERLAP_MODELS = ("AlexNet", "FCN-5")

#: how many gate records --trajectory keeps in BENCH_telemetry.json
TRAJECTORY_KEEP = 20

PROBES = ("overlap", "scale", "serving", "netreduce", "lossy", "llm")


@dataclass
class Check:
    """One gated metric: fresh value vs committed baseline."""

    probe: str
    metric: str
    baseline: float
    fresh: float
    direction: str      # "lower_better" | "higher_better" | "match"
    tolerance: float
    #: filled by evaluate(): "ok" | "improved" | "regressed"
    verdict: str = ""

    def evaluate(self) -> str:
        base, fresh = self.baseline, self.fresh
        scale = max(abs(base), 1e-12)
        delta = (fresh - base) / scale
        if self.direction == "match":
            self.verdict = "ok" if abs(delta) <= self.tolerance \
                else "regressed"
        elif self.direction == "lower_better":
            if delta > self.tolerance:
                self.verdict = "regressed"
            elif delta < -self.tolerance:
                self.verdict = "improved"
            else:
                self.verdict = "ok"
        elif self.direction == "higher_better":
            if delta < -self.tolerance:
                self.verdict = "regressed"
            elif delta > self.tolerance:
                self.verdict = "improved"
            else:
                self.verdict = "ok"
        else:
            raise ValueError(f"unknown direction {self.direction!r}")
        return self.verdict

    def to_dict(self) -> Dict[str, object]:
        return {"probe": self.probe, "metric": self.metric,
                "baseline": self.baseline, "fresh": self.fresh,
                "direction": self.direction, "tolerance": self.tolerance,
                "verdict": self.verdict}


@dataclass
class GateReport:
    """Everything one gate invocation measured."""

    checks: List[Check] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    def add(self, check: Check) -> None:
        check.evaluate()
        self.checks.append(check)

    @property
    def regressions(self) -> List[Check]:
        return [c for c in self.checks if c.verdict == "regressed"]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.errors

    def to_dict(self) -> Dict[str, object]:
        return {"ok": self.ok,
                "checks": [c.to_dict() for c in self.checks],
                "regressions": len(self.regressions),
                "errors": list(self.errors)}


def _load_baseline(baseline_dir: str, name: str) -> Optional[Dict]:
    path = os.path.join(baseline_dir, name)
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


# -- probes ----------------------------------------------------------------------------


def probe_overlap(report: GateReport, baseline_dir: str, tolerance: float,
                  models: Sequence[str] = DEFAULT_OVERLAP_MODELS) -> None:
    """Re-run barrier vs eager+priority for a model subset."""
    from ..distributed.runner import run_training_benchmark

    baseline = _load_baseline(baseline_dir, "BENCH_overlap.json")
    if baseline is None:
        report.errors.append("overlap: no BENCH_overlap.json baseline")
        return
    config = baseline["config"]
    by_model = {row["benchmark"]: row for row in baseline["models"]}
    common = dict(num_servers=config["num_servers"],
                  batch_size=config["batch_size"],
                  iterations=config["iterations"],
                  strategy=config["algorithm"],
                  fusion_bytes=int(config["fusion_mb"] * MB))
    for name in models:
        base_row = by_model.get(name)
        if base_row is None:
            report.errors.append(f"overlap: model {name!r} not in baseline")
            continue
        spec = get_model(name)
        barrier = run_training_benchmark(spec, "RDMA", eager_flush=False,
                                         priority_sched=False, **common)
        eager = run_training_benchmark(spec, "RDMA", eager_flush=True,
                                       priority_sched=True, **common)
        if barrier.crashed or eager.crashed:
            report.errors.append(f"overlap: {name} crashed: "
                                 f"{barrier.crash_reason or eager.crash_reason}")
            continue
        report.add(Check("overlap", f"{name}.barrier_step_ms",
                         base_row["barrier_step_ms"],
                         barrier.step_time * 1e3, "lower_better", tolerance))
        report.add(Check("overlap", f"{name}.eager_priority_step_ms",
                         base_row["eager_priority_step_ms"],
                         eager.step_time * 1e3, "lower_better", tolerance))
        if base_row["faster"] and not eager.step_time < barrier.step_time:
            report.errors.append(
                f"overlap: {name}: eager+priority no longer faster than "
                f"barrier ({eager.step_time * 1e3:.3f} ms vs "
                f"{barrier.step_time * 1e3:.3f} ms)")


def probe_scale(report: GateReport, baseline_dir: str, tolerance: float,
                workers: int = 64) -> None:
    """Re-run one hierarchical cell of the fat-tree scale sweep."""
    from ..distributed.runner import run_training_benchmark
    from .experiments import _scale_spec

    baseline = _load_baseline(baseline_dir, "BENCH_scale.json")
    if baseline is None:
        report.errors.append("scale: no BENCH_scale.json baseline")
        return
    config = baseline["config"]
    entry = next((e for e in baseline["sweep"]
                  if e["workers"] == workers), None)
    strategy = config.get("collective", "hierarchical")
    base_rec = (entry or {}).get(strategy)
    if base_rec is None:
        report.errors.append(f"scale: no {strategy} baseline at "
                             f"n={workers}")
        return
    bench = run_training_benchmark(
        _scale_spec(), "RDMA", num_servers=workers,
        batch_size=config["batch_size"], iterations=config["iterations"],
        strategy=strategy, fusion_bytes=int(config["fusion_mb"] * MB),
        topology="fat-tree", hosts_per_rack=config["hosts_per_rack"],
        oversubscription=config["oversubscription"])
    if bench.crashed:
        report.errors.append(f"scale: n={workers} crashed: "
                             f"{bench.crash_reason}")
        return
    uplink = {name: s for name, s in bench.link_stats().items()
              if name.startswith("tor")}
    uplink_mb = sum(s["bytes_carried"] for s in uplink.values()) / MB
    report.add(Check("scale", f"n{workers}.step_ms",
                     base_rec["step_ms"], bench.step_time * 1e3,
                     "lower_better", tolerance))
    # Traffic volume drifting in either direction means the collective
    # changed shape, not just speed — gate symmetrically.
    report.add(Check("scale", f"n{workers}.uplink_mb",
                     base_rec["uplink_mb"], uplink_mb, "match", tolerance))
    report.add(Check("scale", f"n{workers}.predicted_wire_mb",
                     base_rec["predicted_wire_mb"],
                     (bench.predicted_wire_bytes or 0) / MB,
                     "match", tolerance))


def probe_serving(report: GateReport, baseline_dir: str,
                  tolerance: float) -> None:
    """Re-run the committed batched serving configuration."""
    from ..serving import run_serving_benchmark

    baseline = _load_baseline(baseline_dir, "BENCH_serving.json")
    if baseline is None:
        report.errors.append("serving: no BENCH_serving.json baseline")
        return
    config = baseline["config"]
    label = f"batch-{config['max_batch']}"
    base_row = next((r for r in baseline["runs"] if r["run"] == label), None)
    if base_row is None:
        report.errors.append(f"serving: no {label!r} run in baseline")
        return
    run = run_serving_benchmark(
        get_model(config["model"]), replicas=config["replicas"],
        qps=config["qps"], max_batch=config["max_batch"],
        batch_timeout=config["batch_timeout"], slo_ms=config["slo_ms"],
        arrival=config["arrival"], requests=config["requests"],
        seed=config["seed"], priority_sched=True)
    report.add(Check("serving", f"{label}.throughput_rps",
                     base_row["throughput_rps"], run.throughput_rps,
                     "higher_better", tolerance))
    report.add(Check("serving", f"{label}.latency_p99_s",
                     base_row["latency"]["p99"],
                     run.latency.get("p99", 0.0), "lower_better", tolerance))
    report.add(Check("serving", f"{label}.completed",
                     base_row["completed"], run.completed,
                     "match", tolerance))
    if run.torn_serves != 0:
        report.errors.append(f"serving: {run.torn_serves} torn serves "
                             f"(invariant: 0)")


def probe_netreduce(report: GateReport, baseline_dir: str,
                    tolerance: float, workers: int = 64) -> None:
    """Re-run one in-network cell of the netreduce sweep."""
    from ..distributed.runner import run_training_benchmark

    baseline = _load_baseline(baseline_dir, "BENCH_netreduce.json")
    if baseline is None:
        report.errors.append("netreduce: no BENCH_netreduce.json baseline")
        return
    config = baseline["config"]
    entry = next((e for e in baseline["sweep"]
                  if e["workers"] == workers and "innetwork" in e), None)
    if entry is None:
        report.errors.append(f"netreduce: no innetwork baseline at "
                             f"n={workers}")
        return
    model = str(entry["model"])
    spec = get_model(model)
    common = dict(num_servers=workers, batch_size=config["batch_size"],
                  iterations=config["iterations"],
                  fusion_bytes=int(config["fusion_mb"] * MB),
                  topology="fat-tree",
                  hosts_per_rack=config["hosts_per_rack"],
                  oversubscription=config["oversubscription"],
                  collect_metrics=True)
    fresh = {}
    for strategy in ("hierarchical", "innetwork"):
        bench = run_training_benchmark(spec, "RDMA", strategy=strategy,
                                       **common)
        if bench.crashed:
            report.errors.append(f"netreduce: {model}/{strategy}/"
                                 f"n{workers} crashed: "
                                 f"{bench.crash_reason}")
            return
        fresh[strategy] = bench
        report.add(Check("netreduce",
                         f"{model}.n{workers}.{strategy}_step_ms",
                         entry[strategy]["step_ms"],
                         bench.step_time * 1e3, "lower_better", tolerance))
    innet = fresh["innetwork"]
    # The wire-byte identity is exact in the simulator, so the match
    # tolerance here guards the accounting, not the schedule.
    report.add(Check("netreduce", f"{model}.n{workers}.innetwork_wire_mb",
                     entry["innetwork"]["wire_mb_per_worker"],
                     (innet.wire_bytes_per_worker() or 0.0) / MB,
                     "match", tolerance))
    groups = [v for k, v in (innet.innetwork or {}).items()
              if k != "plane"]
    spilled = sum(g["chunks_spilled"] for g in groups)
    if spilled:
        report.errors.append(f"netreduce: {spilled} chunks spilled to the "
                             f"host path (baseline: 0)")
    if entry.get("innetwork_speedup_vs_hierarchical", 0) > 1.0 and \
            not innet.step_time < fresh["hierarchical"].step_time:
        report.errors.append(
            f"netreduce: in-network no longer faster than hierarchical "
            f"at n={workers} ({innet.step_time * 1e3:.3f} ms vs "
            f"{fresh['hierarchical'].step_time * 1e3:.3f} ms)")


def probe_lossy(report: GateReport, baseline_dir: str,
                tolerance: float, workers: int = 8) -> None:
    """Re-run one lossy-transport cell plus the QP-mode identity."""
    from dataclasses import replace as _dc_replace

    from ..distributed.runner import (comm_config, run_training_benchmark,
                                      swap_comm_config)

    baseline = _load_baseline(baseline_dir, "BENCH_lossy.json")
    if baseline is None:
        report.errors.append("lossy: no BENCH_lossy.json baseline")
        return
    config = baseline["config"]
    entry = next((e for e in baseline["sweep"]
                  if e["workers"] == workers
                  and e["strategy"] == "hierarchical"), None)
    if entry is None:
        report.errors.append(f"lossy: no hierarchical baseline at "
                             f"n={workers}")
        return
    rate = max(c["loss_rate"] for c in entry["cells"])
    base_cell = next(c for c in entry["cells"]
                     if c["loss_rate"] == rate)
    max_ratio = float(config.get("max_retx_ratio", 3.0))
    common = dict(num_servers=workers, batch_size=config["batch_size"],
                  iterations=config["iterations"],
                  strategy="hierarchical", topology="fat-tree",
                  hosts_per_rack=entry["hosts_per_rack"],
                  oversubscription=config["oversubscription"])
    spec = get_model(config["model"])
    bench = run_training_benchmark(spec, "RDMA", loss_rate=rate,
                                   fault_seed=config["fault_seed"],
                                   **common)
    if bench.crashed:
        report.errors.append(f"lossy: n={workers}/p={rate} crashed: "
                             f"{bench.crash_reason}")
        return
    injected = bench.stats.faults["injected"]["log"]
    recovery = bench.stats.faults["recovery"]
    lost_bytes = sum(e["size"] for e in injected if e["kind"] == "loss")
    retx_bytes = recovery["retransmitted_bytes"]
    report.add(Check("lossy", f"n{workers}.p{rate:g}.step_ms",
                     base_cell["step_ms"], bench.step_time * 1e3,
                     "lower_better", tolerance))
    # The fault schedule is seeded, so loss and retransmit accounting
    # reproduce exactly: any drift is an accounting change, not noise.
    report.add(Check("lossy", f"n{workers}.p{rate:g}.lost_bytes",
                     base_cell["lost_bytes"], lost_bytes,
                     "match", tolerance))
    report.add(Check("lossy", f"n{workers}.p{rate:g}.retransmitted_bytes",
                     base_cell["retransmitted_bytes"], retx_bytes,
                     "match", tolerance))
    if recovery["gave_up"]:
        report.errors.append(f"lossy: {recovery['gave_up']} transfers "
                             f"exhausted their retry budget (baseline: 0)")
    if lost_bytes and retx_bytes > max_ratio * lost_bytes:
        report.errors.append(
            f"lossy: retransmitted {retx_bytes}B for {lost_bytes}B lost "
            f"(bound: {max_ratio:g}x) — selective repeat degraded toward "
            f"go-back-N")
    rc = run_training_benchmark(spec, "RDMA", **common)
    previous = swap_comm_config(
        _dc_replace(comm_config(), qp_mode="shared"))
    try:
        shared = run_training_benchmark(spec, "RDMA", **common)
    finally:
        swap_comm_config(previous)
    if rc.stats.iteration_times != shared.stats.iteration_times:
        report.errors.append(
            "lossy: loss-free clocks diverged between RC and shared QP "
            "modes (baseline: bit-identical)")


def probe_llm(report: GateReport, baseline_dir: str, tolerance: float,
              stages: int = 4) -> None:
    """Re-run one pipeline-training stage count and both serving modes."""
    from ..distributed.model_parallel import pipeline_bubble_report
    from ..distributed.runner import run_training_benchmark
    from ..llm import run_llm_serving_benchmark

    baseline = _load_baseline(baseline_dir, "BENCH_llm.json")
    if baseline is None:
        report.errors.append("llm: no BENCH_llm.json baseline")
        return

    train = baseline.get("train")
    if train is None:
        report.errors.append("llm: baseline has no 'train' section")
    else:
        config = train["config"]
        spec = get_model(config["model"])
        fresh = {}
        for schedule in ("gpipe", "1f1b"):
            base_cell = next((c for c in train["cells"]
                              if c["stages"] == stages
                              and c["schedule"] == schedule), None)
            if base_cell is None:
                report.errors.append(f"llm: no {schedule} baseline at "
                                     f"s={stages}")
                continue
            bench = run_training_benchmark(
                spec, "RDMA", num_servers=stages,
                batch_size=config["batch_size"],
                iterations=config["iterations"], strategy="llm",
                microbatches=config["microbatches"], schedule=schedule,
                collect_trace=True)
            if bench.crashed:
                report.errors.append(f"llm: {schedule}/s{stages} crashed: "
                                     f"{bench.crash_reason}")
                continue
            bubble = pipeline_bubble_report(bench.pipeline,
                                            bench.stall_report())
            fresh[schedule] = bubble
            report.add(Check("llm", f"s{stages}.{schedule}.step_ms",
                             base_cell["step_ms"], bench.step_time * 1e3,
                             "lower_better", tolerance))
            report.add(Check("llm", f"s{stages}.{schedule}.bubble_fraction",
                             base_cell["bubble_fraction"],
                             bubble["bubble_fraction"], "lower_better",
                             tolerance))
        if len(fresh) == 2 and train.get("onef1b_beats_gpipe_at_4plus") \
                and stages >= 4 and not (fresh["1f1b"]["bubble_fraction"]
                                         < fresh["gpipe"]["bubble_fraction"]):
            report.errors.append(
                f"llm: 1f1b no longer bubbles less than gpipe at "
                f"s={stages} ({fresh['1f1b']['bubble_fraction']:.4f} vs "
                f"{fresh['gpipe']['bubble_fraction']:.4f})")

    serve = baseline.get("serve")
    if serve is None:
        report.errors.append("llm: baseline has no 'serve' section")
        return
    config = serve["config"]
    spec = get_model(config["model"])
    static_rows = [r for r in serve["runs"] if r["mode"] == "static"]
    base_cont = next((r for r in serve["runs"]
                      if r["mode"] == "continuous"), None)
    base_static = (max(static_rows,
                       key=lambda r: r["decode_tokens_per_s"])
                   if static_rows else None)
    if base_cont is None or base_static is None:
        report.errors.append("llm: serve baseline is missing a mode")
        return
    common = dict(replicas=config["replicas"], qps=config["qps"],
                  requests=config["requests"], seed=config["seed"],
                  max_batch=config["max_batch"],
                  max_width=config["max_width"],
                  kv_budget_bytes=int(config["kv_budget_mb"] * MB))
    cont = run_llm_serving_benchmark(spec, mode="continuous", **common)
    static = run_llm_serving_benchmark(
        spec, mode="static", batch_timeout=base_static["batch_timeout"],
        **common)
    for label, base_row, run in (("continuous", base_cont, cont),
                                 ("static", base_static, static)):
        report.add(Check("llm", f"{label}.decode_tokens_per_s",
                         base_row["decode_tokens_per_s"],
                         run.decode_tokens_per_s, "higher_better",
                         tolerance))
        report.add(Check("llm", f"{label}.ttft_p99_s",
                         base_row["ttft"]["p99"],
                         run.ttft.get("p99", 0.0), "lower_better",
                         tolerance))
        report.add(Check("llm", f"{label}.completed",
                         base_row["completed"], run.completed,
                         "match", tolerance))
        if run.kv_leaked_bytes:
            report.errors.append(
                f"llm: {label} leaked {run.kv_leaked_bytes} KV-cache "
                f"bytes after drain (admission/eviction accounting "
                f"invariant: 0)")
    if serve.get("continuous_beats_static") \
            and not (cont.decode_tokens_per_s > static.decode_tokens_per_s
                     and cont.ttft.get("p99", 0.0)
                     <= static.ttft.get("p99", 0.0)):
        report.errors.append(
            f"llm: continuous batching no longer beats the best static "
            f"cell ({cont.decode_tokens_per_s:.0f} vs "
            f"{static.decode_tokens_per_s:.0f} tok/s; TTFT p99 "
            f"{cont.ttft.get('p99', 0.0) * 1e3:.1f} vs "
            f"{static.ttft.get('p99', 0.0) * 1e3:.1f} ms)")


_PROBE_FNS = {"overlap": probe_overlap, "scale": probe_scale,
              "serving": probe_serving, "netreduce": probe_netreduce,
              "lossy": probe_lossy, "llm": probe_llm}


# -- trajectory ------------------------------------------------------------------------


def _git_revision() -> str:
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha[:12]
    try:
        out = subprocess.run(["git", "rev-parse", "--short=12", "HEAD"],
                             capture_output=True, text=True, timeout=10)
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def append_trajectory(report: GateReport, path: str) -> None:
    """Append a compact gate record to the telemetry results file.

    The file keeps its telemetry-experiment payload untouched; the
    gate only appends to (and trims) its ``trajectory`` list, so
    ``BENCH_telemetry.json`` accumulates a bounded history of gate
    verdicts per revision.
    """
    payload: Dict[str, object] = {}
    if os.path.exists(path):
        with open(path) as handle:
            payload = json.load(handle)
    trajectory = payload.setdefault("trajectory", [])
    trajectory.append({
        "revision": _git_revision(),
        "ok": report.ok,
        "regressions": [c.to_dict() for c in report.regressions],
        "errors": list(report.errors),
        "metrics": {f"{c.probe}.{c.metric}": c.fresh
                    for c in report.checks},
    })
    del trajectory[:-TRAJECTORY_KEEP]
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


# -- CLI -------------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.regress",
        description="Compare fresh probe runs against committed "
                    "BENCH_*.json baselines; exit nonzero on regression.")
    parser.add_argument("--probes", default=",".join(PROBES),
                        help=f"comma-separated subset of {PROBES}")
    parser.add_argument("--baseline-dir", default="results",
                        help="directory holding the BENCH_*.json baselines")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="relative tolerance for gated metrics")
    parser.add_argument("--json", default=None,
                        help="dump the full comparison to this path")
    parser.add_argument("--trajectory", default=None,
                        help="append a gate record to this telemetry "
                             "results file (e.g. results/BENCH_telemetry"
                             ".json)")
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance < 1.0:
        parser.error(f"--tolerance must be in (0, 1), got {args.tolerance}")
    probes = [p.strip() for p in args.probes.split(",") if p.strip()]
    for probe in probes:
        if probe not in _PROBE_FNS:
            parser.error(f"unknown probe {probe!r}; have {PROBES}")

    report = GateReport()
    for probe in probes:
        print(f"[regress] probe: {probe}", flush=True)
        try:
            _PROBE_FNS[probe](report, args.baseline_dir, args.tolerance)
        except Exception as exc:  # noqa: BLE001 - a broken probe IS a failure
            report.errors.append(f"{probe}: probe raised {exc!r}")

    for check in report.checks:
        drift = ((check.fresh - check.baseline)
                 / max(abs(check.baseline), 1e-12) * 100)
        print(f"[regress] {check.verdict:9s} {check.probe}/{check.metric}: "
              f"{check.baseline:.6g} -> {check.fresh:.6g} ({drift:+.2f}%)")
    for error in report.errors:
        print(f"[regress] ERROR     {error}")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
    if args.trajectory:
        append_trajectory(report, args.trajectory)

    if report.ok:
        print(f"[regress] PASS: {len(report.checks)} checks, "
              f"0 regressions")
        return 0
    print(f"[regress] FAIL: {len(report.regressions)} regressions, "
          f"{len(report.errors)} errors")
    return 1


if __name__ == "__main__":
    sys.exit(main())
