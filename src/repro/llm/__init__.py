"""The transformer/LLM workload subsystem, spanning both planes.

Training: transformer specs in the model zoo plus the microbatched
pipeline schedules (GPipe / 1F1B) of
:mod:`repro.distributed.model_parallel`, run via the ``llm`` strategy
of :func:`repro.distributed.runner.run_training_benchmark`.

Serving: per-request KV-cache accounting
(:mod:`repro.serving.kvcache`), the continuous-batching token engine
(:mod:`repro.serving.llm`), and the end-to-end benchmark here.
"""

from ..distributed.model_parallel import (SCHEDULES, PipelineJob,
                                          pipeline_bubble_report,
                                          schedule_order)
from ..models.transformer import TransformerSpec, transformer
from ..serving.kvcache import KVCache, KVTracker
from ..serving.llm import (LLM_MODES, LLMFrontend, LLMReplica, LLMRequest,
                           LLMServingResult)
from .benchmark import run_llm_serving_benchmark
from .workload import (DEFAULT_OUTPUT_RANGE, DEFAULT_PROMPT_RANGE,
                       TOKEN_BYTES, LLMLoadGenerator)

__all__ = [
    "DEFAULT_OUTPUT_RANGE", "DEFAULT_PROMPT_RANGE", "KVCache", "KVTracker",
    "LLM_MODES", "LLMFrontend", "LLMLoadGenerator", "LLMReplica",
    "LLMRequest", "LLMServingResult", "PipelineJob", "SCHEDULES",
    "TOKEN_BYTES", "TransformerSpec", "pipeline_bubble_report",
    "run_llm_serving_benchmark", "schedule_order", "transformer",
]
