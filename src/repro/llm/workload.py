"""Seeded open-loop LLM request generation.

The CNN serving plane's load generator emits fixed-size feature
payloads; LLM traffic instead varies in two dimensions — prompt
length (what prefill pays) and output length (how long the request
occupies a decode slot and how far its KV cache grows).  Both are
drawn from seeded uniform ranges so every run is reproducible.

Requests reach the frontend over the simulated fabric: token ids are
4 bytes each and travel as one one-sided RDMA write (fabric-resident
clients, the zero-copy ingest path the paper argues for).
"""

from __future__ import annotations

import random
from typing import Generator, List, Tuple

from ..serving.llm import LLMFrontend, LLMRequest
from ..simnet.arrivals import make_gaps
from ..simnet.simulator import Simulator
from ..simnet.topology import Host


#: bytes per token id on the wire
TOKEN_BYTES = 4

DEFAULT_PROMPT_RANGE = (32, 256)
DEFAULT_OUTPUT_RANGE = (16, 96)


class LLMLoadGenerator:
    """Open-loop client population feeding one LLM frontend."""

    def __init__(self, sim: Simulator, frontend: LLMFrontend, host: Host, *,
                 qps: float, count: int, seed: int = 0,
                 arrival: str = "poisson",
                 prompt_range: Tuple[int, int] = DEFAULT_PROMPT_RANGE,
                 output_range: Tuple[int, int] = DEFAULT_OUTPUT_RANGE
                 ) -> None:
        if prompt_range[0] < 1 or prompt_range[0] > prompt_range[1]:
            raise ValueError(f"bad prompt range {prompt_range}")
        if output_range[0] < 1 or output_range[0] > output_range[1]:
            raise ValueError(f"bad output range {output_range}")
        self.sim = sim
        self.frontend = frontend
        self.host = host
        self.qps = qps
        self.count = count
        self.seed = seed
        self.arrival = arrival
        self.prompt_range = prompt_range
        self.output_range = output_range
        self.requests: List[LLMRequest] = []
        self.done = sim.event()

    def run(self) -> Generator:
        """Process: emit ``count`` requests, then trigger :attr:`done`."""
        rng = random.Random(self.seed)
        gaps = make_gaps(self.arrival, rng, self.qps)
        pending = []
        for req_id in range(self.count):
            yield (next(gaps))
            request = LLMRequest(
                req_id=req_id, created=self.sim.now,
                prompt_tokens=rng.randint(*self.prompt_range),
                max_new_tokens=rng.randint(*self.output_range))
            self.requests.append(request)
            # Open loop: delivery is its own process so ingest never
            # delays the next arrival.
            pending.append(self.sim.spawn(self._deliver(request),
                                          name=f"llm-ingest-{req_id}"))
        yield self.sim.all_of(pending)
        if not self.done.triggered:
            self.done.succeed()

    def _deliver(self, request: LLMRequest) -> Generator:
        cost = self.host.cost
        yield (cost.rdma_write_time(request.prompt_tokens * TOKEN_BYTES))
        self.frontend.submit(request, self.sim.now)
