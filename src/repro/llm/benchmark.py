"""End-to-end LLM serving benchmark: one deployment, one result row.

Builds a ``1 + replicas``-host cluster — ``hosts[0]`` the frontend
and ingest point, the rest one token engine each — wires the request
plane (seeded load -> admission -> least-loaded dispatch -> KV-budgeted
engine) and drives it until every request is terminal.  The same entry
point runs both engine modes, so ``llmserve`` measures continuous
batching against the fixed-batcher baseline on identical arrivals.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from ..core.publication import park_until
from ..models.spec import MB
from ..models.transformer import TransformerSpec
from ..observability.registry import MetricsRegistry
from ..serving.config import serving_config
from ..serving.llm import (LLMFrontend, LLMReplica, LLMServingResult,
                           LLM_MODES)
from ..simnet.topology import Cluster
from .workload import (DEFAULT_OUTPUT_RANGE, DEFAULT_PROMPT_RANGE,
                       LLMLoadGenerator)


def run_llm_serving_benchmark(
        spec: TransformerSpec, *, mode: str = "continuous",
        replicas: Optional[int] = None, qps: float = 60.0,
        requests: int = 200, seed: int = 0, arrival: Optional[str] = None,
        kv_budget_bytes: Optional[int] = None,
        max_width: Optional[int] = None, max_batch: Optional[int] = None,
        batch_timeout: Optional[float] = None,
        admission_limit: Optional[int] = None,
        prompt_range: Tuple[int, int] = DEFAULT_PROMPT_RANGE,
        output_range: Tuple[int, int] = DEFAULT_OUTPUT_RANGE,
        time_limit: float = 3600.0) -> LLMServingResult:
    """Run one LLM serving deployment to completion.

    Unset knobs default to the serving config (see
    :func:`repro.serving.config.configure_serving`), so the CLI's
    ``--kv-budget-mb``/``--max-width`` flags reach this path.
    """
    if not isinstance(spec, TransformerSpec):
        raise ValueError(f"{spec.name} is not a transformer; LLM serving "
                         "needs a KV-cache cost model")
    if mode not in LLM_MODES:
        raise ValueError(f"unknown llm mode {mode!r}; have {LLM_MODES}")
    config = serving_config()
    if replicas is None:
        replicas = config.replicas
    if arrival is None:
        arrival = config.arrival
    if kv_budget_bytes is None:
        kv_budget_bytes = int(config.kv_budget_mb * MB)
    if max_width is None:
        max_width = config.max_width
    if max_batch is None:
        max_batch = config.max_batch
    if batch_timeout is None:
        batch_timeout = config.batch_timeout
    if admission_limit is None:
        admission_limit = config.admission_limit

    cluster = Cluster(1 + replicas, name_prefix="llm")
    sim = cluster.sim
    metrics = MetricsRegistry()
    replica_objs = [
        LLMReplica(rank, sim, spec, kv_budget_bytes=kv_budget_bytes,
                   max_width=max_width, mode=mode, max_batch=max_batch,
                   batch_timeout=batch_timeout, metrics=metrics)
        for rank in range(replicas)
    ]
    frontend = LLMFrontend(replica_objs, admission_limit=admission_limit,
                           metrics=metrics)
    load = LLMLoadGenerator(sim, frontend, cluster.hosts[0], qps=qps,
                            count=requests, seed=seed, arrival=arrival,
                            prompt_range=prompt_range,
                            output_range=output_range)
    for replica in replica_objs:
        sim.spawn(replica.engine(), name=f"llm-engine-{replica.rank}")
        if replica.batcher is not None:
            sim.spawn(replica.batcher.run(),
                      name=f"llm-batcher-{replica.rank}")
    sim.spawn(load.run(), name="llm-load")

    def main() -> Generator:
        yield load.done
        yield from park_until(sim, cluster.hosts[0],
                              lambda: all(r.terminal
                                          for r in load.requests))

    sim.run_until_complete(sim.spawn(main(), name="llm-main"),
                           limit=time_limit)
    makespan = sim.now
    for replica in replica_objs:
        replica.stop()

    def hist_dict(name: str):
        histogram = metrics.histograms.get(name)
        return histogram.to_dict() if histogram is not None else {}

    width_hist = metrics.histograms.get("llm.decode_width")
    kv_stats = {
        "budget_bytes": kv_budget_bytes,
        "peak_bytes": max(r.cache.peak for r in replica_objs),
        "admissions": sum(r.cache.admissions for r in replica_objs),
        "denials": sum(r.cache.denials for r in replica_objs),
        "evictions": sum(r.cache.evictions for r in replica_objs),
        "grown_tokens": sum(r.cache.grown_tokens for r in replica_objs),
        "outstanding": sum(r.cache.outstanding for r in replica_objs),
    }
    return LLMServingResult(
        model=spec.name, mode=mode, replicas=replicas, qps=qps, seed=seed,
        arrival=arrival, kv_budget_bytes=kv_budget_bytes,
        max_width=max_width, max_batch=max_batch,
        batch_timeout=batch_timeout, total=requests,
        completed=sum(r.completed for r in replica_objs),
        shed=frontend.shed,
        preemptions=sum(r.cache.evictions for r in replica_objs),
        makespan=makespan,
        prefills=sum(r.prefills for r in replica_objs),
        decode_steps=sum(r.decode_steps for r in replica_objs),
        decode_tokens=sum(r.decode_tokens for r in replica_objs),
        mean_width=(width_hist.mean if width_hist is not None else 0.0),
        ttft=hist_dict("llm.ttft_s"), tpot=hist_dict("llm.tpot_s"),
        latency=hist_dict("llm.latency_s"), kv=kv_stats,
        kv_leaked_bytes=sum(r.cache.used for r in replica_objs))
