"""Chrome ``trace_event`` JSON export (viewable in Perfetto).

The mapping follows the trace-event format's process/thread model:
every simulated host becomes a *process* (``pid``), every tracer track
within it (executor, CQ poller, NIC queue pair, protocol engine) a
*thread* (``tid``).  Spans export as complete (``"ph": "X"``) events
with microsecond timestamps — the trace-event clock unit — derived
from the simulator's second-denominated clock.

``chrome_trace_events`` takes a ``pid_base``/``label`` so several runs
(one per benchmark configuration in a harness sweep) can be merged
into a single file without pid collisions.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .tracer import Tracer


_US = 1e6  # simulator seconds -> trace microseconds


def chrome_trace_events(tracer: Tracer, pid_base: int = 1,
                        label: str = "") -> List[dict]:
    """Convert a tracer's spans to a flat trace-event list."""
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    events: List[dict] = []
    prefix = f"{label}/" if label else ""

    for host, track in tracer.tracks():
        if host not in pids:
            pid = pids[host] = pid_base + len(pids)
            events.append({"ph": "M", "pid": pid, "tid": 0,
                           "name": "process_name",
                           "args": {"name": f"{prefix}{host}"}})
        key = (host, track)
        if key not in tids:
            tid = tids[key] = 1 + sum(1 for k in tids if k[0] == host)
            events.append({"ph": "M", "pid": pids[host], "tid": tid,
                           "name": "thread_name", "args": {"name": track}})

    for span in tracer.spans:
        event = {
            "ph": "X",
            "pid": pids[span.host],
            "tid": tids[(span.host, span.track)],
            "ts": span.start * _US,
            "dur": span.duration * _US,
            "cat": span.category,
            "name": span.name,
        }
        if span.args:
            event["args"] = span.args
        events.append(event)
    return events


def to_chrome_trace(tracer: Tracer, label: str = "") -> dict:
    """The full JSON-object form of the trace file."""
    return {
        "traceEvents": chrome_trace_events(tracer, label=label),
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.observability",
                      "clock": "simulated"},
    }


def write_chrome_trace(tracer: Tracer, path: str,
                       label: str = "") -> None:
    """Serialize the trace to ``path`` (overwrites)."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(tracer, label=label), handle)


def write_merged_trace(events: List[dict], path: str) -> None:
    """Write an already-merged multi-run event list to ``path``."""
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms",
                   "otherData": {"generator": "repro.observability",
                                 "clock": "simulated"}}, handle)
