"""Chrome ``trace_event`` JSON export (viewable in Perfetto).

The mapping follows the trace-event format's process/thread model:
every simulated host becomes a *process* (``pid``), every tracer track
within it (executor, CQ poller, NIC queue pair, protocol engine) a
*thread* (``tid``).  Spans export as complete (``"ph": "X"``) events
with microsecond timestamps — the trace-event clock unit — derived
from the simulator's second-denominated clock.

Export is **streaming**: :class:`ChromeTraceStream` serializes one
event at a time straight to the file, so a 256-worker trace never
builds the whole document in memory; an optional event cap stops the
file from growing unboundedly and leaves an explicit instant-marker
event (``"trace truncated"``) so a viewer knows spans are missing.
Budget-truncated tracers (see :class:`~.tracer.TraceBudget`) get the
same marker carrying their dropped-span count.

``ChromeTraceStream.add_run`` takes a ``pid_base``/``label`` so
several runs (one per benchmark configuration in a harness sweep) can
be merged into a single file without pid collisions.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .tracer import Tracer


_US = 1e6  # simulator seconds -> trace microseconds


def _truncation_marker(pid: int, dropped: int, reason: str) -> dict:
    """The explicit instant event marking an incomplete trace."""
    return {"ph": "i", "pid": pid, "tid": 0, "ts": 0, "s": "g",
            "name": "trace truncated",
            "args": {"dropped_spans": dropped, "reason": reason}}


def _span_events(tracer: Tracer, pid_base: int, label: str):
    """Yield one run's metadata + span events (streaming-friendly)."""
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    prefix = f"{label}/" if label else ""

    for host, track in tracer.tracks():
        if host not in pids:
            pid = pids[host] = pid_base + len(pids)
            yield {"ph": "M", "pid": pid, "tid": 0,
                   "name": "process_name",
                   "args": {"name": f"{prefix}{host}"}}
        key = (host, track)
        if key not in tids:
            tid = tids[key] = 1 + sum(1 for k in tids if k[0] == host)
            yield {"ph": "M", "pid": pids[host], "tid": tid,
                   "name": "thread_name", "args": {"name": track}}

    for span in tracer.spans:
        event = {
            "ph": "X",
            "pid": pids[span.host],
            "tid": tids[(span.host, span.track)],
            "ts": span.start * _US,
            "dur": span.duration * _US,
            "cat": span.category,
            "name": span.name,
        }
        if span.args:
            event["args"] = span.args
        yield event

    if tracer.truncated:
        yield _truncation_marker(pid_base, tracer.dropped_spans,
                                 "trace budget")


def chrome_trace_events(tracer: Tracer, pid_base: int = 1,
                        label: str = "") -> List[dict]:
    """Convert a tracer's spans to a flat trace-event list (in memory)."""
    return list(_span_events(tracer, pid_base, label))


def to_chrome_trace(tracer: Tracer, label: str = "") -> dict:
    """The full JSON-object form of the trace file."""
    return {
        "traceEvents": chrome_trace_events(tracer, label=label),
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.observability",
                      "clock": "simulated"},
    }


class ChromeTraceStream:
    """Incremental trace-file writer with an optional event cap.

    Events are serialized one at a time as they are appended — the
    document never exists in memory.  ``max_events`` caps complete
    ("X") span events across all runs; once exhausted, one truncation
    marker is written and further span events are counted but dropped.
    Metadata events (process/thread names) are exempt from the cap so
    whatever spans did land stay attributed.
    """

    def __init__(self, path: str, max_events: Optional[int] = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be positive")
        self.path = path
        self.max_events = max_events
        self.span_events = 0
        self.dropped_events = 0
        self._marker_written = False
        self._handle = open(path, "w")
        self._handle.write('{"traceEvents": [')
        self._first = True

    def _write_event(self, event: dict) -> None:
        if self._first:
            self._first = False
        else:
            self._handle.write(", ")
        self._handle.write(json.dumps(event))

    def add_event(self, event: dict) -> None:
        """Append one raw trace event, honouring the span cap."""
        if event.get("ph") == "X":
            if (self.max_events is not None
                    and self.span_events >= self.max_events):
                self.dropped_events += 1
                return
            self.span_events += 1
        self._write_event(event)

    def add_run(self, tracer: Tracer, pid_base: int = 1,
                label: str = "") -> None:
        """Stream one tracer's events into the file."""
        for event in _span_events(tracer, pid_base, label):
            self.add_event(event)

    def close(self) -> None:
        if self._handle.closed:
            return
        if self.dropped_events and not self._marker_written:
            self._write_event(_truncation_marker(0, self.dropped_events,
                                                 "event cap"))
            self._marker_written = True
        self._handle.write(
            '], "displayTimeUnit": "ms", '
            '"otherData": {"generator": "repro.observability", '
            '"clock": "simulated"}}')
        self._handle.close()

    def __enter__(self) -> "ChromeTraceStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_chrome_trace(tracer: Tracer, path: str, label: str = "",
                       max_events: Optional[int] = None) -> None:
    """Serialize the trace to ``path`` (overwrites), streaming."""
    with ChromeTraceStream(path, max_events=max_events) as stream:
        stream.add_run(tracer, label=label)


def write_merged_trace(events: List[dict], path: str) -> None:
    """Write an already-merged multi-run event list to ``path``."""
    with ChromeTraceStream(path) as stream:
        for event in events:
            stream.add_event(event)
