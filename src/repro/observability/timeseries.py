"""Fixed-memory streaming time-series for fleet-scale telemetry.

The PR 2 tracer keeps every span and the registry's histograms keep
every observation — exact, and exactly what a 256-worker fat-tree
sweep cannot afford: a single iteration posts tens of thousands of
verbs per rack, so O(events) storage turns the observability layer
into the memory bottleneck it is supposed to find.  This module is the
O(1)-per-metric replacement:

* :class:`P2Quantile` — the Jain/Chlamtac P² algorithm: one running
  quantile estimate from five markers, no stored samples;
* :class:`QuantileSketch` — count/sum/min/max plus a P² marker per
  requested percentile, serializing like a Histogram's ``to_dict``;
* :class:`RingSeries` — a bounded (time, value) ring that *decimates*
  when full: it drops every other retained point and doubles its
  stride, so it always spans the whole run at capped resolution;
* :class:`Telemetry` — named series + sketches with automatic
  per-rack and fleet rollups, the store behind ``--telemetry-out``.

Nothing here touches the simulator clock: recording is pure
bookkeeping, so telemetry-enabled runs stay bit-identical to bare
ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class P2Quantile:
    """Streaming estimate of one quantile (P² algorithm, 5 markers).

    Exact until five observations arrive, then a constant-space
    piecewise-parabolic approximation.  ``p`` is a fraction in (0, 1).
    """

    __slots__ = ("p", "_heights", "_positions", "_desired", "_increments",
                 "count")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile fraction {p} not in (0, 1)")
        self.p = p
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p,
                         5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self.count = 0

    def observe(self, value: float) -> None:
        self.count += 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(value)
            heights.sort()
            return
        # Find the marker cell the observation falls into.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        positions = self._positions
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers toward their desired spots.
        for i in (1, 2, 3):
            drift = self._desired[i] - positions[i]
            if ((drift >= 1.0 and positions[i + 1] - positions[i] > 1.0)
                    or (drift <= -1.0
                        and positions[i - 1] - positions[i] < -1.0)):
                step = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1])
            / (n[i] - n[i - 1]))

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """The current estimate (exact below five observations)."""
        heights = self._heights
        if not heights:
            return 0.0
        if self.count < 5:
            rank = max(0, min(len(heights) - 1,
                              int(round(self.p * (len(heights) - 1)))))
            return heights[rank]
        return heights[2]


class QuantileSketch:
    """Constant-space summary: count/sum/min/max + P² percentiles.

    Serializes like :meth:`repro.observability.registry.Histogram.to_dict`
    so telemetry consumers can treat the two interchangeably.
    """

    __slots__ = ("name", "percentiles", "count", "total", "_min", "_max",
                 "_markers")

    def __init__(self, name: str,
                 percentiles: Sequence[float] = (50, 90, 99)) -> None:
        self.name = name
        self.percentiles: Tuple[float, ...] = tuple(percentiles)
        self.count = 0
        self.total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._markers = {p: P2Quantile(p / 100.0) for p in self.percentiles}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        for marker in self._markers.values():
            marker.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def percentile(self, p: float) -> float:
        marker = self._markers.get(p)
        if marker is None:
            raise KeyError(f"sketch {self.name} does not track p{p:g}")
        return marker.value

    def to_dict(self) -> Dict[str, float]:
        out = {"count": self.count, "sum": self.total, "min": self.min,
               "max": self.max, "mean": self.mean}
        for p in self.percentiles:
            out[f"p{p:g}"] = self._markers[p].value
        return out

    def __repr__(self) -> str:
        return f"QuantileSketch({self.name}, n={self.count})"


class RingSeries:
    """A bounded (time, value) series that decimates instead of growing.

    Observations are appended; when ``capacity`` points are retained
    the ring drops every other point and doubles its sampling stride,
    so memory stays O(capacity) while the retained points always span
    the full recording window (a flight recorder would instead keep
    only the tail — see ``Tracer`` for that).  Count/sum/min/max/last
    stay exact over *all* observations regardless of decimation.
    """

    __slots__ = ("name", "capacity", "stride", "_phase", "points", "count",
                 "total", "_min", "_max", "last", "last_time")

    def __init__(self, name: str, capacity: int = 256) -> None:
        if capacity < 2:
            raise ValueError("RingSeries capacity must be at least 2")
        self.name = name
        self.capacity = capacity
        self.stride = 1
        self._phase = 0
        self.points: List[Tuple[float, float]] = []
        self.count = 0
        self.total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self.last = 0.0
        self.last_time = 0.0

    def observe(self, t: float, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self.last = value
        self.last_time = t
        if self._phase % self.stride == 0:
            self.points.append((t, value))
            if len(self.points) >= self.capacity:
                self.points = self.points[::2]
                self.stride *= 2
        self._phase += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def to_dict(self, include_points: bool = False) -> Dict[str, object]:
        out: Dict[str, object] = {
            "count": self.count, "sum": self.total, "min": self.min,
            "max": self.max, "mean": self.mean, "last": self.last,
            "last_time": self.last_time, "stride": self.stride,
        }
        if include_points:
            out["points"] = [[t, v] for t, v in self.points]
        return out

    def __repr__(self) -> str:
        return (f"RingSeries({self.name}, n={self.count}, "
                f"retained={len(self.points)}, stride={self.stride})")


def rack_label(host: str, hosts_per_rack: Optional[int]) -> Optional[str]:
    """``server12`` with 8-wide racks -> ``rack1``; None when unknown.

    Host names end in their index by construction (``server{i}``,
    ``local0``); anything else rolls up to the fleet only.
    """
    if not hosts_per_rack or hosts_per_rack < 1:
        return None
    digits = ""
    for ch in reversed(host):
        if ch.isdigit():
            digits = ch + digits
        else:
            break
    if not digits:
        return None
    return f"rack{int(digits) // hosts_per_rack}"


@dataclass
class Telemetry:
    """Named bounded series and sketches with rack/fleet rollups.

    ``observe_host`` feeds three levels at once: the per-host series
    (bounded ring + sketch), the host's rack rollup sketch, and the
    fleet rollup sketch.  Per-host memory is O(capacity); rollups are
    O(1) — a 256-worker run's telemetry is a few hundred small
    objects, not a function of event count.
    """

    hosts_per_rack: Optional[int] = None
    series_capacity: int = 256
    percentiles: Tuple[float, ...] = (50, 99)
    series: Dict[str, RingSeries] = field(default_factory=dict)
    sketches: Dict[str, QuantileSketch] = field(default_factory=dict)

    def ring(self, name: str) -> RingSeries:
        ring = self.series.get(name)
        if ring is None:
            ring = self.series[name] = RingSeries(
                name, capacity=self.series_capacity)
        return ring

    def sketch(self, name: str) -> QuantileSketch:
        sketch = self.sketches.get(name)
        if sketch is None:
            sketch = self.sketches[name] = QuantileSketch(
                name, percentiles=self.percentiles)
        return sketch

    def observe(self, metric: str, t: float, value: float) -> None:
        """Feed one fleet-level metric (series + sketch)."""
        self.ring(metric).observe(t, value)
        self.sketch(metric).observe(value)

    def observe_host(self, metric: str, host: str, t: float,
                     value: float) -> None:
        """Feed one per-host metric plus its rack and fleet rollups."""
        self.observe(f"{metric}:{host}", t, value)
        rack = rack_label(host, self.hosts_per_rack)
        if rack is not None:
            self.sketch(f"{metric}:{rack}").observe(value)
        self.sketch(f"{metric}:fleet").observe(value)

    #: span categories digested into per-host series (category -> metric)
    SPAN_METRICS = {"verb": "verb_latency", "wire": "wire_time"}

    def observe_span(self, category: str, host: str, track: str,
                     start: float, end: float) -> None:
        """O(1) digest of one tracer span (called before any sampling).

        Verb spans feed per-host ``verb_latency`` series — the signal
        the straggler detector runs MAD z-scores over; wire spans feed
        per-host occupancy; fabric ``link_queue`` spans feed per-link
        queueing series plus a fleet rollup.  Everything else is
        ignored here (the breakdown accumulators already own it).
        """
        metric = self.SPAN_METRICS.get(category)
        duration = end - start
        if metric is not None:
            self.observe_host(metric, host, start, duration)
        elif category == "link_queue":
            link = track[5:] if track.startswith("link:") else track
            self.observe(f"link_queue_wait:{link}", start, duration)
            self.sketch("link_queue_wait:fleet").observe(duration)

    # -- queries ---------------------------------------------------------------------

    def host_statistic(self, metric: str, stat: str = "mean"
                       ) -> Dict[str, float]:
        """Per-host values of ``stat`` for one metric family.

        ``stat`` is ``"mean"``, ``"max"``, ``"last"``, or ``"p<N>"``
        (served from the sketch).  Rack/fleet rollups are excluded —
        the result maps genuine host names only.
        """
        prefix = f"{metric}:"
        out: Dict[str, float] = {}
        for name, ring in self.series.items():
            if not name.startswith(prefix):
                continue
            host = name[len(prefix):]
            if host == "fleet" or host.startswith("rack"):
                continue
            if stat == "mean":
                out[host] = ring.mean
            elif stat == "max":
                out[host] = ring.max
            elif stat == "last":
                out[host] = ring.last
            elif stat.startswith("p"):
                out[host] = self.sketch(name).percentile(float(stat[1:]))
            else:
                raise ValueError(f"unknown statistic {stat!r}")
        return out

    def to_dict(self, include_points: bool = False) -> Dict[str, object]:
        return {
            "hosts_per_rack": self.hosts_per_rack,
            "series": {name: ring.to_dict(include_points=include_points)
                       for name, ring in sorted(self.series.items())},
            "rollups": {name: sketch.to_dict()
                        for name, sketch in sorted(self.sketches.items())
                        if name.rpartition(":")[2] == "fleet"
                        or name.rpartition(":")[2].startswith("rack")},
        }
