"""End-to-end tracing and profiling for the simulated stack.

The evaluation of a "where does the time go" paper rests on being able
to decompose an iteration into compute, serialization, wire transit,
and poll-wait — this package provides that decomposition as a
first-class subsystem instead of ad-hoc prints:

* :class:`Tracer` — timestamped spans (clocked by ``Simulator.now``)
  from every layer: executor op execution and park/wake cycles, RDMA
  verb issue/complete, CQ polling, tensor-transfer protocol phases,
  and collective fragment hops.  Enabled per cluster via
  ``Cluster.enable_tracing()``; when disabled every instrumented fast
  path pays a single attribute check (the ``MetricsCollector``
  pattern).  A :class:`TraceBudget` bounds what a tracer *retains*
  (per-category sampling, host subsets, a hard span cap, a per-host
  flight-recorder ring) without ever touching what it *accounts* —
  the sum-to-step-time invariant survives any budget.
* :class:`MetricsRegistry` — counters, gauges (with bounded history
  sampling), and histograms (transfer-size distribution, poll
  iterations per wake, CQ depth, arena bytes registered) attached to
  the tracer and merged into ``RunStats``.
* :class:`Telemetry` — fixed-memory streaming time-series: decimating
  ring series plus P² quantile sketches per metric, with per-rack and
  fleet rollups.  O(hosts + links) memory however long the run.
* :mod:`~repro.observability.anomaly` — online MAD-based straggler
  and link-hotspot detection plus serving SLO burn-rate alerts,
  emitting structured sim-time-stamped :class:`Incident` records.
* :mod:`~repro.observability.chrome_trace` — streaming Chrome
  ``trace_event`` JSON export viewable in Perfetto: one process per
  simulated host, one thread per executor / CQ poller / protocol
  track, with explicit truncation markers when a cap bites.
* :class:`StallReport` — the per-iteration stall attribution
  (compute / wire / poll-wait / serialization), i.e. a programmatic
  Figure-8-style breakdown whose components sum to the measured
  iteration time by construction.
* :mod:`~repro.observability.capture` — the harness-facing sink behind
  ``--trace-out`` / ``--metrics-json`` / ``--telemetry-out``.
"""

from .anomaly import (Incident, detect_link_hotspots, detect_outliers,
                      detect_run_anomalies, detect_stragglers,
                      mad_zscores, slo_burn_alerts)
from .chrome_trace import (ChromeTraceStream, chrome_trace_events,
                           to_chrome_trace, write_chrome_trace,
                           write_merged_trace)
from .registry import (Counter, DEFAULT_PERCENTILES, Gauge,
                       Histogram, MetricsRegistry)
from .stall import StallReport, build_stall_report
from .timeseries import (P2Quantile, QuantileSketch, RingSeries,
                         Telemetry, rack_label)
from .tracer import (CATEGORIES, EXECUTOR_CATEGORIES, Span, TraceBudget,
                     Tracer, executor_track, protocol_track)
from .capture import (capture_enabled, capture_run, configure_capture,
                      flush_capture, reset_capture, telemetry_enabled)

__all__ = [
    "CATEGORIES", "ChromeTraceStream", "Counter", "DEFAULT_PERCENTILES",
    "EXECUTOR_CATEGORIES", "Gauge", "Histogram", "Incident",
    "MetricsRegistry", "P2Quantile", "QuantileSketch", "RingSeries",
    "Span", "StallReport", "Telemetry", "TraceBudget", "Tracer",
    "build_stall_report", "capture_enabled", "capture_run",
    "chrome_trace_events", "configure_capture", "detect_link_hotspots",
    "detect_outliers", "detect_run_anomalies", "detect_stragglers",
    "executor_track", "flush_capture", "mad_zscores", "protocol_track",
    "rack_label", "reset_capture", "slo_burn_alerts", "telemetry_enabled",
    "to_chrome_trace", "write_chrome_trace", "write_merged_trace",
]
