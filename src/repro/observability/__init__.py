"""End-to-end tracing and profiling for the simulated stack.

The evaluation of a "where does the time go" paper rests on being able
to decompose an iteration into compute, serialization, wire transit,
and poll-wait — this package provides that decomposition as a
first-class subsystem instead of ad-hoc prints:

* :class:`Tracer` — timestamped spans (clocked by ``Simulator.now``)
  from every layer: executor op execution and park/wake cycles, RDMA
  verb issue/complete, CQ polling, tensor-transfer protocol phases,
  and collective fragment hops.  Enabled per cluster via
  ``Cluster.enable_tracing()``; when disabled every instrumented fast
  path pays a single attribute check (the ``MetricsCollector``
  pattern).
* :class:`MetricsRegistry` — counters and histograms (transfer-size
  distribution, poll iterations per wake, CQ depth, arena bytes
  registered) attached to the tracer and merged into ``RunStats``.
* :mod:`~repro.observability.chrome_trace` — Chrome ``trace_event``
  JSON export viewable in Perfetto: one process per simulated host,
  one thread per executor / CQ poller / protocol track.
* :class:`StallReport` — the per-iteration stall attribution
  (compute / wire / poll-wait / serialization), i.e. a programmatic
  Figure-8-style breakdown whose components sum to the measured
  iteration time by construction.
* :mod:`~repro.observability.capture` — the harness-facing sink behind
  ``--trace-out`` / ``--metrics-json``.
"""

from .chrome_trace import (chrome_trace_events, to_chrome_trace,
                           write_chrome_trace)
from .registry import (Counter, DEFAULT_PERCENTILES, Gauge,
                       Histogram, MetricsRegistry)
from .stall import StallReport, build_stall_report
from .tracer import (CATEGORIES, EXECUTOR_CATEGORIES, Span, Tracer,
                     executor_track, protocol_track)
from .capture import (capture_enabled, capture_run, configure_capture,
                      flush_capture, reset_capture)

__all__ = [
    "CATEGORIES", "Counter", "DEFAULT_PERCENTILES",
    "EXECUTOR_CATEGORIES", "Gauge", "Histogram",
    "MetricsRegistry", "Span", "StallReport", "Tracer",
    "build_stall_report", "capture_enabled", "capture_run",
    "chrome_trace_events", "configure_capture", "executor_track",
    "flush_capture", "protocol_track", "reset_capture", "to_chrome_trace",
    "write_chrome_trace",
]
