"""The tracer: timestamped spans on (host, track) timelines.

A *span* is one interval of simulated time attributed to a category
("op", "verb", "cq_poll", "collective", ...) on a *track* — the
equivalent of a thread inside a host's process in the Chrome trace
model.  Components record spans retrospectively (they know both
endpoints once the work is booked), so tracing never yields and never
perturbs simulated timing: a traced run and an untraced run produce
bit-identical clocks.

Besides the raw span list the tracer keeps **breakdown accumulators**:
``account()`` adds a span's duration to a per-(host, track, iteration)
category sum.  The graph executor routes *every* simulated second of
its iteration through ``account()`` (each ``yield`` is bracketed), so
the per-iteration category sums add up to the executor's wall time
exactly — the invariant the stall-attribution report is built on.

High-frequency micro-samples (scheduler dispatch, individual flag-byte
checks) are accounted but not emitted as spans (``emit=False``); they
would dominate the trace file while being individually meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .registry import MetricsRegistry


#: canonical span categories, by layer
CATEGORIES = (
    "op",             # executor: one operator's execution
    "sched",          # executor: ready-queue pop + dispatch (not emitted)
    "poll",           # executor: flag-byte checks + requeues (not emitted)
    "poll_wait",      # executor: parked, all pollers missed (idle backoff)
    "wire_wait",      # executor: parked, waiting on async completions
    "verb",           # NIC: one RDMA verb from post to completion
    "wire",           # NIC/TCP: payload occupancy on the wire
    "cq_poll",        # device layer: one CQ poller wake + drain
    "protocol",       # transfer layer: one protocol exchange (§3.2/§3.3)
    "serialization",  # transfer layer: staging copies, meta pack/unpack
    "collective",     # collective fragment chunk hop
    "link_queue",     # fabric: transfer queued behind a busy trunk link
    "iteration",      # session: one mini-batch iteration
    "fault",          # fault plane: one injected fault (zero-duration)
    "retry",          # recovery layer: one backoff + re-issue
)

#: categories the executor attributes its own timeline to; these sum
#: to the executor's iteration wall time by construction
EXECUTOR_CATEGORIES = ("op", "sched", "poll", "poll_wait", "wire_wait",
                       "serialization")


def executor_track(device: str) -> str:
    """Track name of the executor thread for ``device``."""
    return f"executor:{device}"


def protocol_track(device: str) -> str:
    """Track carrying transfer-protocol phases issued for ``device``."""
    return f"protocol:{device}"


@dataclass
class Span:
    """One attributed interval of simulated time."""

    category: str
    name: str
    host: str       # Chrome trace "process"
    track: str      # Chrome trace "thread" within the host
    start: float
    end: float
    args: Optional[Dict[str, object]] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class IterationWindow:
    """Absolute clock bounds of one session iteration."""

    iteration: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Span sink + breakdown accumulators + metrics registry."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.metrics = MetricsRegistry()
        #: (host, track, iteration) -> {category: seconds}
        self.breakdowns: Dict[Tuple[str, str, int], Dict[str, float]] = {}
        self.iteration_windows: List[IterationWindow] = []

    # -- recording -------------------------------------------------------------------

    def record(self, category: str, name: str, host: str, track: str,
               start: float, end: float,
               args: Optional[Dict[str, object]] = None) -> Span:
        """Append one retrospective span; returns it."""
        span = Span(category=category, name=name, host=host, track=track,
                    start=start, end=max(end, start), args=args)
        self.spans.append(span)
        return span

    def account(self, host: str, track: str, iteration: int, category: str,
                start: float, end: float, name: Optional[str] = None,
                emit: bool = True) -> None:
        """Add ``end - start`` to a per-iteration category sum.

        With ``emit`` the interval is also recorded as a span (skipped
        for zero-duration intervals); without it only the accumulator
        moves — used for micro-samples too frequent to plot.
        """
        duration = end - start
        if duration <= 0:
            return
        key = (host, track, iteration)
        bucket = self.breakdowns.get(key)
        if bucket is None:
            bucket = self.breakdowns[key] = {}
        bucket[category] = bucket.get(category, 0.0) + duration
        if emit:
            self.record(category, name or category, host, track, start, end,
                        args={"iteration": iteration})

    def mark_iteration(self, iteration: int, start: float, end: float) -> None:
        """Record one session iteration's absolute clock window."""
        self.iteration_windows.append(
            IterationWindow(iteration=iteration, start=start, end=end))
        self.record("iteration", f"iteration {iteration}", "cluster",
                    "iterations", start, end, args={"iteration": iteration})

    # -- queries ---------------------------------------------------------------------

    def tracks(self) -> List[Tuple[str, str]]:
        """Distinct (host, track) pairs, in first-seen order."""
        seen: Dict[Tuple[str, str], None] = {}
        for span in self.spans:
            seen.setdefault((span.host, span.track), None)
        return list(seen)

    def spans_by_category(self, category: str) -> List[Span]:
        return [s for s in self.spans if s.category == category]

    def categories(self) -> Dict[str, int]:
        """Span count per category (a quick coverage check)."""
        out: Dict[str, int] = {}
        for span in self.spans:
            out[span.category] = out.get(span.category, 0) + 1
        return out

    def total(self, category: str) -> float:
        """Total recorded duration of one category across all spans."""
        return sum(s.duration for s in self.spans if s.category == category)

    def breakdown(self, host: Optional[str] = None,
                  track: Optional[str] = None,
                  iteration: Optional[int] = None) -> Dict[str, float]:
        """Merged category sums over matching accumulator keys."""
        out: Dict[str, float] = {}
        for (h, t, i), bucket in self.breakdowns.items():
            if host is not None and h != host:
                continue
            if track is not None and t != track:
                continue
            if iteration is not None and i != iteration:
                continue
            for category, seconds in bucket.items():
                out[category] = out.get(category, 0.0) + seconds
        return out

    def reset(self) -> None:
        self.spans = []
        self.metrics = MetricsRegistry()
        self.breakdowns = {}
        self.iteration_windows = []
