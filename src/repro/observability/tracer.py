"""The tracer: timestamped spans on (host, track) timelines.

A *span* is one interval of simulated time attributed to a category
("op", "verb", "cq_poll", "collective", ...) on a *track* — the
equivalent of a thread inside a host's process in the Chrome trace
model.  Components record spans retrospectively (they know both
endpoints once the work is booked), so tracing never yields and never
perturbs simulated timing: a traced run and an untraced run produce
bit-identical clocks.

Besides the raw span list the tracer keeps **breakdown accumulators**:
``account()`` adds a span's duration to a per-(host, track, iteration)
category sum.  The graph executor routes *every* simulated second of
its iteration through ``account()`` (each ``yield`` is bracketed), so
the per-iteration category sums add up to the executor's wall time
exactly — the invariant the stall-attribution report is built on.

High-frequency micro-samples (scheduler dispatch, individual flag-byte
checks) are accounted but not emitted as spans (``emit=False``); they
would dominate the trace file while being individually meaningless.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from .registry import MetricsRegistry
from .timeseries import Telemetry


#: canonical span categories, by layer
CATEGORIES = (
    "op",             # executor: one operator's execution
    "sched",          # executor: ready-queue pop + dispatch (not emitted)
    "poll",           # executor: flag-byte checks + requeues (not emitted)
    "poll_wait",      # executor: parked, all pollers missed (idle backoff)
    "wire_wait",      # executor: parked, waiting on async completions
    "verb",           # NIC: one RDMA verb from post to completion
    "wire",           # NIC/TCP: payload occupancy on the wire
    "cq_poll",        # device layer: one CQ poller wake + drain
    "protocol",       # transfer layer: one protocol exchange (§3.2/§3.3)
    "serialization",  # transfer layer: staging copies, meta pack/unpack
    "collective",     # collective fragment chunk hop
    "link_queue",     # fabric: transfer queued behind a busy trunk link
    "iteration",      # session: one mini-batch iteration
    "fault",          # fault plane: one injected fault (zero-duration)
    "retry",          # recovery layer: one backoff + re-issue
)

#: categories the executor attributes its own timeline to; these sum
#: to the executor's iteration wall time by construction
EXECUTOR_CATEGORIES = ("op", "sched", "poll", "poll_wait", "wire_wait",
                       "serialization")


def executor_track(device: str) -> str:
    """Track name of the executor thread for ``device``."""
    return f"executor:{device}"


def protocol_track(device: str) -> str:
    """Track carrying transfer-protocol phases issued for ``device``."""
    return f"protocol:{device}"


@dataclass
class Span:
    """One attributed interval of simulated time."""

    category: str
    name: str
    host: str       # Chrome trace "process"
    track: str      # Chrome trace "thread" within the host
    start: float
    end: float
    args: Optional[Dict[str, object]] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class IterationWindow:
    """Absolute clock bounds of one session iteration."""

    iteration: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


#: spans kept per host in the flight recorder ring (budgeted tracers)
DEFAULT_FLIGHT_LEN = 64

#: histogram sample cap applied to a budgeted tracer's registry
BUDGETED_HISTOGRAM_SAMPLES = 65536


@dataclass(frozen=True)
class TraceBudget:
    """Bounds on what a tracer *retains* (never on what it accounts).

    The PR 2 tracer stored every span — O(events) memory, built for
    n=2–4 hosts.  A budget makes retention explicit so 256-worker runs
    stay bounded:

    * ``sample_rates``/``default_rate`` — per-category deterministic
      1-in-k sampling of emitted spans (k = round(1/rate)).  Sampling
      uses a per-category counter, not randomness, so two runs of the
      same configuration retain the same spans.
    * ``hosts`` — only spans from these hosts are retained (``None``
      keeps every host).  Host-less timelines (``cluster`` iteration
      markers, ``fabric`` link queues) are always kept.
    * ``span_cap`` — hard ceiling on retained spans; the overflow
      count is exported as an explicit "truncated" marker.
    * ``flight_len`` — per-host ring of the *most recent* spans,
      fed before sampling, dumped on incident for post-mortems.

    Breakdown accounting (``account``) always runs in full — the
    sum-to-step-time invariant holds on every host regardless of the
    budget; a budget only thins the span list backing trace export.
    """

    sample_rates: Mapping[str, float] = field(default_factory=dict)
    default_rate: float = 1.0
    hosts: Optional[frozenset] = None
    span_cap: Optional[int] = None
    flight_len: int = DEFAULT_FLIGHT_LEN

    def __post_init__(self) -> None:
        for category, rate in dict(self.sample_rates).items():
            if not 0.0 < rate <= 1.0:
                raise ValueError(f"sample rate for {category!r} must be in "
                                 f"(0, 1], got {rate}")
        if not 0.0 < self.default_rate <= 1.0:
            raise ValueError(f"default_rate must be in (0, 1], "
                             f"got {self.default_rate}")
        if self.span_cap is not None and self.span_cap < 1:
            raise ValueError("span_cap must be positive")
        if self.flight_len < 0:
            raise ValueError("flight_len cannot be negative")

    def stride(self, category: str) -> int:
        """Keep every ``stride``-th span of this category."""
        rate = self.sample_rates.get(category, self.default_rate)
        return max(1, int(round(1.0 / rate)))


#: tracks that are not tied to a simulated host; never host-filtered
_HOSTLESS = ("cluster", "fabric")


class Tracer:
    """Span sink + breakdown accumulators + metrics registry.

    ``budget`` (optional) bounds span retention — see
    :class:`TraceBudget`; ``telemetry`` (optional) receives an O(1)
    digest of every span *before* any sampling decision, so streaming
    series and the anomaly detector see the full event stream even
    when the trace file keeps one span in a thousand.
    """

    def __init__(self, budget: Optional[TraceBudget] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.budget = budget
        self.telemetry = telemetry
        self.spans: List[Span] = []
        self.metrics = MetricsRegistry(
            histogram_max_samples=(BUDGETED_HISTOGRAM_SAMPLES
                                   if budget is not None else None))
        #: (host, track, iteration) -> {category: seconds}
        self.breakdowns: Dict[Tuple[str, str, int], Dict[str, float]] = {}
        self.iteration_windows: List[IterationWindow] = []
        #: spans not retained because of the budget (sampled out,
        #: host-filtered, or over the cap)
        self.dropped_spans = 0
        #: per-host ring of recent spans (budgeted tracers only)
        self.flight: Dict[str, Deque[Span]] = {}
        self._sample_counts: Dict[str, int] = {}

    @property
    def truncated(self) -> bool:
        """True when the budget dropped at least one span."""
        return self.dropped_spans > 0

    # -- recording -------------------------------------------------------------------

    def _retain(self, category: str, host: str) -> bool:
        """The budget's verdict for one would-be span."""
        budget = self.budget
        if budget is None:
            return True
        if (budget.hosts is not None and host not in budget.hosts
                and host not in _HOSTLESS):
            return False
        stride = budget.stride(category)
        if stride > 1:
            count = self._sample_counts.get(category, 0)
            self._sample_counts[category] = count + 1
            if count % stride != 0:
                return False
        if (budget.span_cap is not None
                and len(self.spans) >= budget.span_cap):
            return False
        return True

    def record(self, category: str, name: str, host: str, track: str,
               start: float, end: float,
               args: Optional[Dict[str, object]] = None) -> Optional[Span]:
        """Append one retrospective span; returns it (None if sampled out).

        The telemetry digest and the flight recorder always see the
        span; only retention in :attr:`spans` is subject to the budget.
        """
        end = max(end, start)
        if self.telemetry is not None:
            self.telemetry.observe_span(category, host, track, start, end)
        budget = self.budget
        if budget is None:
            span = Span(category=category, name=name, host=host, track=track,
                        start=start, end=end, args=args)
            self.spans.append(span)
            return span
        span = Span(category=category, name=name, host=host, track=track,
                    start=start, end=end, args=args)
        if budget.flight_len > 0:
            ring = self.flight.get(host)
            if ring is None:
                ring = self.flight[host] = deque(maxlen=budget.flight_len)
            ring.append(span)
        if not self._retain(category, host):
            self.dropped_spans += 1
            return None
        self.spans.append(span)
        return span

    def flight_dump(self, host: Optional[str] = None) -> List[Span]:
        """Recent spans from the flight recorder (one host or all).

        An unbudgeted tracer retains every span, so the same window is
        synthesized from the full span list — incident post-mortems get
        identical evidence whether or not a budget thinned retention.
        """
        if self.budget is None:
            length = DEFAULT_FLIGHT_LEN
            if host is not None:
                matching = [s for s in self.spans
                            if s.host == host and s.host not in _HOSTLESS]
                return matching[-length:]
            recent: Dict[str, Deque[Span]] = {}
            for span in self.spans:
                if span.host in _HOSTLESS:
                    continue
                ring = recent.get(span.host)
                if ring is None:
                    ring = recent[span.host] = deque(maxlen=length)
                ring.append(span)
            out = [span for ring in recent.values() for span in ring]
            out.sort(key=lambda s: s.start)
            return out
        if host is not None:
            return list(self.flight.get(host, ()))
        out = []
        for ring in self.flight.values():
            out.extend(ring)
        out.sort(key=lambda s: s.start)
        return out

    def account(self, host: str, track: str, iteration: int, category: str,
                start: float, end: float, name: Optional[str] = None,
                emit: bool = True) -> None:
        """Add ``end - start`` to a per-iteration category sum.

        With ``emit`` the interval is also recorded as a span (skipped
        for zero-duration intervals); without it only the accumulator
        moves — used for micro-samples too frequent to plot.
        """
        duration = end - start
        if duration <= 0:
            return
        key = (host, track, iteration)
        bucket = self.breakdowns.get(key)
        if bucket is None:
            bucket = self.breakdowns[key] = {}
        bucket[category] = bucket.get(category, 0.0) + duration
        if emit:
            self.record(category, name or category, host, track, start, end,
                        args={"iteration": iteration})

    def mark_iteration(self, iteration: int, start: float, end: float) -> None:
        """Record one session iteration's absolute clock window."""
        self.iteration_windows.append(
            IterationWindow(iteration=iteration, start=start, end=end))
        self.record("iteration", f"iteration {iteration}", "cluster",
                    "iterations", start, end, args={"iteration": iteration})

    # -- queries ---------------------------------------------------------------------

    def tracks(self) -> List[Tuple[str, str]]:
        """Distinct (host, track) pairs, in first-seen order."""
        seen: Dict[Tuple[str, str], None] = {}
        for span in self.spans:
            seen.setdefault((span.host, span.track), None)
        return list(seen)

    def spans_by_category(self, category: str) -> List[Span]:
        return [s for s in self.spans if s.category == category]

    def categories(self) -> Dict[str, int]:
        """Span count per category (a quick coverage check)."""
        out: Dict[str, int] = {}
        for span in self.spans:
            out[span.category] = out.get(span.category, 0) + 1
        return out

    def total(self, category: str) -> float:
        """Total recorded duration of one category across all spans."""
        return sum(s.duration for s in self.spans if s.category == category)

    def breakdown(self, host: Optional[str] = None,
                  track: Optional[str] = None,
                  iteration: Optional[int] = None) -> Dict[str, float]:
        """Merged category sums over matching accumulator keys."""
        out: Dict[str, float] = {}
        for (h, t, i), bucket in self.breakdowns.items():
            if host is not None and h != host:
                continue
            if track is not None and t != track:
                continue
            if iteration is not None and i != iteration:
                continue
            for category, seconds in bucket.items():
                out[category] = out.get(category, 0.0) + seconds
        return out

    def reset(self) -> None:
        self.spans = []
        self.metrics = MetricsRegistry(
            histogram_max_samples=(BUDGETED_HISTOGRAM_SAMPLES
                                   if self.budget is not None else None))
        self.breakdowns = {}
        self.iteration_windows = []
        self.dropped_spans = 0
        self.flight = {}
        self._sample_counts = {}
        if self.telemetry is not None:
            self.telemetry = Telemetry(
                hosts_per_rack=self.telemetry.hosts_per_rack,
                series_capacity=self.telemetry.series_capacity,
                percentiles=self.telemetry.percentiles)
