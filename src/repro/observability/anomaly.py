"""Online anomaly detection over the streaming telemetry.

Three detectors, all cheap enough to run at the end of every traced
run (and, for serving, on a sliding window while the run executes):

* **Stragglers** — robust MAD z-scores over a per-host statistic
  (default: mean NIC verb latency, post-to-completion).  A straggler
  fault delays verbs *posted by* the slow host, so its own latency
  distribution shifts while its peers merely wait — the per-host
  series separates cause from victims, which iteration wall time (a
  barrier, identical on every host) cannot.
* **Link hotspots** — the same MAD screen over per-trunk-link
  utilization, with an absolute floor so a uniformly busy fabric is
  not "all outliers" and a uniformly idle one never alerts.
* **SLO burn rate** — tumbling windows over (completion time,
  latency) samples; a window alerts when its SLO-violation fraction
  exceeds the burn threshold, i.e. the deployment is consuming error
  budget at a rate that exhausts it long before the horizon.

Robust-z details: with a symmetric simulated fleet the raw MAD is
frequently ~0 (every host identical), which would flag femtosecond
noise.  The MAD is therefore floored at a fraction of the median
(``mad_floor_frac``), and an outlier must additionally exceed the
median by a *relative* margin (``min_excess``) — "3.5 sigma AND at
least 25% slower than the median host".  Fault-free runs at default
thresholds stay silent; the seeded chaos sweep in
``tests/chaos/test_straggler_detection.py`` holds both directions.

Every detection is emitted as a structured, sim-time-stamped
:class:`Incident`, optionally carrying the host's flight-recorder
dump for post-mortem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .tracer import Tracer

#: MAD-to-sigma consistency constant for normal data
MAD_SCALE = 0.6745

#: default robust z-score threshold (the classic Iglewicz-Hoaglin 3.5)
DEFAULT_Z_THRESHOLD = 3.5

#: an outlier must also exceed the median by this relative margin
DEFAULT_MIN_EXCESS = 0.25

#: MAD floor as a fraction of the median (symmetric-fleet guard)
DEFAULT_MAD_FLOOR_FRAC = 0.05

#: minimum population for a MAD screen to be meaningful
DEFAULT_MIN_POINTS = 4

#: links quieter than this never count as hotspots
DEFAULT_UTIL_FLOOR = 0.25

#: links busier than this alert regardless of their peers
DEFAULT_UTIL_ABSOLUTE = 0.95

#: SLO-violation fraction per window that trips a burn alert
DEFAULT_BURN_THRESHOLD = 0.25

#: minimum samples per window for a burn verdict
DEFAULT_BURN_MIN_SAMPLES = 20


@dataclass
class Incident:
    """One structured, sim-time-stamped anomaly record."""

    kind: str              # "straggler" | "link_hotspot" | "slo_burn"
    subject: str           # host, link, or deployment the alert names
    time: float            # simulated seconds at detection
    severity: str          # "warning" | "critical"
    value: float           # the offending statistic
    baseline: float        # the population median / objective
    zscore: Optional[float] = None
    details: Dict[str, object] = field(default_factory=dict)
    #: recent spans from the subject's flight recorder (post-mortem)
    flight: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind, "subject": self.subject, "time": self.time,
            "severity": self.severity, "value": self.value,
            "baseline": self.baseline,
        }
        if self.zscore is not None:
            out["zscore"] = self.zscore
        if self.details:
            out["details"] = dict(self.details)
        if self.flight:
            out["flight"] = list(self.flight)
        return out


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad_zscores(stats: Mapping[str, float],
                mad_floor_frac: float = DEFAULT_MAD_FLOOR_FRAC
                ) -> Dict[str, Tuple[float, float, float]]:
    """Robust z-scores: name -> (value, median, z).

    ``z = MAD_SCALE * (value - median) / mad`` with the MAD floored at
    ``mad_floor_frac * |median|`` (and a tiny absolute epsilon) so a
    perfectly symmetric population cannot divide by zero.
    """
    if not stats:
        return {}
    values = list(stats.values())
    median = _median(values)
    mad = _median([abs(v - median) for v in values])
    floor = max(mad_floor_frac * abs(median), 1e-12)
    mad = max(mad, floor)
    return {name: (value, median, MAD_SCALE * (value - median) / mad)
            for name, value in stats.items()}


def detect_outliers(stats: Mapping[str, float],
                    threshold: float = DEFAULT_Z_THRESHOLD,
                    min_excess: float = DEFAULT_MIN_EXCESS,
                    min_points: int = DEFAULT_MIN_POINTS,
                    mad_floor_frac: float = DEFAULT_MAD_FLOOR_FRAC
                    ) -> List[Tuple[str, float, float, float]]:
    """High-side MAD outliers: (name, value, median, z), worst first."""
    if len(stats) < min_points:
        return []
    out = []
    for name, (value, median, z) in mad_zscores(
            stats, mad_floor_frac=mad_floor_frac).items():
        if z < threshold:
            continue
        if median > 0 and value < median * (1.0 + min_excess):
            continue
        out.append((name, value, median, z))
    out.sort(key=lambda item: -item[3])
    return out


def detect_stragglers(host_stats: Mapping[str, float], now: float,
                      metric: str = "verb_latency",
                      threshold: float = DEFAULT_Z_THRESHOLD,
                      min_excess: float = DEFAULT_MIN_EXCESS,
                      min_points: int = DEFAULT_MIN_POINTS
                      ) -> List[Incident]:
    """MAD straggler screen over one per-host statistic."""
    incidents = []
    for host, value, median, z in detect_outliers(
            host_stats, threshold=threshold, min_excess=min_excess,
            min_points=min_points):
        incidents.append(Incident(
            kind="straggler", subject=host, time=now,
            severity="critical" if z >= 2 * threshold else "warning",
            value=value, baseline=median, zscore=z,
            details={"metric": metric, "hosts": len(host_stats)}))
    return incidents


def detect_link_hotspots(link_utilization: Mapping[str, float], now: float,
                         threshold: float = DEFAULT_Z_THRESHOLD,
                         min_excess: float = DEFAULT_MIN_EXCESS,
                         min_points: int = DEFAULT_MIN_POINTS,
                         util_floor: float = DEFAULT_UTIL_FLOOR,
                         util_absolute: float = DEFAULT_UTIL_ABSOLUTE
                         ) -> List[Incident]:
    """Hotspot screen over per-trunk-link utilization gauges.

    A link alerts when it is a high-side MAD outlier among its peers
    *and* above ``util_floor``, or unconditionally when it exceeds
    ``util_absolute`` (a saturated link is a hotspot even if every
    link is saturated).
    """
    incidents: List[Incident] = []
    flagged: Dict[str, Incident] = {}
    eligible = {name: util for name, util in link_utilization.items()
                if util >= util_floor}
    for name, value, median, z in detect_outliers(
            eligible, threshold=threshold, min_excess=min_excess,
            min_points=min_points):
        flagged[name] = Incident(
            kind="link_hotspot", subject=name, time=now,
            severity="warning", value=value, baseline=median, zscore=z,
            details={"links": len(link_utilization),
                     "util_floor": util_floor})
    median_all = (_median(list(link_utilization.values()))
                  if link_utilization else 0.0)
    for name, util in link_utilization.items():
        if util >= util_absolute and name not in flagged:
            flagged[name] = Incident(
                kind="link_hotspot", subject=name, time=now,
                severity="critical", value=util, baseline=median_all,
                details={"links": len(link_utilization),
                         "util_absolute": util_absolute})
        elif name in flagged and util >= util_absolute:
            flagged[name].severity = "critical"
    incidents.extend(flagged.values())
    incidents.sort(key=lambda inc: -inc.value)
    return incidents


def slo_burn_alerts(samples: Sequence[Tuple[float, float]], slo: float,
                    window: float = 0.25,
                    burn_threshold: float = DEFAULT_BURN_THRESHOLD,
                    min_samples: int = DEFAULT_BURN_MIN_SAMPLES
                    ) -> List[Incident]:
    """Burn-rate alerts over (completion time, latency) samples.

    Samples are bucketed into tumbling ``window``-second windows; a
    window with at least ``min_samples`` completions alerts when its
    violation fraction (latency > ``slo``) exceeds ``burn_threshold``.
    Consecutive alerting windows merge into one incident whose span is
    reported in ``details`` — a sustained burn is one incident, not
    one per window.
    """
    if not samples or slo <= 0:
        return []
    buckets: Dict[int, List[float]] = {}
    for t, latency in samples:
        buckets.setdefault(int(t // window), []).append(latency)
    alerting: List[Tuple[int, float, int]] = []
    for index in sorted(buckets):
        latencies = buckets[index]
        if len(latencies) < min_samples:
            continue
        violations = sum(1 for latency in latencies if latency > slo)
        fraction = violations / len(latencies)
        if fraction > burn_threshold:
            alerting.append((index, fraction, len(latencies)))
    incidents: List[Incident] = []
    run_start = None
    prev_index = None
    worst = 0.0
    count = 0
    for index, fraction, n in alerting + [(None, 0.0, 0)]:  # sentinel
        if run_start is not None and (index is None
                                      or index != prev_index + 1):
            incidents.append(Incident(
                kind="slo_burn", subject="serving", time=run_start * window,
                severity=("critical" if worst > 2 * burn_threshold
                          else "warning"),
                value=worst, baseline=burn_threshold,
                details={"slo_s": slo, "window_s": window,
                         "windows": prev_index - run_start + 1,
                         "samples": count}))
            run_start = None
            worst = 0.0
            count = 0
        if index is None:
            break
        if run_start is None:
            run_start = index
        prev_index = index
        worst = max(worst, fraction)
        count += n
    return incidents


def detect_run_anomalies(tracer: Tracer,
                         link_utilization: Optional[Mapping[str, float]]
                         = None,
                         now: float = 0.0,
                         threshold: float = DEFAULT_Z_THRESHOLD,
                         min_excess: float = DEFAULT_MIN_EXCESS,
                         min_points: int = DEFAULT_MIN_POINTS,
                         attach_flight: bool = True) -> List[Incident]:
    """End-of-run sweep: stragglers from telemetry + fabric hotspots.

    Straggler incidents get the offending host's flight-recorder dump
    attached (when the tracer keeps one) so the post-mortem starts
    from the spans that were in flight, not from a cold trace.
    """
    incidents: List[Incident] = []
    telemetry = tracer.telemetry
    if telemetry is not None:
        host_stats = telemetry.host_statistic("verb_latency", "mean")
        incidents.extend(detect_stragglers(
            host_stats, now, threshold=threshold, min_excess=min_excess,
            min_points=min_points))
    if link_utilization:
        incidents.extend(detect_link_hotspots(
            link_utilization, now, threshold=threshold,
            min_excess=min_excess, min_points=min_points))
    if attach_flight:
        for incident in incidents:
            if incident.kind != "straggler":
                continue
            incident.flight = [
                {"category": s.category, "name": s.name, "host": s.host,
                 "track": s.track, "start": s.start, "end": s.end}
                for s in tracer.flight_dump(incident.subject)]
    return incidents
