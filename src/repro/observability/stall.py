"""Per-iteration stall attribution — a programmatic Figure-8.

The executor brackets every ``yield`` in its iteration loop and routes
the elapsed simulated time through ``Tracer.account()``, so for each
(host, executor track, iteration) the category sums partition the
executor's wall time exactly.  An iteration ends when its *slowest*
executor finishes (the session barrier), so that executor's breakdown
*is* the iteration's: its components sum to the measured iteration
time to within float rounding.

Protocol-track serialization (staging copies in detached sender
processes, metadata pack/unpack) happens concurrently with executor
progress; it is reported as an *overlapped* figure per iteration, not
added to the timeline sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .tracer import EXECUTOR_CATEGORIES, Tracer


@dataclass
class ExecutorBreakdown:
    """One executor's attributed time within one iteration."""

    host: str
    track: str
    iteration: int
    components: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.components.values())

    def fraction(self, category: str) -> float:
        total = self.total
        return self.components.get(category, 0.0) / total if total else 0.0


@dataclass
class IterationStall:
    """Stall attribution for one iteration."""

    iteration: int
    duration: float                    # measured (session) iteration time
    executors: List[ExecutorBreakdown]
    overlapped_serialization: float    # protocol-track work, concurrent
    wire_busy: float = 0.0             # union of wire spans in the window
    #: fabric uplink queueing inside the window, summed across links —
    #: transfer-seconds spent parked behind a busy trunk link (two
    #: links congested at once count twice: it is a contention volume,
    #: not a timeline share)
    link_queue: float = 0.0

    @property
    def critical(self) -> Optional[ExecutorBreakdown]:
        """The slowest executor — the one defining the iteration time."""
        if not self.executors:
            return None
        return max(self.executors, key=lambda e: e.total)

    @property
    def components(self) -> Dict[str, float]:
        """The critical executor's category sums (empty if untraced)."""
        critical = self.critical
        return dict(critical.components) if critical else {}

    @property
    def accounted(self) -> float:
        """Sum of the critical path's components."""
        return sum(self.components.values())

    @property
    def coverage(self) -> float:
        """accounted / measured — the "within 1%" acceptance figure."""
        return self.accounted / self.duration if self.duration else 0.0

    @property
    def exposed_wait(self) -> float:
        """Critical-path time spent parked on communication.

        ``wire_wait`` (blocked on async completions) plus ``poll_wait``
        (all pollers missed, idle backoff) — the communication time the
        scheduler failed to hide under compute.
        """
        components = self.components
        return (components.get("wire_wait", 0.0)
                + components.get("poll_wait", 0.0))

    @property
    def hidden_wire(self) -> float:
        """Wire occupancy that overlapped with critical-path progress."""
        return max(self.wire_busy - self.exposed_wait, 0.0)

    @property
    def overlap_efficiency(self) -> Optional[float]:
        """Fraction of wire time hidden under compute (None if no wire).

        1.0 means every second the wire was busy, the critical-path
        executor made progress on something else; 0.0 means the
        executor sat exposed for at least as long as the wire ran.
        A priority/eager scheduler should push this figure *up*.
        """
        if self.wire_busy <= 0.0:
            return None
        return min(self.hidden_wire / self.wire_busy, 1.0)


@dataclass
class StallReport:
    """Stall attribution across all traced iterations."""

    iterations: List[IterationStall] = field(default_factory=list)
    #: fault/recovery summary (only populated when a fault plane was
    #: armed): injected-fault counts by kind plus retry totals
    faults: Dict[str, object] = field(default_factory=dict)

    def totals(self) -> Dict[str, float]:
        """Critical-path category sums across iterations."""
        out: Dict[str, float] = {}
        for it in self.iterations:
            for category, seconds in it.components.items():
                out[category] = out.get(category, 0.0) + seconds
        return out

    def fractions(self) -> Dict[str, float]:
        totals = self.totals()
        denom = sum(totals.values())
        if not denom:
            return {}
        return {category: seconds / denom
                for category, seconds in totals.items()}

    def overlap_efficiency(self) -> Optional[float]:
        """Aggregate hidden-wire fraction across iterations (None if no wire)."""
        wire = sum(it.wire_busy for it in self.iterations)
        if wire <= 0.0:
            return None
        hidden = sum(it.hidden_wire for it in self.iterations)
        return min(hidden / wire, 1.0)

    def link_contention(self) -> float:
        """Total uplink queueing (transfer-seconds) across iterations.

        Zero on a flat topology or an uncontended fat tree; growing
        with oversubscription.  Reported alongside (not inside) the
        critical-path categories because queueing delays the *wire*
        timeline — the executor sees it only as longer ``wire_wait``.
        """
        return sum(it.link_queue for it in self.iterations)

    def to_dict(self) -> Dict[str, object]:
        return {
            "totals": self.totals(),
            "fractions": self.fractions(),
            "overlap_efficiency": self.overlap_efficiency(),
            "link_contention_seconds": self.link_contention(),
            "faults": dict(self.faults),
            "iterations": [
                {
                    "iteration": it.iteration,
                    "duration": it.duration,
                    "accounted": it.accounted,
                    "coverage": it.coverage,
                    "components": it.components,
                    "overlapped_serialization": it.overlapped_serialization,
                    "wire_busy": it.wire_busy,
                    "link_queue": it.link_queue,
                    "overlap_efficiency": it.overlap_efficiency,
                    "executors": [
                        {"host": e.host, "track": e.track,
                         "components": e.components, "total": e.total}
                        for e in it.executors
                    ],
                }
                for it in self.iterations
            ],
        }

    def render(self) -> str:
        """A fixed-width table, one row per iteration plus totals."""
        columns = [c for c in EXECUTOR_CATEGORIES
                   if any(c in it.components for it in self.iterations)]
        header = (["iter", "measured_ms"]
                  + [f"{c}_ms" for c in columns]
                  + ["coverage", "overlap_ser_ms"])
        rows = [header]
        for it in self.iterations:
            rows.append(
                [str(it.iteration), f"{it.duration * 1e3:.3f}"]
                + [f"{it.components.get(c, 0.0) * 1e3:.3f}" for c in columns]
                + [f"{it.coverage * 100:.2f}%",
                   f"{it.overlapped_serialization * 1e3:.3f}"])
        totals = self.totals()
        measured = sum(it.duration for it in self.iterations)
        accounted = sum(totals.values())
        rows.append(
            ["total", f"{measured * 1e3:.3f}"]
            + [f"{totals.get(c, 0.0) * 1e3:.3f}" for c in columns]
            + [f"{(accounted / measured * 100) if measured else 0.0:.2f}%",
               f"{sum(it.overlapped_serialization for it in self.iterations) * 1e3:.3f}"])
        widths = [max(len(row[i]) for row in rows)
                  for i in range(len(header))]
        lines = ["  ".join(cell.rjust(width)
                           for cell, width in zip(row, widths))
                 for row in rows]
        fractions = self.fractions()
        if fractions:
            share = ", ".join(f"{c}={fractions[c] * 100:.1f}%"
                              for c in columns if c in fractions)
            lines.append(f"stall shares (critical path): {share}")
        efficiency = self.overlap_efficiency()
        if efficiency is not None:
            wire = sum(it.wire_busy for it in self.iterations)
            lines.append(f"overlap efficiency: {efficiency * 100:.1f}% "
                         f"of {wire * 1e3:.3f}ms wire time hidden")
        contention = self.link_contention()
        if contention > 0.0:
            lines.append(f"link contention: {contention * 1e3:.3f}ms "
                         f"queued behind busy fabric uplinks")
        if self.faults:
            by_kind = self.faults.get("by_kind", {})
            kinds = ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
            lines.append(
                f"faults: {self.faults.get('injected', 0)} injected"
                + (f" ({kinds})" if kinds else "")
                + f", {self.faults.get('retries', 0)} retries "
                f"({self.faults.get('retry_seconds', 0.0) * 1e3:.3f}ms)")
        return "\n".join(lines)


def _wire_busy_union(intervals: List[tuple], start: float,
                     end: float) -> float:
    """Total time in [start, end] covered by >= 1 wire span.

    ``intervals`` must be sorted by start time; overlapping transfers
    (several NICs active at once) are merged so concurrent occupancy is
    not double-counted — the figure answers "for how long was *any*
    wire busy", the denominator of overlap efficiency.
    """
    busy = 0.0
    cursor = start
    for span_start, span_end in intervals:
        if span_end <= cursor:
            continue
        if span_start >= end:
            break
        lo = max(span_start, cursor)
        hi = min(span_end, end)
        if hi > lo:
            busy += hi - lo
            cursor = hi
    return busy


def build_stall_report(tracer: Tracer) -> StallReport:
    """Assemble the report from a tracer's accumulators and windows."""
    report = StallReport()
    wire_spans = sorted(
        ((s.start, s.end) for s in tracer.spans if s.category == "wire"),
        key=lambda iv: iv[0])
    queue_spans = [(s.start, s.end) for s in tracer.spans
                   if s.category == "link_queue"]
    for window in tracer.iteration_windows:
        executors = [
            ExecutorBreakdown(host=host, track=track,
                              iteration=window.iteration,
                              components=dict(bucket))
            for (host, track, iteration), bucket in tracer.breakdowns.items()
            if iteration == window.iteration
            and track.startswith("executor:")
        ]
        executors.sort(key=lambda e: (e.host, e.track))
        overlapped = sum(
            bucket.get("serialization", 0.0)
            for (host, track, iteration), bucket in tracer.breakdowns.items()
            if iteration == window.iteration
            and track.startswith("protocol:"))
        report.iterations.append(
            IterationStall(iteration=window.iteration,
                           duration=window.duration,
                           executors=executors,
                           overlapped_serialization=overlapped,
                           wire_busy=_wire_busy_union(
                               wire_spans, window.start, window.end),
                           link_queue=sum(
                               max(0.0, min(end, window.end)
                                   - max(start, window.start))
                               for start, end in queue_spans)))
    fault_spans = [s for s in tracer.spans if s.category == "fault"]
    retry_spans = [s for s in tracer.spans if s.category == "retry"]
    if fault_spans or retry_spans:
        by_kind: Dict[str, int] = {}
        for span in fault_spans:
            kind = str((span.args or {}).get("kind", "unknown"))
            by_kind[kind] = by_kind.get(kind, 0) + 1
        retransmit_spans = [s for s in retry_spans
                            if (s.args or {}).get("retransmit")]
        report.faults = {
            "injected": len(fault_spans),
            "by_kind": by_kind,
            "retries": len(retry_spans),
            "retry_seconds": sum(s.duration for s in retry_spans),
            # selective-repeat runs: how much of the retry traffic was
            # chunk-granular retransmission and how many bytes it re-sent
            "retransmits": len(retransmit_spans),
            "retransmitted_bytes": sum(
                int((s.args or {}).get("size", 0))
                for s in retransmit_spans),
        }
    return report
