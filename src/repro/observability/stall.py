"""Per-iteration stall attribution — a programmatic Figure-8.

The executor brackets every ``yield`` in its iteration loop and routes
the elapsed simulated time through ``Tracer.account()``, so for each
(host, executor track, iteration) the category sums partition the
executor's wall time exactly.  An iteration ends when its *slowest*
executor finishes (the session barrier), so that executor's breakdown
*is* the iteration's: its components sum to the measured iteration
time to within float rounding.

Protocol-track serialization (staging copies in detached sender
processes, metadata pack/unpack) happens concurrently with executor
progress; it is reported as an *overlapped* figure per iteration, not
added to the timeline sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .tracer import EXECUTOR_CATEGORIES, Tracer


@dataclass
class ExecutorBreakdown:
    """One executor's attributed time within one iteration."""

    host: str
    track: str
    iteration: int
    components: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.components.values())

    def fraction(self, category: str) -> float:
        total = self.total
        return self.components.get(category, 0.0) / total if total else 0.0


@dataclass
class IterationStall:
    """Stall attribution for one iteration."""

    iteration: int
    duration: float                    # measured (session) iteration time
    executors: List[ExecutorBreakdown]
    overlapped_serialization: float    # protocol-track work, concurrent

    @property
    def critical(self) -> Optional[ExecutorBreakdown]:
        """The slowest executor — the one defining the iteration time."""
        if not self.executors:
            return None
        return max(self.executors, key=lambda e: e.total)

    @property
    def components(self) -> Dict[str, float]:
        """The critical executor's category sums (empty if untraced)."""
        critical = self.critical
        return dict(critical.components) if critical else {}

    @property
    def accounted(self) -> float:
        """Sum of the critical path's components."""
        return sum(self.components.values())

    @property
    def coverage(self) -> float:
        """accounted / measured — the "within 1%" acceptance figure."""
        return self.accounted / self.duration if self.duration else 0.0


@dataclass
class StallReport:
    """Stall attribution across all traced iterations."""

    iterations: List[IterationStall] = field(default_factory=list)

    def totals(self) -> Dict[str, float]:
        """Critical-path category sums across iterations."""
        out: Dict[str, float] = {}
        for it in self.iterations:
            for category, seconds in it.components.items():
                out[category] = out.get(category, 0.0) + seconds
        return out

    def fractions(self) -> Dict[str, float]:
        totals = self.totals()
        denom = sum(totals.values())
        if not denom:
            return {}
        return {category: seconds / denom
                for category, seconds in totals.items()}

    def to_dict(self) -> Dict[str, object]:
        return {
            "totals": self.totals(),
            "fractions": self.fractions(),
            "iterations": [
                {
                    "iteration": it.iteration,
                    "duration": it.duration,
                    "accounted": it.accounted,
                    "coverage": it.coverage,
                    "components": it.components,
                    "overlapped_serialization": it.overlapped_serialization,
                    "executors": [
                        {"host": e.host, "track": e.track,
                         "components": e.components, "total": e.total}
                        for e in it.executors
                    ],
                }
                for it in self.iterations
            ],
        }

    def render(self) -> str:
        """A fixed-width table, one row per iteration plus totals."""
        columns = [c for c in EXECUTOR_CATEGORIES
                   if any(c in it.components for it in self.iterations)]
        header = (["iter", "measured_ms"]
                  + [f"{c}_ms" for c in columns]
                  + ["coverage", "overlap_ser_ms"])
        rows = [header]
        for it in self.iterations:
            rows.append(
                [str(it.iteration), f"{it.duration * 1e3:.3f}"]
                + [f"{it.components.get(c, 0.0) * 1e3:.3f}" for c in columns]
                + [f"{it.coverage * 100:.2f}%",
                   f"{it.overlapped_serialization * 1e3:.3f}"])
        totals = self.totals()
        measured = sum(it.duration for it in self.iterations)
        accounted = sum(totals.values())
        rows.append(
            ["total", f"{measured * 1e3:.3f}"]
            + [f"{totals.get(c, 0.0) * 1e3:.3f}" for c in columns]
            + [f"{(accounted / measured * 100) if measured else 0.0:.2f}%",
               f"{sum(it.overlapped_serialization for it in self.iterations) * 1e3:.3f}"])
        widths = [max(len(row[i]) for row in rows)
                  for i in range(len(header))]
        lines = ["  ".join(cell.rjust(width)
                           for cell, width in zip(row, widths))
                 for row in rows]
        fractions = self.fractions()
        if fractions:
            share = ", ".join(f"{c}={fractions[c] * 100:.1f}%"
                              for c in columns if c in fractions)
            lines.append(f"stall shares (critical path): {share}")
        return "\n".join(lines)


def build_stall_report(tracer: Tracer) -> StallReport:
    """Assemble the report from a tracer's accumulators and windows."""
    report = StallReport()
    for window in tracer.iteration_windows:
        executors = [
            ExecutorBreakdown(host=host, track=track,
                              iteration=window.iteration,
                              components=dict(bucket))
            for (host, track, iteration), bucket in tracer.breakdowns.items()
            if iteration == window.iteration
            and track.startswith("executor:")
        ]
        executors.sort(key=lambda e: (e.host, e.track))
        overlapped = sum(
            bucket.get("serialization", 0.0)
            for (host, track, iteration), bucket in tracer.breakdowns.items()
            if iteration == window.iteration
            and track.startswith("protocol:"))
        report.iterations.append(
            IterationStall(iteration=window.iteration,
                           duration=window.duration,
                           executors=executors,
                           overlapped_serialization=overlapped))
    return report
