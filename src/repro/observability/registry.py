"""Counters, gauges and histograms for the observability layer.

Deliberately tiny: a :class:`Counter` is one float, a :class:`Gauge`
is a float that can also go down (queue depths, in-flight counts), a
:class:`Histogram` keeps its raw observations (simulated runs record
thousands of samples, not billions, so exact percentiles are cheaper
than maintaining bucket boundaries).  Everything serializes to plain
dicts for the ``--metrics-json`` export.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


#: percentiles a histogram reports by default; serving SLOs need the
#: p99.9 tail, so it is part of the default export
DEFAULT_PERCENTILES: Tuple[float, ...] = (50, 90, 99, 99.9)


def percentile_key(p: float) -> str:
    """``50 -> "p50"``, ``99.9 -> "p99.9"`` (no trailing zeros)."""
    return f"p{p:g}"


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named level that moves both ways (queue depth, in-flight).

    Tracks the current value and the high-water mark, which is what
    admission-control tuning needs from a simulated run.
    """

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def add(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def to_dict(self) -> Dict[str, float]:
        return {"value": self.value, "high_water": self.high_water}

    def __repr__(self) -> str:
        return (f"Gauge({self.name}={self.value}, "
                f"high_water={self.high_water})")


class Histogram:
    """A named distribution with exact quantiles over raw samples.

    ``percentiles`` picks which quantiles :meth:`to_dict` reports
    (default :data:`DEFAULT_PERCENTILES`, which includes the p99.9
    tail); any quantile remains reachable via :meth:`percentile`.
    """

    __slots__ = ("name", "percentiles", "_values", "_sorted")

    def __init__(self, name: str,
                 percentiles: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.percentiles: Tuple[float, ...] = (
            DEFAULT_PERCENTILES if percentiles is None
            else tuple(percentiles))
        self._values: List[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        return self.total / len(self._values) if self._values else 0.0

    @property
    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Exact percentile (nearest-rank); ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of [0, 100]")
        if not self._values:
            return 0.0
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(0, min(len(self._values) - 1,
                          int(round(p / 100.0 * (len(self._values) - 1)))))
        return self._values[rank]

    def to_dict(self, percentiles: Optional[Sequence[float]] = None
                ) -> Dict[str, float]:
        out = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        for p in (self.percentiles if percentiles is None else percentiles):
            out[percentile_key(p)] = self.percentile(p)
        return out

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Named counters, gauges and histograms; created lazily on first use."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str,
                  percentiles: Optional[Sequence[float]] = None) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(
                name, percentiles=percentiles)
        return histogram

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "histograms": {name: h.to_dict()
                           for name, h in sorted(self.histograms.items())},
        }
        if self.gauges:
            out["gauges"] = {name: g.to_dict()
                             for name, g in sorted(self.gauges.items())}
        return out
