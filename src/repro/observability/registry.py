"""Counters and histograms for the observability layer.

Deliberately tiny: a :class:`Counter` is one float, a
:class:`Histogram` keeps its raw observations (simulated runs record
thousands of samples, not billions, so exact percentiles are cheaper
than maintaining bucket boundaries).  Everything serializes to plain
dicts for the ``--metrics-json`` export.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A named distribution with exact quantiles over raw samples."""

    __slots__ = ("name", "_values", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        return self.total / len(self._values) if self._values else 0.0

    @property
    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Exact percentile (nearest-rank); ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of [0, 100]")
        if not self._values:
            return 0.0
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(0, min(len(self._values) - 1,
                          int(round(p / 100.0 * (len(self._values) - 1)))))
        return self._values[rank]

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Named counters and histograms; created lazily on first use."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name)
        return histogram

    def to_dict(self) -> Dict[str, object]:
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "histograms": {name: h.to_dict()
                           for name, h in sorted(self.histograms.items())},
        }
