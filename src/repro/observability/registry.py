"""Counters, gauges and histograms for the observability layer.

Deliberately tiny: a :class:`Counter` is one float, a :class:`Gauge`
is a float that can also go down (queue depths, in-flight counts), a
:class:`Histogram` keeps its raw observations (simulated runs record
thousands of samples, not billions, so exact percentiles are cheaper
than maintaining bucket boundaries).  Everything serializes to plain
dicts for the ``--metrics-json`` export.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .timeseries import RingSeries


#: percentiles a histogram reports by default; serving SLOs need the
#: p99.9 tail, so it is part of the default export
DEFAULT_PERCENTILES: Tuple[float, ...] = (50, 90, 99, 99.9)


def percentile_key(p: float) -> str:
    """``50 -> "p50"``, ``99.9 -> "p99.9"`` (no trailing zeros)."""
    return f"p{p:g}"


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


#: retained samples per gauge history ring (decimating, see RingSeries)
GAUGE_HISTORY_CAPACITY = 128


class Gauge:
    """A named level that moves both ways (queue depth, in-flight).

    Tracks the current value and the high-water mark, which is what
    admission-control tuning needs from a simulated run.  Historically
    that was *all* a gauge kept — the anomaly detector needs trajectory,
    so :meth:`sample` additionally records timestamped values into a
    bounded decimating ring (:class:`~.timeseries.RingSeries`); plain
    :meth:`set` keeps the original last-value-only behaviour and cost.
    """

    __slots__ = ("name", "value", "high_water", "history")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0
        #: bounded (time, value) history; None until :meth:`sample` is used
        self.history: Optional[RingSeries] = None

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def add(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def sample(self, t: float, value: float) -> None:
        """Set the gauge and append (t, value) to the bounded history."""
        self.set(value)
        if self.history is None:
            self.history = RingSeries(self.name,
                                      capacity=GAUGE_HISTORY_CAPACITY)
        self.history.observe(t, value)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"value": self.value,
                                  "high_water": self.high_water}
        if self.history is not None:
            out["history"] = self.history.to_dict()
        return out

    def __repr__(self) -> str:
        return (f"Gauge({self.name}={self.value}, "
                f"high_water={self.high_water})")


class Histogram:
    """A named distribution with exact quantiles over raw samples.

    ``percentiles`` picks which quantiles :meth:`to_dict` reports
    (default :data:`DEFAULT_PERCENTILES`, which includes the p99.9
    tail); any quantile remains reachable via :meth:`percentile`.

    ``max_samples`` bounds the retained raw values for fleet-scale
    runs: when the cap is reached the sorted sample set is decimated
    (every other value dropped), so quantiles degrade gracefully to
    half resolution while count/sum/min/max/mean stay exact.  The
    default (None) keeps every observation — the right call for the
    few-thousand-sample runs the registry was built for.
    """

    __slots__ = ("name", "percentiles", "max_samples", "_values", "_sorted",
                 "_count", "_total", "_vmin", "_vmax")

    def __init__(self, name: str,
                 percentiles: Optional[Sequence[float]] = None,
                 max_samples: Optional[int] = None) -> None:
        if max_samples is not None and max_samples < 2:
            raise ValueError("max_samples must be at least 2")
        self.name = name
        self.percentiles: Tuple[float, ...] = (
            DEFAULT_PERCENTILES if percentiles is None
            else tuple(percentiles))
        self.max_samples = max_samples
        self._values: List[float] = []
        self._sorted = True
        self._count = 0
        self._total = 0.0
        self._vmin = float("inf")
        self._vmax = float("-inf")

    def observe(self, value: float) -> None:
        self._count += 1
        self._total += value
        if value < self._vmin:
            self._vmin = value
        if value > self._vmax:
            self._vmax = value
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)
        if (self.max_samples is not None
                and len(self._values) >= self.max_samples):
            if not self._sorted:
                self._values.sort()
                self._sorted = True
            self._values = self._values[::2]

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._vmin if self._count else 0.0

    @property
    def max(self) -> float:
        return self._vmax if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Exact percentile (nearest-rank); ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of [0, 100]")
        if not self._values:
            return 0.0
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(0, min(len(self._values) - 1,
                          int(round(p / 100.0 * (len(self._values) - 1)))))
        return self._values[rank]

    def to_dict(self, percentiles: Optional[Sequence[float]] = None
                ) -> Dict[str, float]:
        out = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        for p in (self.percentiles if percentiles is None else percentiles):
            out[percentile_key(p)] = self.percentile(p)
        return out

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Named counters, gauges and histograms; created lazily on first use.

    ``histogram_max_samples`` (None = unbounded) is inherited by every
    histogram the registry creates — budgeted tracers pass a cap here
    so per-event histograms cannot grow O(events) at fleet scale.
    """

    def __init__(self,
                 histogram_max_samples: Optional[int] = None) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.histogram_max_samples = histogram_max_samples

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str,
                  percentiles: Optional[Sequence[float]] = None) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(
                name, percentiles=percentiles,
                max_samples=self.histogram_max_samples)
        return histogram

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "histograms": {name: h.to_dict()
                           for name, h in sorted(self.histograms.items())},
        }
        if self.gauges:
            out["gauges"] = {name: g.to_dict()
                             for name, g in sorted(self.gauges.items())}
        return out
