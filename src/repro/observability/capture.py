"""Harness-facing capture sink behind ``--trace-out``/``--metrics-json``.

Benchmark entry points are several layers below the CLI (experiment ->
series -> ``run_training_benchmark``), and one harness invocation may
execute many benchmark configurations.  Rather than thread output
paths through every signature, the CLI configures a module-level sink
(the same pattern as ``CommConfig`` in ``distributed/runner.py``);
each traced run registers itself with a label, and ``flush_capture``
writes one merged Chrome trace (runs separated into disjoint pid
ranges) plus one metrics/stall JSON document at the end.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .chrome_trace import chrome_trace_events, write_merged_trace
from .stall import build_stall_report
from .tracer import Tracer

_PID_STRIDE = 100  # max hosts per run in the merged trace

_trace_out: Optional[str] = None
_metrics_json: Optional[str] = None
_events: List[dict] = []
_runs: List[Dict[str, object]] = []


def configure_capture(trace_out: Optional[str] = None,
                      metrics_json: Optional[str] = None) -> None:
    """Set (or clear) the output paths; resets any buffered runs."""
    global _trace_out, _metrics_json
    _trace_out = trace_out
    _metrics_json = metrics_json
    _events.clear()
    _runs.clear()


def capture_enabled() -> bool:
    """True when some output path is configured — runs should trace."""
    return _trace_out is not None or _metrics_json is not None


def capture_run(label: str, tracer: Tracer,
                meta: Optional[Dict[str, object]] = None) -> None:
    """Buffer one traced run's spans and metrics under ``label``."""
    if not capture_enabled():
        return
    if _trace_out is not None:
        pid_base = 1 + len(_runs) * _PID_STRIDE
        _events.extend(chrome_trace_events(tracer, pid_base=pid_base,
                                           label=label))
    entry: Dict[str, object] = {
        "label": label,
        "metrics": tracer.metrics.to_dict(),
        "stall": build_stall_report(tracer).to_dict(),
        "span_counts": tracer.categories(),
    }
    if meta:
        entry["meta"] = dict(meta)
    _runs.append(entry)


def flush_capture() -> Dict[str, str]:
    """Write the configured files; returns {kind: path} for what was written."""
    written: Dict[str, str] = {}
    if _trace_out is not None:
        write_merged_trace(list(_events), _trace_out)
        written["trace"] = _trace_out
    if _metrics_json is not None:
        with open(_metrics_json, "w") as handle:
            json.dump({"runs": _runs}, handle, indent=2)
        written["metrics"] = _metrics_json
    return written


def reset_capture() -> None:
    """Clear configuration and buffers (used by tests)."""
    configure_capture(None, None)
